"""Section 3's optimality guarantee as a benchmark: time between joins.

The optimal top-down strategies promise at most linear time (in the
number of relations) between successive join operators.  This module
sweeps the ``time_between_joins_us`` histogram across query sizes per
topology, asserts the fitted log-log growth of the p95 gap and of the
deterministic work-per-join proxy stays sub-threshold, and writes the
machine-readable sweep to ``BENCH_optimality.json`` (uploaded as a CI
artifact; ``repro.conformance.optimality --check`` gates the same data).
"""

from repro.conformance.optimality import (
    WALL_SLOPE_THRESHOLD,
    WORK_SLOPE_THRESHOLD,
    measure_optimality,
)

from benchmarks.bench_io import write_bench_json


def test_emit_optimality_json(scale):
    report = measure_optimality(scale=scale)
    path = write_bench_json("optimality", report.to_dict())
    print(f"\noptimality sweep -> {path}")
    for fit in report.fits:
        print(
            f"  {fit['algorithm']:8s} {fit['topology']:7s} "
            f"p95 slope {fit['gap_p95_slope']} "
            f"work slope {fit['work_per_join_slope']}"
        )
    assert report.rows
    assert report.ok, report.failures


def test_gated_fits_stay_linear(scale):
    report = measure_optimality(scale=scale, repeats=1)
    gated = [fit for fit in report.fits if fit["gated"]]
    assert gated
    for fit in gated:
        if fit["gap_p95_slope"] is not None:
            assert fit["gap_p95_slope"] <= WALL_SLOPE_THRESHOLD, fit
        if fit["work_per_join_slope"] is not None:
            assert fit["work_per_join_slope"] <= WORK_SLOPE_THRESHOLD, fit
