"""Section 2's taxonomy, head to head: one query, four paradigms.

* bottom-up dynamic programming (DPccp — optimal),
* top-down partitioning search with memoization (TBNMC — the paper),
* top-down transformational search (Volcano/Cascades miniature),
* prefix search (SQL Anywhere style, no memoization).

Asserts the paper's comparative claims: all paradigms agree on the
optimum; the transformational memo stores Θ(3^n) expressions against the
Θ(2^n) cells of the DP/memoization approaches; transformational search
pays duplicate-detection work the partitioning search never does; prefix
search uses no memo at all but explores a factorially-shaped space.
"""

import pytest

from repro.analysis.metrics import Metrics
from repro.bottomup import DPccp
from repro.enumerator import TopDownEnumerator
from repro.partition import MinCutLazy
from repro.prefix import PrefixSearchOptimizer
from repro.transform import TransformationalOptimizer
from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import weighted_query

QUERY = weighted_query(random_connected_graph(9, 0.3, 11), 11)


def run_paradigm(name: str, query):
    if name == "bottom-up-dp":
        optimizer = DPccp(query)
        plan = optimizer.optimize()
        return plan, len(optimizer.plans)
    if name == "top-down-partitioning":
        optimizer = TopDownEnumerator(query, MinCutLazy())
        plan = optimizer.optimize()
        return plan, optimizer.memo.populated_cells()
    if name == "transformational":
        optimizer = TransformationalOptimizer(query, cp_free=True)
        plan = optimizer.optimize()
        return plan, optimizer.expression_count()
    if name == "prefix-search":
        optimizer = PrefixSearchOptimizer(query)
        plan = optimizer.optimize()
        return plan, 0  # no memo at all
    raise ValueError(name)


PARADIGMS = ["bottom-up-dp", "top-down-partitioning", "transformational", "prefix-search"]


@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_paradigm_benchmark(benchmark, paradigm):
    plan, _ = benchmark(lambda: run_paradigm(paradigm, QUERY))
    assert plan.cost > 0


class TestComparativeClaims:
    def test_bushy_optima_agree(self):
        """DPccp, TBNMC, and transformational search share one optimum;
        prefix search optimizes the smaller left-deep space."""
        bushy = {run_paradigm(p, QUERY)[0].cost for p in PARADIGMS[:3]}
        assert len({round(c, 6) for c in bushy}) == 1
        left_deep = run_paradigm("prefix-search", QUERY)[0].cost
        assert left_deep >= min(bushy) - 1e-9

    def test_transformational_memory_blowup(self):
        """Ω(3^n) stored expressions vs Ω(2^n) memo cells (with CPs)."""
        query = weighted_query(chain(8), 3)
        transformational = TransformationalOptimizer(query)
        transformational.explore()
        from repro.partition import NaiveBushyCP

        partitioning = TopDownEnumerator(query, NaiveBushyCP())
        partitioning.optimize()
        assert (
            transformational.expression_count()
            > 10 * partitioning.memo.populated_cells()
        )

    def test_transformational_duplicate_work(self):
        query = weighted_query(star(7), 3)
        transformational = TransformationalOptimizer(query, cp_free=True)
        transformational.explore()
        metrics = Metrics()
        partitioning = TopDownEnumerator(query, MinCutLazy(), metrics=metrics)
        partitioning.optimize()
        assert transformational.duplicates_detected > 0
        assert metrics.expressions_reexpanded == 0

    def test_prefix_search_has_no_memo(self):
        optimizer = PrefixSearchOptimizer(QUERY)
        optimizer.optimize()
        assert not hasattr(optimizer, "memo")
        assert optimizer.prefixes_explored > QUERY.n


def test_emit_paradigms_json():
    """Machine-readable paradigm comparison -> BENCH_paradigms.json."""
    import json

    from repro.obs.timing import clock

    from benchmarks.bench_io import write_bench_json

    results = {}
    for paradigm in PARADIGMS:
        start = clock()
        plan, stored = run_paradigm(paradigm, QUERY)
        elapsed = clock() - start
        results[paradigm] = {
            "cost": plan.cost,
            "stored_expressions": stored,
            "elapsed_s": elapsed,
        }
    path = write_bench_json(
        "paradigms",
        {"query": QUERY.describe(), "paradigms": results},
    )
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert set(payload["paradigms"]) == set(PARADIGMS)
    for row in payload["paradigms"].values():
        assert row["cost"] > 0
