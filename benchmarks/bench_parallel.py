"""Serial vs parallel partition search: speedup and overhead, honestly.

For each workload the serial enumerator and the parallel enumerator at
1/2/4 workers run the same algorithm; every parallel result is asserted
bit-identical to serial (cost and plan shape) before any timing is
reported, so the speedup table can never hide a correctness regression.

Results go to ``BENCH_parallel.json`` including the machine's usable core
count.  Small-graph rows are included deliberately: on a chain-12 the
pool and pipe traffic dominate and the parallel run is *slower* — that
overhead is part of the result, not noise to be hidden.  The >1.3x
speedup assertion on the large dense workloads only applies on machines
with enough usable cores (a single-core container cannot exhibit
parallel speedup, and pretending otherwise would just test the scheduler
overhead); the JSON records the measured ratios either way.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.timing import clock
from repro.registry import make_optimizer
from repro.workloads import chain, clique, random_connected_graph, star
from repro.workloads.weights import weighted_query

from benchmarks.bench_io import write_bench_json

WORKER_COUNTS = (1, 2, 4)

#: (name, query, expect_speedup): speedup is only expected on workloads
#: big and dense enough to amortize the pool; chain-12 is the deliberate
#: overhead-exposure row.
WORKLOADS = (
    ("chain12", weighted_query(chain(12), 3), False),
    ("star11", weighted_query(star(11), 3), False),
    ("clique9", weighted_query(clique(9), 3), True),
    ("random10", weighted_query(random_connected_graph(10, 0.5, 17), 17), True),
)

#: Minimum speedup the large workloads must show — on machines that can.
SPEEDUP_BAR = 1.3
REQUIRED_CORES = 4


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _time_once(build) -> tuple[float, object]:
    optimizer = build()
    start = clock()
    plan = optimizer.optimize()
    return clock() - start, plan


def _best_of(build, repeats: int = 2) -> tuple[float, object]:
    best, plan = _time_once(build)
    for _ in range(repeats - 1):
        elapsed, plan = _time_once(build)
        best = min(best, elapsed)
    return best, plan


def test_emit_parallel_speedup_json():
    cores = usable_cores()
    rows = {}
    for name, query, expect_speedup in WORKLOADS:
        serial_s, serial_plan = _best_of(
            lambda q=query: make_optimizer("TBNmc", q)
        )
        row = {
            "n": query.n,
            "serial_s": serial_s,
            "workers": {},
            "expect_speedup": expect_speedup,
        }
        for workers in WORKER_COUNTS:
            parallel_s, parallel_plan = _best_of(
                lambda q=query, w=workers: make_optimizer("TBNmc", q, workers=w)
            )
            assert parallel_plan.cost == serial_plan.cost, (name, workers)
            assert parallel_plan == serial_plan, (name, workers)
            row["workers"][str(workers)] = {
                "elapsed_s": parallel_s,
                "speedup": serial_s / parallel_s if parallel_s > 0 else None,
            }
        rows[name] = row

    payload = {
        "algorithm": "TBNmc",
        "cpu_count": cores,
        "speedup_bar": SPEEDUP_BAR,
        "speedup_asserted": cores >= REQUIRED_CORES,
        "workloads": rows,
    }
    path = write_bench_json("parallel", payload)
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert set(loaded["workloads"]) == {name for name, _, _ in WORKLOADS}

    if cores < REQUIRED_CORES:
        pytest.skip(
            f"only {cores} usable core(s): speedup bar not applicable; "
            "ratios recorded in BENCH_parallel.json"
        )
    best_ratio = max(
        row["workers"]["4"]["speedup"]
        for name, row in rows.items()
        if row["expect_speedup"]
    )
    assert best_ratio > SPEEDUP_BAR, (
        f"expected >{SPEEDUP_BAR}x speedup with 4 workers on {cores} cores, "
        f"best was {best_ratio:.2f}x"
    )
