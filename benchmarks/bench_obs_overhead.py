"""Observability overhead on the Figure 9 bushy workloads.

The acceptance bar for the obs layer: with the default ``NullTracer`` the
instrumented enumerator must stay within 2 % of the uninstrumented seed
(the untraced hot path is one boolean attribute test per recursion step),
while a ``RecordingTracer`` + registry run — which snapshots counters and
stamps wall clocks per span — may pay a real but bounded factor.

``test_*_benchmark`` entries give the pytest-benchmark comparison table;
``test_null_tracer_overhead_bound`` asserts the relative bound directly
(median-of-several, self-calibrated in-process so machine speed cancels).
"""

import statistics

import pytest

from repro.obs import MetricsRegistry, NullTracer, RecordingTracer
from repro.obs.timing import clock
from repro.registry import make_optimizer
from repro.workloads import chain, clique, star
from repro.workloads.weights import weighted_query

QUERIES = {
    "star10": weighted_query(star(10), 3),
    "chain12": weighted_query(chain(12), 3),
    "clique8": weighted_query(clique(8), 3),
}

MODES = {
    "default": lambda: {},
    "null-tracer": lambda: {"tracer": NullTracer()},
    "recording": lambda: {"tracer": RecordingTracer()},
    "recording+registry": lambda: {
        "tracer": RecordingTracer(),
        "registry": MetricsRegistry(),
    },
}


@pytest.mark.parametrize("mode", list(MODES))
@pytest.mark.parametrize("workload", list(QUERIES))
def test_obs_overhead_benchmark(benchmark, mode, workload):
    query = QUERIES[workload]
    make_kwargs = MODES[mode]
    plan = benchmark(
        lambda: make_optimizer("TBNmc", query, **make_kwargs()).optimize()
    )
    assert plan.cost > 0


def _median_run_seconds(query, repeats: int, **kwargs) -> float:
    times = []
    for _ in range(repeats):
        optimizer = make_optimizer("TBNmc", query, **kwargs)
        start = clock()
        optimizer.optimize()
        times.append(clock() - start)
    return statistics.median(times)


def test_null_tracer_overhead_bound():
    """Explicit NullTracer stays within noise of the default (no-obs) path.

    Both arms run the same instrumented code with tracing disabled, so
    the comparison isolates the cost of passing a tracer at all.  A
    generous 25 % tolerance absorbs CI timer noise on a ~15 ms workload;
    the acceptance-level <2 % claim is checked against the recorded seed
    timings in CHANGES.md/PR notes where a quiet machine is available.
    """
    query = QUERIES["chain12"]
    _median_run_seconds(query, 2)  # warm caches
    default = _median_run_seconds(query, 5)
    nulled = _median_run_seconds(query, 5, tracer=NullTracer())
    assert nulled <= default * 1.25


def test_emit_obs_overhead_json():
    """Machine-readable overhead comparison -> BENCH_obs_overhead.json."""
    import json

    from benchmarks.bench_io import write_bench_json

    query = QUERIES["clique8"]
    _median_run_seconds(query, 1)  # warm caches
    modes = {
        mode: _median_run_seconds(query, 3, **make_kwargs())
        for mode, make_kwargs in MODES.items()
    }
    baseline = modes["default"]
    payload = {
        "workload": "clique8",
        "median_s": modes,
        "relative": {mode: t / baseline for mode, t in modes.items()},
    }
    path = write_bench_json("obs_overhead", payload)
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert set(loaded["median_s"]) == set(MODES)
    assert loaded["relative"]["default"] == 1.0
