"""Figures 21-30: the CPU/storage trade-off of LRU-bounded memo tables.

The paper's claims: shrinking the memo costs exponentially more CPU;
predicted-cost bounding's edge over exhaustive shrinks with storage and
plateaus below 10 %; accumulated-cost bounding improves steadily as
storage shrinks (less interference with memoization) and dominates at
0-1 % storage.

The extension series (``test_emit_memory_json``) compares the eviction
policies of :mod:`repro.cache` at equal capacity and gates the cost-aware
policy on the clique-10 cell: at 50 % capacity, ``cost`` must not
recompute more join operators than ``lru``.  The machine-readable grid is
written to ``BENCH_memory.json`` (uploaded as a CI artifact).
"""

import pytest

from repro.analysis.metrics import Metrics
from repro.experiments import EXPERIMENTS
from repro.experiments.memory import required_cells
from repro.memo import MemoTable
from repro.registry import make_optimizer
from repro.workloads import clique, star
from repro.workloads.weights import weighted_query

from benchmarks.bench_io import write_bench_json
from benchmarks.conftest import print_result

N = 8
SEED = 31


@pytest.mark.parametrize("threshold", [1.0, 0.25, 0.05, 0.0],
                         ids=["100pct", "25pct", "5pct", "0pct"])
@pytest.mark.parametrize("suffix", ["", "A", "P", "AP"])
def test_memory_limited_benchmark(benchmark, suffix, threshold):
    query = weighted_query(star(N), SEED)
    capacity = round(threshold * required_cells(N, SEED))

    def run():
        memo = MemoTable(capacity=capacity)
        return make_optimizer("TLNmc" + suffix, query, memo=memo).optimize()

    plan = benchmark(run)
    assert plan.cost > 0


class TestSeries:
    @pytest.mark.parametrize("figure", ["fig21-24", "fig25-30"])
    def test_series(self, figure, scale):
        result = EXPERIMENTS[figure](scale)
        print_result(result)
        assert result.rows

    def test_storage_reduction_costs_cpu(self, scale):
        result = EXPERIMENTS["fig21-24"](scale)
        exhaustive = [r for r in result.rows if r["algorithm"] == "TLNmc"]
        for row in exhaustive:
            assert row["0%"] > row["100%"]
            assert row["1%"] >= row["25%"] * 0.5  # monotone-ish growth

    def test_zero_storage_accumulated_dominates(self, scale):
        """Figure 30: with no memoization, A's pruning always wins."""
        result = EXPERIMENTS["fig25-30"](scale)
        zero_rows = [r for r in result.rows if r["threshold"] == "0%"]
        last = max(zero_rows, key=lambda r: r["n"])
        assert last["A_rel"] < last["P_rel"]
        assert last["A_rel"] < 1.0


def _clique10_policy_gate() -> dict:
    """The CI regression cell: lru vs cost on clique-10 at half capacity.

    Measured directly (not through the experiment driver) so the gate
    stays pinned to one configuration regardless of how the driver's
    workload grid evolves.
    """
    query = weighted_query(clique(10), SEED)
    unbounded_metrics = Metrics()
    unbounded = make_optimizer("TBNmc", query, metrics=unbounded_metrics)
    best = unbounded.optimize()
    capacity = unbounded.memo.populated_cells() // 2
    cell = {
        "topology": "clique",
        "n": 10,
        "capacity": capacity,
        "unbounded_joins": unbounded_metrics.join_operators_costed,
    }
    for policy in ("lru", "cost"):
        metrics = Metrics()
        plan = make_optimizer(
            "TBNmc", query, metrics=metrics,
            memo_policy=policy, memo_capacity=capacity,
        ).optimize()
        assert plan.cost == best.cost, f"{policy} lost optimality"
        cell[f"{policy}_joins"] = metrics.join_operators_costed
    return cell


def test_emit_memory_json(scale):
    """Eviction-policy grid -> BENCH_memory.json, with the clique-10 gate."""
    result = EXPERIMENTS["memory-policies"](scale)
    print_result(result)
    assert result.rows
    assert all(row["optimal"] for row in result.rows)
    gate = _clique10_policy_gate()
    path = write_bench_json(
        "memory",
        {
            "experiment": result.experiment_id,
            "title": result.title,
            "columns": result.columns,
            "rows": result.rows,
            "notes": result.notes,
            "clique10_gate": gate,
        },
    )
    print(f"\nwrote {path}")
    # The tentpole's headline claim: cost-aware eviction never recomputes
    # more join operators than LRU on the dense gate cell.
    assert gate["cost_joins"] <= gate["lru_joins"], (
        f"cost policy recomputed more than lru on clique-10: "
        f"{gate['cost_joins']} > {gate['lru_joins']}"
    )
