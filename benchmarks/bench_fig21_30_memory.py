"""Figures 21-30: the CPU/storage trade-off of LRU-bounded memo tables.

The paper's claims: shrinking the memo costs exponentially more CPU;
predicted-cost bounding's edge over exhaustive shrinks with storage and
plateaus below 10 %; accumulated-cost bounding improves steadily as
storage shrinks (less interference with memoization) and dominates at
0-1 % storage.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.memory import required_cells
from repro.memo import MemoTable
from repro.registry import make_optimizer
from repro.workloads import star
from repro.workloads.weights import weighted_query

from benchmarks.conftest import print_result

N = 8
SEED = 31


@pytest.mark.parametrize("threshold", [1.0, 0.25, 0.05, 0.0],
                         ids=["100pct", "25pct", "5pct", "0pct"])
@pytest.mark.parametrize("suffix", ["", "A", "P", "AP"])
def test_memory_limited_benchmark(benchmark, suffix, threshold):
    query = weighted_query(star(N), SEED)
    capacity = round(threshold * required_cells(N, SEED))

    def run():
        memo = MemoTable(capacity=capacity)
        return make_optimizer("TLNmc" + suffix, query, memo=memo).optimize()

    plan = benchmark(run)
    assert plan.cost > 0


class TestSeries:
    @pytest.mark.parametrize("figure", ["fig21-24", "fig25-30"])
    def test_series(self, figure, scale):
        result = EXPERIMENTS[figure](scale)
        print_result(result)
        assert result.rows

    def test_storage_reduction_costs_cpu(self, scale):
        result = EXPERIMENTS["fig21-24"](scale)
        exhaustive = [r for r in result.rows if r["algorithm"] == "TLNmc"]
        for row in exhaustive:
            assert row["0%"] > row["100%"]
            assert row["1%"] >= row["25%"] * 0.5  # monotone-ish growth

    def test_zero_storage_accumulated_dominates(self, scale):
        """Figure 30: with no memoization, A's pruning always wins."""
        result = EXPERIMENTS["fig25-30"](scale)
        zero_rows = [r for r in result.rows if r["threshold"] == "0%"]
        last = max(zero_rows, key=lambda r: r["n"])
        assert last["A_rel"] < last["P_rel"]
        assert last["A_rel"] < 1.0
