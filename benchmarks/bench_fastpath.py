"""Fast path vs oracle: the acceptance gate for ``repro.fastpath``.

For each workload the scalar oracle (``fastpath="off"``) and the batched
fast path run the same serial ``TBNmc`` search under the ``C_out`` cost
model — the combination ``repro profile`` bills ~81 % of wall time to
(``cost.eval`` + ``enum.recurse``).  Every fast-path plan is asserted
*bit-identical* to the oracle's (``Plan.__eq__``: shape, operators,
exact costs) before any timing is reported, so the speedup table can
never hide a correctness regression.

The gate: the pure-python batch backend must reach ``SPEEDUP_BAR``
(1.5x) over the oracle on the dense gate workloads (clique-10, star-10).
The python backend is the one measured because it is the
always-available floor — numpy, when importable, is timed as an extra
row but never gates (CI's test matrix runs numpy-free).

Results go to ``BENCH_fastpath.json`` via :mod:`benchmarks.bench_io`.
"""

from __future__ import annotations

import json

from repro.cost import CoutCostModel
from repro.fastpath.detect import available_backends
from repro.obs.timing import clock
from repro.registry import make_optimizer
from repro.workloads import clique, star
from repro.workloads.weights import weighted_query

from benchmarks.bench_io import write_bench_json

ALGORITHM = "TBNmc"

#: (name, query, gate): the acceptance gate applies to the dense rows
#: named by the issue; the smaller rows document scaling, not the bar.
WORKLOADS = (
    ("clique8", weighted_query(clique(8), 3), False),
    ("clique10", weighted_query(clique(10), 3), True),
    ("star10", weighted_query(star(10), 3), True),
    ("star12", weighted_query(star(12), 3), False),
)

#: Minimum python-backend speedup over the serial oracle on gate rows.
SPEEDUP_BAR = 1.5


def _time_once(build) -> tuple[float, object]:
    optimizer = build()
    start = clock()
    plan = optimizer.optimize()
    return clock() - start, plan


def _best_of(build, repeats: int = 3) -> tuple[float, object]:
    best, plan = _time_once(build)
    for _ in range(repeats - 1):
        elapsed, plan = _time_once(build)
        best = min(best, elapsed)
    return best, plan


def test_emit_fastpath_speedup_json():
    backends = available_backends()
    rows = {}
    for name, query, gate in WORKLOADS:
        oracle_s, oracle_plan = _best_of(
            lambda q=query: make_optimizer(
                ALGORITHM, q, CoutCostModel(), fastpath="off"
            )
        )
        row = {
            "n": query.n,
            "oracle_s": oracle_s,
            "gate": gate,
            "backends": {},
        }
        for backend in backends:
            fast_s, fast_plan = _best_of(
                lambda q=query, b=backend: make_optimizer(
                    f"{ALGORITHM}!fast", q, CoutCostModel(), fastpath_backend=b
                )
            )
            assert fast_plan.cost == oracle_plan.cost, (name, backend)
            assert fast_plan == oracle_plan, (name, backend)
            row["backends"][backend] = {
                "elapsed_s": fast_s,
                "speedup": oracle_s / fast_s if fast_s > 0 else None,
            }
        rows[name] = row

    payload = {
        "algorithm": f"{ALGORITHM}!fast",
        "cost_model": "cout",
        "backends": list(backends),
        "speedup_bar": SPEEDUP_BAR,
        "workloads": rows,
    }
    path = write_bench_json("fastpath", payload)
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert set(loaded["workloads"]) == {name for name, _, _ in WORKLOADS}

    gate_ratios = {
        name: row["backends"]["python"]["speedup"]
        for name, row in rows.items()
        if row["gate"]
    }
    worst = min(gate_ratios, key=gate_ratios.get)
    assert gate_ratios[worst] >= SPEEDUP_BAR, (
        f"python-backend fast path must be >={SPEEDUP_BAR}x the oracle on "
        f"every gate workload; {worst} measured {gate_ratios[worst]:.2f}x "
        f"(all: { {k: round(v, 2) for k, v in gate_ratios.items()} })"
    )
