"""Table 2: absolute cost of enumerating the four search spaces, with
predicted-cost pruning and the Section 5.2 two-phase strategies.

The paper's claims: pruning is far more effective in spaces containing
cartesian products; the exhaustive two-phase first stage adds only a
small overhead (except left-deep stars); with pruning the first phase
pays for itself on larger non-star queries.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.multiphase import optimize_multiphase
from repro.registry import make_optimizer
from repro.workloads import random_connected_graph, star
from repro.workloads.weights import weighted_query

from benchmarks.conftest import print_result

QUERY = weighted_query(random_connected_graph(9, 0.4, 3), 3)
STAR = weighted_query(star(9), 3)

SINGLE_PHASE = [
    "TLNmc", "TLNmcP", "TBNmc", "TBNmcP",
    "TLCnaive", "TLCnaiveP", "TBCnaive", "TBCnaiveP",
]


@pytest.mark.parametrize("algorithm", SINGLE_PHASE)
def test_table2_single_phase_benchmark(benchmark, algorithm):
    plan = benchmark(lambda: make_optimizer(algorithm, QUERY).optimize())
    assert plan.cost > 0


@pytest.mark.parametrize(
    "phases",
    [["TLNmcP", "TLCnaiveP"], ["TBNmcP", "TBCnaiveP"]],
    ids=lambda p: "+".join(p),
)
def test_table2_two_phase_benchmark(benchmark, phases):
    result = benchmark(lambda: optimize_multiphase(QUERY, phases))
    assert result.plan.cost > 0


class TestSeries:
    @pytest.fixture(scope="class")
    def table2(self, scale):
        return EXPERIMENTS["table2"](scale)

    def test_series(self, table2):
        print_result(table2)
        assert table2.rows

    def test_star5_join_op_anchors(self, table2):
        anchors = {
            "Left-Deep CP-free": 36,
            "Bushy CP-free": 64,
            "Left-Deep with CPs": 75,
            "Bushy with CPs": 180,
        }
        for row in table2.rows:
            if row["algorithm"] == "(join ops)":
                assert row["star:5"] == anchors[row["space"]]

    def test_pruning_stronger_with_cps(self, table2):
        by_space = {}
        for row in table2.rows:
            by_space.setdefault(row["space"], {})[row["algorithm"]] = row
        sizes = [c for c in table2.columns if c.startswith("star:")]
        largest = sizes[-1]
        cp_free = (
            by_space["Bushy CP-free"]["TBNmcP"][largest]
            / by_space["Bushy CP-free"]["TBNmc"][largest]
        )
        with_cp = (
            by_space["Bushy with CPs"]["TBCnaiveP"][largest]
            / by_space["Bushy with CPs"]["TBCnaive"][largest]
        )
        assert with_cp < cp_free * 1.5  # pruning at least comparable, usually stronger

    def test_two_phase_overhead_small_for_exhaustive(self, table2):
        """Exhaustive two-phase ≈ single-phase + cheap first stage."""
        by_space = {}
        for row in table2.rows:
            by_space.setdefault(row["space"], {})[row["algorithm"]] = row
        rows = by_space["Bushy with CPs"]
        cells = [c for c in table2.columns if ":" in c and not c.startswith("star")]
        for cell in cells:
            single = rows["TBCnaive"][cell]
            two_phase = rows["TBNmc+TBCnaive"][cell]
            assert two_phase < single * 1.6
