"""Figures 9-12: exhaustive bushy optimization, top-down vs bottom-up.

The paper's claims: each top-down algorithm exactly mirrors its bottom-up
analogue (TBNnaive ≈ BBNnaive, TBNMC ≈ BBNccp); size-driven enumeration
diverges on stars; on cliques everything is optimal and within ~10-15 %.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.registry import make_optimizer
from repro.workloads import chain, clique, star
from repro.workloads.weights import weighted_query

from benchmarks.conftest import print_result

QUERIES = {
    "star10": weighted_query(star(10), 3),
    "chain12": weighted_query(chain(12), 3),
    "clique8": weighted_query(clique(8), 3),
}

ALGORITHMS = ["TBNmc", "TBNnaive", "BBNsize", "BBNnaive", "BBNccp", "TBNmcopt"]


@pytest.mark.parametrize("workload", list(QUERIES))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_bushy_benchmark(benchmark, algorithm, workload):
    query = QUERIES[workload]
    plan = benchmark(lambda: make_optimizer(algorithm, query).optimize())
    assert plan.cost > 0


class TestSeries:
    @pytest.mark.parametrize("figure", ["fig9", "fig10", "fig11", "fig12"])
    def test_series(self, figure, scale):
        result = EXPERIMENTS[figure](scale)
        print_result(result)
        assert result.rows

    def test_fig9_top_down_mirrors_bottom_up(self, scale):
        """TBNMC ≈ BBNccp and TBNnaive ≈ BBNnaive on stars."""
        result = EXPERIMENTS["fig9"](scale)
        last = result.rows[-1]
        assert 0.3 < last["BBNccp_rel"] < 3.0
        if last["BBNnaive_rel"] is not None and last["TBNnaive_rel"] is not None:
            ratio = last["TBNnaive_rel"] / last["BBNnaive_rel"]
            assert 0.3 < ratio < 3.0

    def test_fig11_cliques_all_close(self, scale):
        """On cliques every algorithm is optimal: small spread."""
        result = EXPERIMENTS["fig11"](scale)
        last = result.rows[-1]
        for column in ("TBNnaive_rel", "BBNnaive_rel", "BBNccp_rel"):
            assert 0.3 < last[column] < 3.0
