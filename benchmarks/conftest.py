"""Shared benchmark fixtures.

Each benchmark module covers one figure/table of the paper:

=======================  =====================================================
module                   paper content
=======================  =====================================================
bench_fig02_05_mincuts   Figs. 2-5: minimal-cut enumeration CPU time
bench_fig06_08_leftdeep  Figs. 6-8: left-deep exhaustive optimization
bench_fig09_12_bushy     Figs. 9-12: bushy exhaustive optimization
bench_fig13_14_storage   Figs. 13/14: branch-and-bound memo storage
bench_fig15_20_bnb_cpu   Figs. 15-20: branch-and-bound CPU time
bench_fig21_30_memory    Figs. 21-30: CPU/storage trade-off
bench_table2             Table 2: absolute enumeration cost, 4 spaces
=======================  =====================================================

Two kinds of entries per module:

* ``test_*_series`` — runs the harness driver at small scale, prints the
  same rows/series the paper's figure plots, and asserts its shape claims;
* ``test_*_benchmark`` — pytest-benchmark micro-timings of the individual
  algorithms at one representative size, so ``--benchmark-only`` produces
  a who-beats-whom comparison table.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_io import write_bench_json

__all__ = ["print_result", "write_bench_json"]


def print_result(result) -> None:
    """Render an ExperimentResult to the captured stdout."""
    print()
    print(result.render())


@pytest.fixture(scope="session")
def scale() -> str:
    """Benchmark scale; override with REPRO_SCALE=paper."""
    import os

    return os.environ.get("REPRO_SCALE", "small")
