"""Figures 15-20: branch-and-bound CPU time on star/chain/cyclic queries.

The paper's headline surprise (Section 4.3.2): accumulated-cost bounding
eventually has *devastating negative* effects on CPU time because budget
threading makes the search re-enumerate memoized expressions, while
predicted-cost bounding's savings track its storage pruning.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.registry import make_optimizer
from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import weighted_query

from benchmarks.conftest import print_result

QUERIES = {
    "star10": weighted_query(star(10), 5),
    "chain12": weighted_query(chain(12), 5),
    "cyclic10": weighted_query(random_connected_graph(10, 0.4, 5), 5),
}


@pytest.mark.parametrize("workload", list(QUERIES))
@pytest.mark.parametrize("suffix", ["", "A", "P", "AP"])
def test_bnb_cpu_benchmark(benchmark, suffix, workload):
    query = QUERIES[workload]
    plan = benchmark(lambda: make_optimizer("TBNmc" + suffix, query).optimize())
    assert plan.cost > 0


class TestSeries:
    @pytest.mark.parametrize(
        "figure", ["fig15", "fig16", "fig17", "fig18", "fig19", "fig20"]
    )
    def test_series(self, figure, scale):
        result = EXPERIMENTS[figure](scale)
        print_result(result)
        assert result.rows

    def test_fig16_accumulated_blowup_on_stars(self, scale):
        """A's relative cost grows with n and exceeds 1 (bushy stars)."""
        result = EXPERIMENTS["fig16"](scale)
        rels = [row["A_rel"] for row in result.rows]
        assert rels[-1] > rels[0]
        assert rels[-1] > 1.0
        # Re-expansions explain it.
        reexp = [row["A_reexpansions"] for row in result.rows]
        assert reexp[-1] > reexp[0] > 0

    def test_fig16_predicted_never_hurts_much(self, scale):
        result = EXPERIMENTS["fig16"](scale)
        for row in result.rows:
            assert row["P_rel"] < 1.3

    def test_fig15_combination_tracks_accumulated(self, scale):
        """AP is 'almost as bad as accumulated-cost bounding by itself'."""
        result = EXPERIMENTS["fig15"](scale)
        last = result.rows[-1]
        assert last["AP_rel"] > last["P_rel"] * 0.5
