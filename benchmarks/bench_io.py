"""Benchmark artifact I/O: the one writer for ``BENCH_*.json`` files.

Every benchmark module that emits a machine-readable artifact goes
through :func:`write_bench_json`, which owns the three conventions CI
relies on:

* the output directory is the current working directory unless
  ``REPRO_BENCH_DIR`` points at an artifact folder (created on demand);
* keys are sorted and the file ends with a newline, so diffs between
  runs are meaningful;
* every payload carries ``schema_version`` (:data:`SCHEMA_VERSION`) so
  downstream tooling can detect layout changes instead of misparsing.

Version history:

* **1** — initial versioned layout: the previous ad-hoc payloads plus
  this ``schema_version`` field.
"""

from __future__ import annotations

import json
import os
from typing import Any

__all__ = ["SCHEMA_VERSION", "bench_json_path", "write_bench_json"]

#: Current ``BENCH_*.json`` payload schema version.
SCHEMA_VERSION = 1


def bench_json_path(name: str) -> str:
    """Where ``write_bench_json(name, ...)`` will write, honoring env."""
    directory = os.environ.get("REPRO_BENCH_DIR", ".")
    return os.path.join(directory, f"BENCH_{name}.json")


def write_bench_json(name: str, payload: dict[str, Any]) -> str:
    """Write benchmark artifact ``BENCH_<name>.json``; returns its path.

    ``payload`` is not mutated: ``schema_version`` is injected into a
    shallow copy (an explicit ``schema_version`` in the payload wins, so
    a future migration can pin an older layout deliberately).
    """
    document = {"schema_version": SCHEMA_VERSION, **payload}
    path = bench_json_path(name)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
