"""Plan-service load benchmark: latency, throughput, and cache leverage.

An in-process :class:`~repro.serve.server.PlanServer` is flooded over
real TCP with the seeded three-phase suite of :mod:`repro.serve.load`
(warm misses → concurrent repeats → pipelined identical burst; the
warm+flood portion is exactly 50 % repeated queries).  Results go to
``BENCH_serve.json``: client-side p50/p99 latency, plans/sec, and the
server's own hit/miss/dedup accounting.

The gates are correctness-first: zero failed requests, zero plans that
are not bit-identical (cost and wire structure) to direct registry
optimization, dedup saves > 0, and an overall cache hit rate of at
least :data:`HIT_RATE_FLOOR` — on this workload anything lower means
the cross-query cache or the single-flight path regressed, not that the
machine was slow.

Run as a pytest module (what the ``benchmarks`` CI job does for the
full suite) or directly::

    PYTHONPATH=src python -m benchmarks.bench_serve --quick
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any

from repro.serve.load import LoadReport, Workload, build_workload, run_load
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.server import PlanServer

from benchmarks.bench_io import write_bench_json

#: Suite shapes: 50 %-repeated warm+flood plus the dedup burst.
FULL = {"unique": 16, "burst": 5, "burst_n": 7}
QUICK = {"unique": 10, "burst": 4, "burst_n": 6}

#: Below this overall hit rate the caching tier has regressed.
HIT_RATE_FLOOR = 0.4


async def _flood(
    workload: Workload,
    *,
    concurrency: int,
    batch_size: int,
    dispatch_workers: int,
) -> LoadReport:
    server = PlanServer(
        algorithm=workload.algorithm,
        batch_size=batch_size,
        dispatch_workers=dispatch_workers,
    )
    await server.start()
    try:
        host, port = server.address
        return await run_load(host, port, workload, concurrency=concurrency)
    finally:
        await server.stop()


def run_bench(
    *,
    quick: bool = False,
    seed: int = 1234,
    algorithm: str = "TBNmc",
    concurrency: int = 4,
    batch_size: int = 4,
    dispatch_workers: int = 2,
) -> dict[str, Any]:
    shape = QUICK if quick else FULL
    workload = build_workload(seed=seed, algorithm=algorithm, **shape)
    report = asyncio.run(
        _flood(
            workload,
            concurrency=concurrency,
            batch_size=batch_size,
            dispatch_workers=dispatch_workers,
        )
    )
    return {
        "protocol": PROTOCOL_VERSION,
        "algorithm": algorithm,
        "seed": seed,
        "quick": quick,
        "workload": {
            **shape,
            "repeats": 1,
            "concurrency": concurrency,
            "total_requests": workload.total_requests,
        },
        **report.to_dict(),
    }


def check_gates(payload: dict[str, Any]) -> None:
    """The pass/fail bar shared by pytest and the CLI entrypoint."""
    assert payload["failed"] == 0, f"failed requests: {payload['failed']}"
    assert payload["ok"] == payload["requests"], payload
    assert payload["mismatches"] == 0, (
        f"{payload['mismatches']} served plan(s) differ from direct "
        "optimization"
    )
    assert payload["dedup_saves"] > 0, "single-flight dedup never fired"
    assert payload["hit_rate"] >= HIT_RATE_FLOOR, (
        f"hit rate {payload['hit_rate']:.3f} below the "
        f"{HIT_RATE_FLOOR} floor"
    )


def test_emit_serve_bench_json() -> None:
    payload = run_bench(quick=True)
    check_gates(payload)
    write_bench_json("serve", payload)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small suite {QUICK} instead of {FULL} (what CI runs)",
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--algorithm", default="TBNmc")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument("--dispatch-workers", type=int, default=2)
    args = parser.parse_args(argv)
    payload = run_bench(
        quick=args.quick,
        seed=args.seed,
        algorithm=args.algorithm,
        concurrency=args.concurrency,
        batch_size=args.batch_size,
        dispatch_workers=args.dispatch_workers,
    )
    path = write_bench_json("serve", payload)
    print(
        f"serve bench: {payload['requests']} requests, "
        f"hit_rate={payload['hit_rate']:.3f} "
        f"dedup_saves={payload['dedup_saves']} "
        f"p50={payload['latency_p50_ms']:.2f}ms "
        f"p99={payload['latency_p99_ms']:.2f}ms "
        f"plans/s={payload['plans_per_sec']:.1f} -> {path}"
    )
    try:
        check_gates(payload)
    except AssertionError as exc:
        print(f"serve bench: FAIL: {exc}", file=sys.stderr)
        print(json.dumps(payload, indent=2, sort_keys=True), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
