"""Gap-vs-budget curve: the acceptance gate for ``repro.anytime``.

For each workload one unbudgeted run establishes the full-search node
count and the true optimum; the curve then re-runs the same search under
node budgets at fixed fractions of that count and records, per point,
the returned plan's *true* gap (measured against the known optimum,
which a production anytime run never sees) next to the *certified*
``gap_bound`` the run can prove from its lower bounds.  Node budgets are
deterministic (docs/anytime.md), so this curve is a reproducible fact
about the algorithm, not about the machine.

The gate: at ``GATE_FRACTION`` (25 %) of the full-search budget the
certified gap bound must be finite and the true gap at most
``TRUE_GAP_BAR`` (10 %) on the dense gate workloads (clique-10,
star-12).  Every point additionally asserts the anytime soundness
contract — the plan validates, never beats the optimum, and the
certified floor never exceeds it.

Results go to ``BENCH_anytime.json`` via :mod:`benchmarks.bench_io`.
"""

from __future__ import annotations

import json
import math

from repro.anytime import Budget
from repro.cost import CostModel
from repro.plans import validate_plan
from repro.registry import make_optimizer, parse_name
from repro.workloads import clique, star
from repro.workloads.weights import weighted_query

from benchmarks.bench_io import write_bench_json

#: Accumulated-cost B&B: the strategy whose memo floors and incumbent
#: tracking the gap bound is built from.
ALGORITHM = "TBNmcA"

WORKLOADS = (
    ("clique10", weighted_query(clique(10), 3)),
    ("star12", weighted_query(star(12), 3)),
)

#: Node-budget fractions of the full search, low to high.
FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)

#: The gated point and its bar on the measured (true) gap.
GATE_FRACTION = 0.25
TRUE_GAP_BAR = 0.10

#: Soundness slack for float cost comparisons.
REL_TOL = 1e-9


def test_emit_anytime_gap_curve_json():
    space = parse_name(ALGORITHM).space
    rows = {}
    for name, query in WORKLOADS:
        full = make_optimizer(ALGORITHM, query, CostModel())
        optimal_plan = full.optimize(budget=Budget.nodes(10**9))
        report = full.anytime
        assert report is not None and report.completed
        full_nodes = report.nodes_spent
        optimal = optimal_plan.cost

        curve = []
        for fraction in FRACTIONS:
            budget_nodes = max(1, math.ceil(fraction * full_nodes))
            optimizer = make_optimizer(ALGORITHM, query, CostModel())
            plan = optimizer.optimize(budget=Budget.nodes(budget_nodes))
            point = optimizer.anytime
            assert point is not None, (name, fraction)
            validate_plan(plan, query, space)
            true_gap = plan.cost / optimal - 1.0
            assert true_gap >= -REL_TOL, (name, fraction, true_gap)
            assert point.certified_floor <= optimal * (1.0 + REL_TOL), (
                name,
                fraction,
                point.certified_floor,
                optimal,
            )
            curve.append(
                {
                    "fraction": fraction,
                    "budget_nodes": budget_nodes,
                    "nodes_spent": point.nodes_spent,
                    "plan_cost": plan.cost,
                    "true_gap": true_gap,
                    "gap_bound": (
                        None if math.isinf(point.gap_bound) else point.gap_bound
                    ),
                    "completed": point.completed,
                }
            )
        rows[name] = {
            "n": query.n,
            "full_nodes": full_nodes,
            "optimal_cost": optimal,
            "curve": curve,
        }

    payload = {
        "algorithm": ALGORITHM,
        "cost_model": "io",
        "fractions": list(FRACTIONS),
        "gate": {"fraction": GATE_FRACTION, "true_gap_bar": TRUE_GAP_BAR},
        "workloads": rows,
    }
    path = write_bench_json("anytime", payload)
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert set(loaded["workloads"]) == {name for name, _ in WORKLOADS}

    for name, row in rows.items():
        gated = next(
            p for p in row["curve"] if p["fraction"] == GATE_FRACTION
        )
        assert gated["gap_bound"] is not None, (
            f"{name}: the certified gap bound must be finite at "
            f"{GATE_FRACTION:.0%} of the full-search node budget"
        )
        assert gated["true_gap"] <= TRUE_GAP_BAR, (
            f"{name}: at {GATE_FRACTION:.0%} of the full search "
            f"({gated['budget_nodes']} of {row['full_nodes']} nodes) the "
            f"anytime plan must be within {TRUE_GAP_BAR:.0%} of optimal; "
            f"measured {gated['true_gap']:.2%}"
        )
