"""Kernel-profiler attribution quality and overhead gates.

Two artifacts back the ``docs/profiling.md`` claims:

* ``BENCH_profile.json`` — for each Table 2 topology at n=10, the full
  kernel report of a ``TBNmc`` run plus the top-3 kernels by exclusive
  time.  The asserted bar: those three kernels together account for at
  least 80 % of the enumeration wall time, i.e. the taxonomy is coarse
  enough to rank honestly and fine enough to say where the time goes.
* ``BENCH_profile_overhead.json`` — the disabled path must be free:
  passing an explicit :class:`~repro.obs.profile.NullProfiler` stays
  within timer noise of the default (no-profiler) run, the same
  self-calibrated median-of-several comparison the tracer uses.  A
  :class:`~repro.obs.profile.RecordingProfiler` run is included for
  scale, unasserted (its cost is the price of attribution, not a bug).
"""

import statistics

import pytest

from benchmarks.bench_io import write_bench_json
from repro.experiments.common import graph_maker
from repro.obs.profile import NullProfiler, RecordingProfiler
from repro.obs.timing import clock
from repro.registry import make_optimizer
from repro.workloads.weights import weighted_query

#: The query-graph topologies of the paper's Table 2 experiment.
TABLE2_TOPOLOGIES = ("star", "random-acyclic", "random-cyclic")

QUERIES = {
    topology: weighted_query(graph_maker(topology)(10, seed=3), 3)
    for topology in TABLE2_TOPOLOGIES
}

MODES = {
    "default": lambda: {},
    "null-profiler": lambda: {"profiler": NullProfiler()},
    "recording": lambda: {"profiler": RecordingProfiler()},
}


def _profiled_run(topology):
    """One profiled TBNmc optimization; returns (report, profiler)."""
    query = QUERIES[topology]
    profiler = RecordingProfiler()
    optimizer = make_optimizer("TBNmc", query, profiler=profiler)
    start = clock()
    optimizer.optimize()
    wall = clock() - start
    return profiler.report(wall), profiler


def _median_run_seconds(query, repeats: int, **kwargs) -> float:
    times = []
    for _ in range(repeats):
        optimizer = make_optimizer("TBNmc", query, **kwargs)
        start = clock()
        optimizer.optimize()
        times.append(clock() - start)
    return statistics.median(times)


@pytest.mark.parametrize("topology", TABLE2_TOPOLOGIES)
def test_top3_kernels_dominate(topology):
    """Top-3 kernels cover >= 80 % of enumeration wall time (warm run)."""
    _profiled_run(topology)  # warm caches/allocator
    report, _profiler = _profiled_run(topology)
    top3 = report["kernels"][:3]
    share = sum(row["share_of_wall"] for row in top3)
    assert share >= 0.80, (
        f"{topology}: top-3 kernels {[row['kernel'] for row in top3]} "
        f"cover only {share:.1%} of wall"
    )


def test_profiler_determinism():
    """Two seeded runs agree on every call and op count (not on seconds)."""
    _, first = _profiled_run("star")
    _, second = _profiled_run("star")
    assert first.deterministic_table() == second.deterministic_table()
    assert sorted(first.stacks) == sorted(second.stacks)


def test_emit_profile_json():
    """Per-topology kernel attribution -> BENCH_profile.json."""
    import json

    topologies = {}
    for topology in TABLE2_TOPOLOGIES:
        _profiled_run(topology)  # warm
        report, _profiler = _profiled_run(topology)
        top3 = report["kernels"][:3]
        topologies[topology] = {
            "algorithm": "TBNmc",
            "n": 10,
            "wall_s": report["wall_s"],
            "coverage_of_wall": report["coverage_of_wall"],
            "kernels": report["kernels"],
            "top3": [
                {
                    "kernel": row["kernel"],
                    "share_of_wall": row["share_of_wall"],
                }
                for row in top3
            ],
            "top3_share_of_wall": sum(row["share_of_wall"] for row in top3),
        }
    path = write_bench_json("profile", {"topologies": topologies})
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert set(loaded["topologies"]) == set(TABLE2_TOPOLOGIES)
    for topology, entry in loaded["topologies"].items():
        assert entry["top3_share_of_wall"] >= 0.80, topology


def test_null_profiler_overhead_bound():
    """Explicit NullProfiler stays within noise of the default path.

    Both arms run identical code with profiling disabled — the enumerator
    caches ``profiler.enabled`` once per run — so the comparison isolates
    the cost of passing a profiler at all.  The 25 % tolerance absorbs CI
    timer noise on a ~15 ms workload, matching the tracer's gate.
    """
    query = QUERIES["star"]
    _median_run_seconds(query, 2)  # warm caches
    default = _median_run_seconds(query, 5)
    nulled = _median_run_seconds(query, 5, profiler=NullProfiler())
    assert nulled <= default * 1.25


def test_emit_profile_overhead_json():
    """Disabled-path overhead comparison -> BENCH_profile_overhead.json."""
    import json

    query = QUERIES["star"]
    _median_run_seconds(query, 1)  # warm caches
    modes = {
        mode: _median_run_seconds(query, 3, **make_kwargs())
        for mode, make_kwargs in MODES.items()
    }
    baseline = modes["default"]
    payload = {
        "workload": "star10",
        "median_s": modes,
        "relative": {mode: t / baseline for mode, t in modes.items()},
    }
    path = write_bench_json("profile_overhead", payload)
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert loaded["schema_version"] == 1
    assert set(loaded["median_s"]) == set(MODES)
    assert loaded["relative"]["null-profiler"] <= 1.25
