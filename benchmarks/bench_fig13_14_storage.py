"""Figures 13/14: branch-and-bound memo storage on star queries.

The paper's claims: accumulated-cost bounding prunes stored *plans*
hardest but stores lower bounds on top (total storage plateaus around
an 80 % reduction); predicted-cost pruning is consistently weaker
(~70 %); the combination adds nothing over A alone.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.registry import make_optimizer
from repro.workloads import star
from repro.workloads.weights import weighted_query

from benchmarks.conftest import print_result


@pytest.mark.parametrize("suffix", ["", "A", "P", "AP"])
@pytest.mark.parametrize("base", ["TLNmc", "TBNmc"])
def test_bounded_optimize_benchmark(benchmark, base, suffix):
    query = weighted_query(star(10), 3)
    plan = benchmark(lambda: make_optimizer(base + suffix, query).optimize())
    assert plan.cost > 0


class TestSeries:
    @pytest.mark.parametrize("figure", ["fig13", "fig14"])
    def test_series(self, figure, scale):
        result = EXPERIMENTS[figure](scale)
        print_result(result)
        assert result.rows

    @pytest.mark.parametrize("figure", ["fig13", "fig14"])
    def test_shape(self, figure, scale):
        result = EXPERIMENTS[figure](scale)
        last = result.rows[-1]
        # A prunes stored plans at least as hard as P.
        assert last["A_p"] <= last["P_p"] + 0.05
        # Lower bounds add storage back on top of A's plans.
        assert last["A_p+lb"] >= last["A_p"]
        # AP's plan storage matches A's (the combination adds nothing).
        assert abs(last["AP_p"] - last["A_p"]) < 0.1
        # Everything prunes relative to exhaustive.
        assert last["A_p"] < 1.0 and last["P_p"] < 1.01
