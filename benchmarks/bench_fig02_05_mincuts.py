"""Figures 2-5: minimal-cut enumeration performance.

Micro-benchmarks time one full cut enumeration per (algorithm, family) at
a representative size; the series tests regenerate each figure's curves
and assert the paper's shape claims.
"""

import pytest

from repro.analysis.metrics import Metrics
from repro.experiments import EXPERIMENTS
from repro.partition import MinCutEager, MinCutLazy, MinCutOptimistic
from repro.workloads import clique, random_connected_graph, wheel

from benchmarks.conftest import print_result


def enumerate_cuts(strategy, graph):
    metrics = Metrics()
    count = sum(1 for _ in strategy.partitions(graph, graph.all_vertices, metrics))
    return count, metrics


FAMILIES = {
    "acyclic40": random_connected_graph(40, 0.0, 1),
    "cyclic14": random_connected_graph(14, 0.4, 1),
    "clique10": clique(10),
    "wheel24": wheel(24),
}


def _strategy(name, family):
    anchor = 1 if family.startswith("wheel") else None
    return {
        "eager": MinCutEager(anchor=anchor),
        "lazy": MinCutLazy(anchor=anchor),
        "optimistic": MinCutOptimistic(anchor=anchor),
    }[name]


@pytest.mark.parametrize("family", list(FAMILIES))
@pytest.mark.parametrize("algorithm", ["eager", "lazy", "optimistic"])
def test_mincut_benchmark(benchmark, algorithm, family):
    graph = FAMILIES[family]
    strategy = _strategy(algorithm, family)
    count, _ = benchmark(lambda: enumerate_cuts(strategy, graph))
    assert count > 0


class TestSeries:
    @pytest.mark.parametrize("figure", ["fig2", "fig3", "fig4", "fig5"])
    def test_series(self, figure, scale):
        result = EXPERIMENTS[figure](scale)
        print_result(result)
        assert result.rows

    def test_fig2_shape_lazy_dominates_acyclic(self, scale):
        result = EXPERIMENTS["fig2"](scale)
        last = result.rows[-1]
        assert last["lazy_trees"] == 1
        assert last["lazy_ms"] < last["eager_ms"]

    def test_fig4_shape_optimistic_wins_cliques(self, scale):
        result = EXPERIMENTS["fig4"](scale)
        last = result.rows[-1]
        assert last["optimistic_ms"] < last["lazy_ms"]
        assert last["lazy_trees"] >= 0.8 * last["eager_trees"]

    def test_fig5_shape_optimistic_failures_grow(self, scale):
        result = EXPERIMENTS["fig5"](scale)
        ratios = [r["optimistic_failed"] / r["cuts"] for r in result.rows]
        assert ratios[-1] > ratios[0] > 0
