"""Figures 6-8: exhaustive left-deep optimization, top-down vs bottom-up.

The paper's claim: for CP-free left-deep plans the added value of optimal
partitioning is negligible at practical query sizes — TLNMC, TLNnaive,
and BLNsize stay within a modest constant of each other on chains, stars,
and random cyclic queries.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.registry import make_optimizer
from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import weighted_query

from benchmarks.conftest import print_result

QUERIES = {
    "chain12": weighted_query(chain(12), 3),
    "star10": weighted_query(star(10), 3),
    "cyclic10": weighted_query(random_connected_graph(10, 0.4, 3), 3),
}

ALGORITHMS = ["TLNmc", "TLNnaive", "BLNsize"]


@pytest.mark.parametrize("workload", list(QUERIES))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_leftdeep_benchmark(benchmark, algorithm, workload):
    query = QUERIES[workload]
    plan = benchmark(lambda: make_optimizer(algorithm, query).optimize())
    assert plan.cost > 0


class TestSeries:
    @pytest.mark.parametrize("figure", ["fig6", "fig7", "fig8"])
    def test_series(self, figure, scale):
        result = EXPERIMENTS[figure](scale)
        print_result(result)
        assert result.rows

    @pytest.mark.parametrize("figure", ["fig6", "fig7", "fig8"])
    def test_shape_modest_gaps(self, figure, scale):
        """All three algorithms within a modest constant factor."""
        result = EXPERIMENTS[figure](scale)
        for row in result.rows:
            assert row["TLNnaive_rel"] < 5
            assert row["BLNsize_rel"] < 5
