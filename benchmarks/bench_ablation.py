"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Lazy tree reuse** (MinCutLazy vs MinCutEager) — the paper's central
   optimization of Algorithm 4.
2. **Footnote-2 size-3 usability tweak** — fewer tree rebuilds on graphs
   rich in triangles.
3. **Anchor placement for MinCutOptimistic** — hub vs rim anchoring on
   spoked wheels (the Figure 5 worst case).
4. **Memo eviction policy under pressure** — LRU vs the Section 5.1
   suggestion of evicting the smallest (cheapest-to-recompute)
   expression first.
"""

import pytest

from repro.analysis.metrics import Metrics
from repro.memo import MemoTable
from repro.partition import MinCutEager, MinCutLazy, MinCutOptimistic
from repro.registry import make_optimizer
from repro.workloads import random_connected_graph, star, wheel
from repro.workloads.weights import weighted_query


def exhaust(strategy, graph):
    metrics = Metrics()
    total = sum(1 for _ in strategy.partitions(graph, graph.all_vertices, metrics))
    return total, metrics


class TestLazyTreeReuse:
    @pytest.mark.parametrize("variant", ["lazy", "eager"])
    def test_tree_reuse_benchmark(self, benchmark, variant):
        graph = random_connected_graph(30, 0.0, 3)
        strategy = MinCutLazy() if variant == "lazy" else MinCutEager()
        count, _ = benchmark(lambda: exhaust(strategy, graph))
        assert count > 0

    def test_reuse_eliminates_rebuilds_on_acyclic(self, scale):
        graph = random_connected_graph(25, 0.0, 3)
        _, lazy = exhaust(MinCutLazy(), graph)
        _, eager = exhaust(MinCutEager(), graph)
        assert lazy.bcc_trees_built == 1
        assert eager.bcc_trees_built > 10


class TestSize3Tweak:
    @pytest.mark.parametrize("tweak", [False, True], ids=["plain", "size3"])
    def test_tweak_benchmark(self, benchmark, tweak):
        graph = random_connected_graph(12, 0.5, 5)
        strategy = MinCutLazy(size3_tweak=tweak)
        count, _ = benchmark(lambda: exhaust(strategy, graph))
        assert count > 0

    def test_tweak_never_increases_rebuilds(self, scale):
        for seed in range(8):
            graph = random_connected_graph(10, 0.5, seed)
            _, plain = exhaust(MinCutLazy(), graph)
            _, tweaked = exhaust(MinCutLazy(size3_tweak=True), graph)
            assert tweaked.bcc_trees_built <= plain.bcc_trees_built


class TestOptimisticAnchor:
    @pytest.mark.parametrize("anchor", [None, 1], ids=["hub", "rim"])
    def test_anchor_benchmark(self, benchmark, anchor):
        graph = wheel(20)
        strategy = MinCutOptimistic(anchor=anchor)
        count, _ = benchmark(lambda: exhaust(strategy, graph))
        assert count > 0

    def test_rim_anchor_wastes_probes(self, scale):
        graph = wheel(16)
        _, hub = exhaust(MinCutOptimistic(), graph)
        _, rim = exhaust(MinCutOptimistic(anchor=1), graph)
        assert hub.failed_connectivity_tests == 0
        assert rim.failed_connectivity_tests > 100


class TestCostModelAblation:
    """Section 4.3.1's conjecture: predicted-cost bounding strength tracks
    how well logical properties predict cost.  Under C_out (cost = output
    cardinality, a logical property) the bound is nearly exact and P
    prunes far harder than under the I/O model."""

    @pytest.mark.parametrize("model_name", ["io", "cout"])
    def test_model_benchmark(self, benchmark, model_name):
        from repro.cost import CostModel, CoutCostModel

        model = CostModel() if model_name == "io" else CoutCostModel()
        query = weighted_query(star(9), 7)
        plan = benchmark(
            lambda: make_optimizer("TBNmcP", query, model).optimize()
        )
        assert plan.cost > 0

    def test_predicted_pruning_stronger_under_cout(self, scale):
        from repro.cost import CostModel, CoutCostModel

        query = weighted_query(star(9), 7)
        ratios = {}
        for label, model in (("io", CostModel()), ("cout", CoutCostModel())):
            pruned = Metrics()
            make_optimizer("TBNmcP", query, model, metrics=pruned).optimize()
            exhaustive = Metrics()
            make_optimizer("TBNmc", query, model, metrics=exhaustive).optimize()
            ratios[label] = (
                pruned.join_operators_costed / exhaustive.join_operators_costed
            )
        assert ratios["cout"] < ratios["io"]


class TestEvictionPolicy:
    N = 9
    SEED = 17

    def _run(self, policy: str):
        query = weighted_query(star(self.N), self.SEED)
        dry = make_optimizer("TLNmc", query)
        dry.optimize()
        capacity = dry.memo.populated_cells() // 10
        metrics = Metrics()
        memo = MemoTable(capacity=capacity, metrics=metrics, policy=policy)
        optimizer = make_optimizer("TLNmc", query, memo=memo, metrics=metrics)
        plan = optimizer.optimize()
        return plan, metrics

    @pytest.mark.parametrize("policy", ["lru", "smallest"])
    def test_policy_benchmark(self, benchmark, policy):
        plan, _ = benchmark(lambda: self._run(policy))
        assert plan.cost > 0

    def test_policies_agree_on_optimum(self, scale):
        lru_plan, _ = self._run("lru")
        smallest_plan, _ = self._run("smallest")
        assert abs(lru_plan.cost - smallest_plan.cost) < 1e-9 * lru_plan.cost

    def test_smallest_policy_protects_large_expressions(self, scale):
        """Evicting cheap-to-recompute cells should need fewer expansions
        than evicting by recency alone on star queries."""
        _, lru = self._run("lru")
        _, smallest = self._run("smallest")
        # Not asserted as a strict win (it is workload-dependent), but the
        # policies must at least differ in behaviour and both terminate.
        assert lru.expressions_expanded > 0
        assert smallest.expressions_expanded > 0
