"""Setuptools shim so `pip install -e .` works without the `wheel` package.

All project metadata lives in pyproject.toml; this file exists only to let
pip fall back to the legacy editable-install path in offline environments —
and to host the optional mypyc build of the hot core.

Setting ``REPRO_COMPILE=1`` (with the ``[compiled]`` extra installed,
which provides mypyc) compiles the strict-typed hot modules —
``repro.core.bitset`` and the ``repro.cost`` model — to C extensions::

    REPRO_COMPILE=1 pip install -e .[compiled]

The compiled build is strictly optional: nothing imports mypyc at
runtime, ``repro.fastpath.detect.compiled_core_active()`` reports whether
it is loaded, and a plain install runs the identical pure-python
byte-code.  See docs/performance.md.
"""

import os

from setuptools import setup

#: The strict-typed hot modules mypyc compiles under REPRO_COMPILE=1.
COMPILED_MODULES = [
    "src/repro/core/bitset.py",
    "src/repro/cost/io_model.py",
    "src/repro/cost/cout_model.py",
    "src/repro/cost/lower_bounds.py",
]


def _ext_modules():
    if os.environ.get("REPRO_COMPILE", "") != "1":
        return []
    # lint: disable=fastpath-guard -- the one build-time import: mypyc
    # only runs under REPRO_COMPILE=1 with the [compiled] extra present.
    from mypyc.build import mypycify

    return mypycify(COMPILED_MODULES)


setup(ext_modules=_ext_modules())
