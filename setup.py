"""Setuptools shim so `pip install -e .` works without the `wheel` package.

All project metadata lives in pyproject.toml; this file exists only to let
pip fall back to the legacy editable-install path in offline environments.
"""

from setuptools import setup

setup()
