"""Tests for the query DSL parser."""

import pytest

from repro.catalog.parser import QuerySyntaxError, parse_query
from repro.registry import optimize

TPCH_ISH = (
    "orders(1e6) customer(100000) nation(25) region(5);"
    "orders-customer:1e-5 customer-nation:0.04 nation-region:0.2"
)


class TestParsing:
    def test_happy_path(self):
        query = parse_query(TPCH_ISH)
        assert query.n == 4
        assert query.relations[0].name == "orders"
        assert query.relations[0].cardinality == 1e6
        assert query.selectivity[(0, 1)] == 1e-5
        assert query.graph.has_edge(2, 3)

    def test_optimizable(self):
        query = parse_query(TPCH_ISH)
        plan = optimize("TBNmc", query)
        assert set(plan.leaf_relations()) == {"orders", "customer", "nation", "region"}

    def test_whitespace_and_newlines(self):
        query = parse_query("a(10)\n  b(20) ;\n a-b:0.5\n")
        assert query.n == 2

    def test_single_relation(self):
        query = parse_query("solo(42);")
        assert query.n == 1
        assert query.graph.edge_count() == 0


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(QuerySyntaxError, match=";"):
            parse_query("a(10) b(20) a-b:0.5")

    def test_two_semicolons(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("a(10); a-b:0.5; extra")

    def test_bad_relation_token(self):
        with pytest.raises(QuerySyntaxError, match="bad relation"):
            parse_query("a[10]; ")

    def test_bad_cardinality(self):
        with pytest.raises(QuerySyntaxError, match="cardinality"):
            parse_query("a(ten); ")

    def test_bad_predicate_token(self):
        with pytest.raises(QuerySyntaxError, match="bad predicate"):
            parse_query("a(1) b(2); a~b=0.5")

    def test_unknown_relation_in_predicate(self):
        with pytest.raises(QuerySyntaxError, match="unknown relation"):
            parse_query("a(1) b(2); a-c:0.5")

    def test_disconnected_graph(self):
        with pytest.raises(QuerySyntaxError, match="connected"):
            parse_query("a(1) b(2) c(3) d(4); a-b:0.5 c-d:0.5")

    def test_no_relations(self):
        with pytest.raises(QuerySyntaxError, match="no relations"):
            parse_query("; a-b:0.5")

    def test_bad_selectivity_value(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("a(1) b(2); a-b:2.0")
