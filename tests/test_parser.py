"""Tests for the query DSL parser."""

import pytest

from repro.catalog.parser import QuerySyntaxError, parse_query
from repro.registry import optimize

TPCH_ISH = (
    "orders(1e6) customer(100000) nation(25) region(5);"
    "orders-customer:1e-5 customer-nation:0.04 nation-region:0.2"
)


class TestParsing:
    def test_happy_path(self):
        query = parse_query(TPCH_ISH)
        assert query.n == 4
        assert query.relations[0].name == "orders"
        assert query.relations[0].cardinality == 1e6
        assert query.selectivity[(0, 1)] == 1e-5
        assert query.graph.has_edge(2, 3)

    def test_optimizable(self):
        query = parse_query(TPCH_ISH)
        plan = optimize("TBNmc", query)
        assert set(plan.leaf_relations()) == {"orders", "customer", "nation", "region"}

    def test_whitespace_and_newlines(self):
        query = parse_query("a(10)\n  b(20) ;\n a-b:0.5\n")
        assert query.n == 2

    def test_single_relation(self):
        query = parse_query("solo(42);")
        assert query.n == 1
        assert query.graph.edge_count() == 0


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(QuerySyntaxError, match=";"):
            parse_query("a(10) b(20) a-b:0.5")

    def test_two_semicolons(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("a(10); a-b:0.5; extra")

    def test_bad_relation_token(self):
        with pytest.raises(QuerySyntaxError, match="bad relation"):
            parse_query("a[10]; ")

    def test_bad_cardinality(self):
        with pytest.raises(QuerySyntaxError, match="cardinality"):
            parse_query("a(ten); ")

    def test_bad_predicate_token(self):
        with pytest.raises(QuerySyntaxError, match="bad predicate"):
            parse_query("a(1) b(2); a~b=0.5")

    def test_unknown_relation_in_predicate(self):
        with pytest.raises(QuerySyntaxError, match="unknown relation"):
            parse_query("a(1) b(2); a-c:0.5")

    def test_disconnected_graph(self):
        with pytest.raises(QuerySyntaxError, match="connected"):
            parse_query("a(1) b(2) c(3) d(4); a-b:0.5 c-d:0.5")

    def test_no_relations(self):
        with pytest.raises(QuerySyntaxError, match="no relations"):
            parse_query("; a-b:0.5")

    def test_bad_selectivity_value(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("a(1) b(2); a-b:2.0")


class TestErrorPositions:
    """Structured 400-style errors: the exception pinpoints the bad token."""

    @staticmethod
    def _fail(text: str) -> QuerySyntaxError:
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query(text)
        return excinfo.value

    def test_bad_relation_position(self):
        text = "a(10) b[20]; a-b:0.5"
        err = self._fail(text)
        assert err.position == text.index("b[20]")
        assert err.line == 1
        assert err.column == text.index("b[20]") + 1

    def test_bad_cardinality_points_inside_parens(self):
        text = "a(10) b(twenty); a-b:0.5"
        err = self._fail(text)
        assert err.position == text.index("twenty")

    def test_bad_predicate_position(self):
        text = "a(1) b(2); a-b:0.5 a~b=0.5"
        err = self._fail(text)
        assert err.position == text.index("a~b=0.5")

    def test_unknown_relation_right_side_position(self):
        text = "a(1) b(2); a-c:0.5"
        err = self._fail(text)
        assert err.position == text.index("c:0.5")

    def test_bad_selectivity_position(self):
        text = "a(1) b(2); a-b:half"
        err = self._fail(text)
        assert err.position == text.index("half")

    def test_out_of_range_selectivity_points_at_predicate(self):
        text = "a(1) b(2); a-b:2.0"
        err = self._fail(text)
        assert err.position == text.index("a-b:2.0")

    def test_multiline_line_and_column(self):
        text = "a(10)\nb(oops);\na-b:0.5"
        err = self._fail(text)
        assert err.line == 2
        assert err.column == 3  # points at "oops" inside b(...)

    def test_surplus_semicolon_position(self):
        text = "a(1); a-b:0.5; extra"
        err = self._fail(text)
        assert err.position == text.rindex(";")

    def test_no_relations_position(self):
        err = self._fail("; a-b:0.5")
        assert err.position == 0

    def test_semantic_error_has_no_position(self):
        err = self._fail("a(1) b(2) c(3) d(4); a-b:0.5 c-d:0.5")
        assert err.position is None
        assert err.line is None and err.column is None

    def test_to_dict_roundtrip(self):
        err = self._fail("a(ten); ")
        payload = err.to_dict()
        assert payload["message"].startswith("bad cardinality")
        assert payload["position"] == 2
        assert payload["line"] == 1
        assert payload["column"] == 3

    def test_str_is_bare_message(self):
        err = self._fail("a(ten); ")
        assert str(err) == err.message
        assert ";" not in str(err) or "expected" not in str(err)
