"""Tests for the naive partitioning strategies (Section 3.2)."""

from repro.analysis.metrics import Metrics
from repro.core.bitset import iter_subsets, mask_of, popcount
from repro.partition import (
    NaiveBushyCP,
    NaiveBushyCPFree,
    NaiveLeftDeepCP,
    NaiveLeftDeepCPFree,
)
from repro.workloads import chain, clique, cycle, star

from tests.helpers import small_graphs


def collect(strategy, graph, subset=None):
    metrics = Metrics()
    subset = graph.all_vertices if subset is None else subset
    return list(strategy.partitions(graph, subset, metrics)), metrics


class TestLeftDeepCP:
    def test_emits_one_per_vertex(self):
        g = clique(5)
        parts, metrics = collect(NaiveLeftDeepCP(), g)
        assert len(parts) == 5
        assert metrics.partitions_emitted == 5

    def test_right_side_singletons(self):
        g = chain(4)
        parts, _ = collect(NaiveLeftDeepCP(), g)
        for left, right in parts:
            assert popcount(right) == 1
            assert left | right == g.all_vertices
            assert left & right == 0

    def test_singleton_guard(self):
        parts, _ = collect(NaiveLeftDeepCP(), chain(3), 0b100)
        assert parts == []

    def test_disconnected_subset_still_partitions(self):
        # With CPs the subset need not be connected.
        g = chain(4)
        parts, _ = collect(NaiveLeftDeepCP(), g, mask_of([0, 2]))
        assert len(parts) == 2


class TestLeftDeepCPFree:
    def test_chain_keeps_endpoints_only(self):
        g = chain(5)
        parts, metrics = collect(NaiveLeftDeepCPFree(), g)
        rights = sorted(right for _, right in parts)
        assert rights == [1 << 0, 1 << 4]
        assert metrics.failed_connectivity_tests == 3

    def test_star_rejects_hub(self):
        g = star(5)
        parts, _ = collect(NaiveLeftDeepCPFree(), g)
        assert all(right != 1 for _, right in parts)
        assert len(parts) == 4

    def test_two_relations_both_orders(self):
        g = chain(2)
        parts, _ = collect(NaiveLeftDeepCPFree(), g)
        assert sorted(parts) == [(0b01, 0b10), (0b10, 0b01)]


class TestBushyCP:
    def test_counts(self):
        g = chain(4)
        parts, metrics = collect(NaiveBushyCP(), g)
        assert len(parts) == 2**4 - 2
        assert metrics.partitions_emitted == 14

    def test_all_ordered_splits(self):
        g = chain(3)
        parts, _ = collect(NaiveBushyCP(), g)
        expected = {
            (left, g.all_vertices ^ left)
            for left in iter_subsets(g.all_vertices, proper=True)
        }
        assert set(parts) == expected


class TestBushyCPFree:
    def test_chain_keeps_prefix_suffix_splits(self):
        g = chain(4)
        parts, _ = collect(NaiveBushyCPFree(), g)
        # Intervals only: {0}|{1,2,3}, {0,1}|{2,3}, {0,1,2}|{3} and mirrors.
        assert len(parts) == 6

    def test_failure_accounting(self):
        g = star(5)
        parts, metrics = collect(NaiveBushyCPFree(), g)
        # Valid cuts: hub-side vs single leaf -> 4 unordered, 8 ordered.
        assert len(parts) == 8
        assert metrics.failed_connectivity_tests > 0
        assert metrics.partitions_emitted == 8

    def test_both_sides_connected(self):
        for g in small_graphs():
            parts, _ = collect(NaiveBushyCPFree(), g)
            for left, right in parts:
                assert g.is_connected(left)
                assert g.is_connected(right)
                assert left | right == g.all_vertices

    def test_clique_no_failures(self):
        g = clique(5)
        _, metrics = collect(NaiveBushyCPFree(), g)
        assert metrics.failed_connectivity_tests == 0

    def test_cycle_counts(self):
        g = cycle(5)
        parts, _ = collect(NaiveBushyCPFree(), g)
        assert len(parts) == 5 * 4  # n(n-1) ordered splits of the full cycle
