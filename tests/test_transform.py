"""Tests for the transformational (Volcano/Cascades-style) baseline and
the Section 2.4 claims it demonstrates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counting import count_join_operators
from repro.core.bitset import iter_subsets
from repro.registry import make_optimizer
from repro.spaces import PlanSpace
from repro.transform import TransformationalOptimizer
from repro.workloads import (
    binary_tree,
    chain,
    clique,
    cycle,
    grid,
    random_connected_graph,
    star,
    wheel,
)
from repro.workloads.weights import weighted_query


def all_cp_free_pairs(graph):
    pairs = set()
    for s in iter_subsets(graph.all_vertices):
        if s.bit_count() < 2 or not graph.is_connected(s):
            continue
        for left in iter_subsets(s, proper=True):
            right = s ^ left
            if graph.is_connected(left) and graph.is_connected(right):
                pairs.add((left, right))
    return pairs


class TestWithCartesianProducts:
    @pytest.mark.parametrize("maker,n", [(chain, 5), (star, 5), (cycle, 5), (clique, 4)])
    def test_explores_the_complete_space(self, maker, n):
        query = weighted_query(maker(n), 1)
        optimizer = TransformationalOptimizer(query)
        optimizer.explore()
        assert optimizer.expression_count() == 3**n - 2 ** (n + 1) + 1
        # One group per non-empty vertex subset.
        assert optimizer.group_count() == 2**n - 1

    def test_matches_partitioning_search_optimum(self):
        for seed in range(4):
            query = weighted_query(random_connected_graph(6, 0.3, seed), seed)
            plan = TransformationalOptimizer(query).optimize()
            reference = make_optimizer("TBCnaive", query).optimize()
            assert plan.cost == pytest.approx(reference.cost)

    def test_duplicate_work_counted(self):
        """Claim 2: naive rule application derives expressions repeatedly."""
        query = weighted_query(chain(6), 1)
        optimizer = TransformationalOptimizer(query)
        optimizer.explore()
        assert optimizer.duplicates_detected > optimizer.expression_count()

    def test_memory_claim_vs_dynamic_programming(self):
        """Claim 1: Θ(3^n) expressions stored vs the 2^n of DP."""
        n = 8
        query = weighted_query(chain(n), 1)
        optimizer = TransformationalOptimizer(query)
        optimizer.explore()
        assert optimizer.expression_count() == 3**n - 2 ** (n + 1) + 1
        assert optimizer.expression_count() > 10 * (2**n)


class TestCPFreeGenerateAndTest:
    @pytest.mark.parametrize(
        "graph",
        [chain(6), star(6), binary_tree(7), cycle(6), wheel(6), grid(2, 3), clique(5)],
        ids=["chain", "star", "btree", "cycle", "wheel", "grid", "clique"],
    )
    def test_exhaustive_closure_reaches_every_ccp(self, graph):
        """With duplicate-detecting (non-unique-derivation) application,
        the CP filter does not curtail the space — see module docs for how
        this relates to the paper's incompleteness remark about
        duplicate-free schemes."""
        query = weighted_query(graph, 1)
        optimizer = TransformationalOptimizer(query, cp_free=True)
        optimizer.explore()
        assert optimizer.reached_pairs() == all_cp_free_pairs(graph)

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=10, deadline=None)
    def test_cp_free_optimum_matches_tbnmc(self, seed):
        query = weighted_query(random_connected_graph(6, 0.4, seed), seed)
        plan = TransformationalOptimizer(query, cp_free=True).optimize()
        reference = make_optimizer("TBNmc", query).optimize()
        assert plan.cost == pytest.approx(reference.cost)

    def test_cp_discards_counted(self):
        query = weighted_query(star(6), 1)
        optimizer = TransformationalOptimizer(query, cp_free=True)
        optimizer.explore()
        assert optimizer.cp_expressions_discarded > 0
        expected = count_join_operators(star(6), PlanSpace.bushy_cp_free())
        assert optimizer.expression_count() == expected

    def test_filter_shrinks_memo_on_sparse_graphs(self):
        query = weighted_query(chain(7), 1)
        unfiltered = TransformationalOptimizer(query)
        unfiltered.explore()
        filtered = TransformationalOptimizer(query, cp_free=True)
        filtered.explore()
        assert filtered.expression_count() < unfiltered.expression_count() / 3


class TestEdgeCases:
    def test_single_relation(self):
        query = weighted_query(chain(1), 0)
        plan = TransformationalOptimizer(query).optimize()
        assert plan.is_scan

    def test_two_relations(self):
        query = weighted_query(chain(2), 0)
        optimizer = TransformationalOptimizer(query)
        plan = optimizer.optimize()
        assert plan.join_count() == 1
        assert optimizer.expression_count() == 2  # both orders

    def test_orders_not_supported(self):
        query = weighted_query(chain(3), 0)
        with pytest.raises(NotImplementedError):
            TransformationalOptimizer(query).optimize(order=0)
