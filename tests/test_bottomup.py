"""Tests for the bottom-up baselines: DPsize, DPsub, DPccp."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counting import count_join_operators
from repro.analysis.metrics import Metrics
from repro.bottomup import DPccp, DPsize, DPsub
from repro.enumerator import TopDownEnumerator
from repro.partition import MinCutLazy, NaiveBushyCP, NaiveLeftDeepCP
from repro.plans import validate_plan
from repro.spaces import PlanSpace
from repro.workloads import chain, clique, cycle, random_connected_graph, star
from repro.workloads.weights import weighted_query


class TestDPsize:
    @pytest.mark.parametrize(
        "space",
        [
            PlanSpace.left_deep_cp_free(),
            PlanSpace.left_deep_with_cp(),
            PlanSpace.bushy_cp_free(),
            PlanSpace.bushy_with_cp(),
        ],
        ids=lambda s: s.describe(),
    )
    def test_matches_top_down_per_space(self, space):
        from repro.registry import make_optimizer

        reference_names = {
            PlanSpace.left_deep_cp_free(): "TLNmc",
            PlanSpace.left_deep_with_cp(): "TLCnaive",
            PlanSpace.bushy_cp_free(): "TBNmc",
            PlanSpace.bushy_with_cp(): "TBCnaive",
        }
        for seed in range(4):
            query = weighted_query(random_connected_graph(6, 0.3, seed), seed)
            bottom_up = DPsize(query, space).optimize()
            top_down = make_optimizer(reference_names[space], query).optimize()
            assert bottom_up.cost == pytest.approx(top_down.cost)
            validate_plan(bottom_up, query, space)

    def test_left_deep_shape(self):
        query = weighted_query(star(6), 3)
        plan = DPsize(query, PlanSpace.left_deep_cp_free()).optimize()
        validate_plan(plan, query, PlanSpace.left_deep_cp_free())

    def test_overlap_waste_counted(self):
        query = weighted_query(chain(6), 3)
        optimizer = DPsize(query, PlanSpace.bushy_cp_free())
        optimizer.optimize()
        # Size-driven enumeration attempts far more pairs than it keeps.
        assert optimizer.metrics.partitions_emitted > optimizer.metrics.logical_joins_enumerated

    def test_single_relation(self):
        query = weighted_query(chain(1), 0)
        plan = DPsize(query, PlanSpace.bushy_cp_free()).optimize()
        assert plan.is_scan

    def test_order_not_implemented(self):
        query = weighted_query(chain(3), 0)
        with pytest.raises(NotImplementedError):
            DPsize(query, PlanSpace.bushy_cp_free()).optimize(order=0)


class TestDPsub:
    def test_left_deep_rejected(self):
        query = weighted_query(chain(3), 0)
        with pytest.raises(ValueError):
            DPsub(query, PlanSpace.left_deep_cp_free())

    @pytest.mark.parametrize(
        "space",
        [PlanSpace.bushy_cp_free(), PlanSpace.bushy_with_cp()],
        ids=lambda s: s.describe(),
    )
    def test_matches_top_down(self, space):
        strategy = MinCutLazy() if not space.allows_cartesian_products else NaiveBushyCP()
        for seed in range(4):
            query = weighted_query(random_connected_graph(6, 0.4, seed), seed)
            bottom_up = DPsub(query, space).optimize()
            top_down = TopDownEnumerator(query, strategy).optimize()
            assert bottom_up.cost == pytest.approx(top_down.cost)
            validate_plan(bottom_up, query, space)

    def test_cp_free_discards_many_splits_on_stars(self):
        """The naive subset generation is oblivious to the graph: most of
        its splits are cartesian products (Section 2.2)."""
        query = weighted_query(star(8), 3)
        optimizer = DPsub(query, PlanSpace.bushy_cp_free())
        optimizer.optimize()
        m = optimizer.metrics
        assert m.failed_connectivity_tests > m.logical_joins_enumerated

    def test_with_cp_considers_every_split(self):
        n = 5
        query = weighted_query(chain(n), 3)
        optimizer = DPsub(query, PlanSpace.bushy_with_cp())
        optimizer.optimize()
        assert optimizer.metrics.logical_joins_enumerated == 3**n - 2 ** (n + 1) + 1


class TestDPccp:
    @pytest.mark.parametrize("maker,n", [(chain, 7), (star, 7), (cycle, 6), (clique, 5)])
    def test_enumerates_exactly_the_ccp_pairs(self, maker, n):
        graph = maker(n)
        query = weighted_query(graph, 3)
        optimizer = DPccp(query)
        optimizer.optimize()
        expected = count_join_operators(graph, PlanSpace.bushy_cp_free())
        assert optimizer.metrics.logical_joins_enumerated == expected

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_match_tbnmc(self, seed):
        graph = random_connected_graph(7, 0.35, seed)
        query = weighted_query(graph, seed)
        ccp = DPccp(query)
        bottom_up = ccp.optimize()
        metrics = Metrics()
        top_down = TopDownEnumerator(query, MinCutLazy(), metrics=metrics).optimize()
        assert bottom_up.cost == pytest.approx(top_down.cost)
        # Both optimal algorithms enumerate exactly the same set of join
        # operators (one per csg-cmp-pair and orientation).
        assert ccp.metrics.logical_joins_enumerated == metrics.logical_joins_enumerated
        validate_plan(bottom_up, query, PlanSpace.bushy_cp_free())

    def test_single_relation(self):
        query = weighted_query(chain(1), 0)
        assert DPccp(query).optimize().is_scan

    def test_two_relations(self):
        query = weighted_query(chain(2), 0)
        plan = DPccp(query).optimize()
        assert plan.join_count() == 1
