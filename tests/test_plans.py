"""Tests for plan trees and plan validation."""

import pytest

from repro.catalog import Query
from repro.cost.io_model import CostModel
from repro.plans import (
    INFINITY,
    Plan,
    PlanValidationError,
    is_left_deep,
    plan_contains_cartesian_product,
    plan_cost,
    validate_plan,
)
from repro.spaces import PlanSpace
from repro.workloads import chain, star


@pytest.fixture
def query():
    return Query.uniform(chain(3), cardinality=1000, selectivity=0.01)


def build_plan(query, shape):
    """Build a plan from a nested-tuple shape of vertex indices."""
    model = CostModel()

    def rec(node):
        if isinstance(node, int):
            [scan] = model.scan_plans(query, 1 << node, None)
            return scan
        left, right = node
        return model.build_join(query, model.JOIN_METHODS[1], rec(left), rec(right))

    return rec(shape)


class TestPlanTree:
    def test_cost_of_none(self):
        assert plan_cost(None) == INFINITY

    def test_join_count(self, query):
        plan = build_plan(query, ((0, 1), 2))
        assert plan.join_count() == 2
        assert plan.left.join_count() == 1

    def test_leaf_relations(self, query):
        plan = build_plan(query, ((0, 1), 2))
        assert plan.leaf_relations() == ["R0", "R1", "R2"]

    def test_iter_nodes(self, query):
        plan = build_plan(query, ((0, 1), 2))
        ops = [n.op for n in plan.iter_nodes()]
        assert ops == ["hash", "hash", "scan", "scan", "scan"]

    def test_tree_string_and_sql_like(self, query):
        plan = build_plan(query, ((0, 1), 2))
        assert "R0 ⋈ R1" in plan.sql_like()
        rendered = plan.tree_string()
        assert "scan(R2)" in rendered and "cost=" in rendered

    def test_relabel(self, query):
        plan = build_plan(query, (0, 1))
        relabelled = plan.relabel({0: 2, 1: 0})
        assert relabelled.vertices == 0b101
        assert relabelled.cost == plan.cost
        assert relabelled.leaf_relations() == plan.leaf_relations()

    def test_relabel_requires_complete_mapping(self, query):
        plan = build_plan(query, (0, 1))
        with pytest.raises(KeyError):
            plan.relabel({0: 1})

    def test_to_dot(self, query):
        plan = build_plan(query, ((0, 1), 2))
        dot = plan.to_dot()
        assert dot.startswith("digraph plan {") and dot.endswith("}")
        assert dot.count("->") == 4  # two joins, three scans: four edges
        assert "R2" in dot


class TestShapePredicates:
    def test_left_deep_detection(self, query):
        assert is_left_deep(build_plan(query, ((0, 1), 2)))
        assert not is_left_deep(build_plan(query, (0, (1, 2))))

    def test_sort_transparent_for_left_deep(self, query):
        model = CostModel()
        inner = build_plan(query, ((0, 1), 2))
        wrapped = model.build_sort(query, inner, order=0)
        assert is_left_deep(wrapped)

    def test_cartesian_product_detection(self, query):
        # chain 0-1-2: joining 0 with 2 first is a cartesian product.
        assert plan_contains_cartesian_product(build_plan(query, ((0, 2), 1)), query)
        assert not plan_contains_cartesian_product(build_plan(query, ((0, 1), 2)), query)


class TestValidation:
    def test_valid_plan_passes(self, query):
        plan = build_plan(query, ((0, 1), 2))
        validate_plan(plan, query, PlanSpace.left_deep_cp_free())

    def test_wrong_coverage_rejected(self, query):
        plan = build_plan(query, (0, 1))
        with pytest.raises(PlanValidationError, match="covers"):
            validate_plan(plan, query)
        validate_plan(plan, query, expected_vertices=0b011)

    def test_left_deep_violation(self, query):
        plan = build_plan(query, (0, (1, 2)))
        with pytest.raises(PlanValidationError, match="left-deep"):
            validate_plan(plan, query, PlanSpace.left_deep_cp_free())

    def test_cartesian_product_violation(self, query):
        plan = build_plan(query, ((0, 2), 1))
        with pytest.raises(PlanValidationError, match="cartesian"):
            validate_plan(plan, query, PlanSpace.bushy_cp_free())
        validate_plan(plan, query, PlanSpace.bushy_with_cp())

    def test_cost_inconsistency_rejected(self, query):
        good = build_plan(query, (0, 1))
        bad = Plan(
            op=good.op,
            vertices=good.vertices,
            cost=good.children[0].cost / 2,  # below children's cost
            cardinality=good.cardinality,
            children=good.children,
        )
        with pytest.raises(PlanValidationError, match="cost"):
            validate_plan(bad, query, expected_vertices=bad.vertices)

    def test_cardinality_inconsistency_rejected(self, query):
        good = build_plan(query, (0, 1))
        bad = Plan(
            op=good.op,
            vertices=good.vertices,
            cost=good.cost,
            cardinality=good.cardinality * 2,
            children=good.children,
        )
        with pytest.raises(PlanValidationError, match="cardinality"):
            validate_plan(bad, query, expected_vertices=bad.vertices)

    def test_overlapping_children_rejected(self, query):
        [scan0] = CostModel().scan_plans(query, 1, None)
        bad = Plan(
            op="hash",
            vertices=1,
            cost=100.0,
            cardinality=query.cardinality(1),
            children=(scan0, scan0),
        )
        with pytest.raises(PlanValidationError, match="overlap"):
            validate_plan(bad, query, expected_vertices=1)

    def test_scan_over_multiple_relations_rejected(self, query):
        bad = Plan(
            op="scan",
            vertices=0b011,
            cost=1.0,
            cardinality=query.cardinality(0b011),
            relation="R0",
        )
        with pytest.raises(PlanValidationError, match="scan"):
            validate_plan(bad, query, expected_vertices=0b011)

    def test_star_bushy_plan(self):
        q = Query.uniform(star(4), cardinality=100, selectivity=0.1)
        plan = build_plan(q, ((0, 1), (2, 3)))
        # Bushy CP plan over a star: {2,3} is a cartesian product.
        with pytest.raises(PlanValidationError):
            validate_plan(plan, q, PlanSpace.bushy_cp_free())
        validate_plan(plan, q, PlanSpace.bushy_with_cp())
