"""Tests for the observability layer (repro.obs)."""

# lint: disable-file=instrument-name -- tests exercise the registry with
# ad-hoc instrument names on purpose; only src/ must use the constants.

import io
import json

import pytest

from repro.analysis.metrics import Metrics
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    RecordingTracer,
    Stopwatch,
    render_summary,
    render_trace_tree,
    spans_to_jsonl,
    subset_label,
    time_call,
    write_jsonl,
)
from repro.obs.registry import TIME_BETWEEN_JOINS
from repro.registry import available_algorithms, make_optimizer, resolve_alias
from tests.helpers import make_query


@pytest.fixture
def chain8():
    return make_query("chain", 8, 7)


class TestMetricsHelpers:
    def test_snapshot_diff_roundtrip(self):
        metrics = Metrics()
        before = metrics.snapshot()
        metrics.memo_lookups += 3
        metrics.memo_hits += 1
        assert metrics.diff(before) == {"memo_lookups": 3, "memo_hits": 1}

    def test_diff_excludes_gauges(self):
        metrics = Metrics()
        before = metrics.snapshot()
        metrics.peak_memo_cells = 40
        metrics.final_memo_plans = 12
        assert metrics.diff(before) == {}
        assert "peak_memo_cells" not in before

    def test_to_dict_matches_as_dict(self):
        metrics = Metrics()
        metrics.partitions_emitted = 5
        metrics.note_expansion((0b11, None))
        assert metrics.to_dict() == metrics.as_dict()
        assert metrics.to_dict()["unique_expressions_expanded"] == 1

    def test_merge_still_accumulates(self):
        a, b = Metrics(), Metrics()
        a.memo_hits = 2
        b.memo_hits = 3
        b.peak_memo_cells = 9
        a.merge(b)
        assert a.memo_hits == 5
        assert a.peak_memo_cells == 9


class TestNullTracer:
    def test_disabled_and_silent(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.begin(0b11, None, "join")
        tracer.memo_hit(0b1, None)
        tracer.event("anything", x=1)
        tracer.end(cost=1.0)  # no spans recorded, nothing raised

    def test_no_result_or_metrics_change(self, chain8):
        """(a) NullTracer adds no spans and changes no results."""
        baseline_metrics = Metrics()
        baseline = make_optimizer("TBNmc", chain8, metrics=baseline_metrics)
        baseline_plan = baseline.optimize()

        null_metrics = Metrics()
        nulled = make_optimizer(
            "TBNmc", chain8, metrics=null_metrics, tracer=NullTracer()
        )
        null_plan = nulled.optimize()

        assert null_plan.cost == baseline_plan.cost
        assert null_metrics.as_dict() == baseline_metrics.as_dict()

    def test_recording_tracer_changes_no_results(self, chain8):
        baseline_metrics = Metrics()
        make_optimizer("TBNmc", chain8, metrics=baseline_metrics).optimize()
        traced_metrics = Metrics()
        tracer = RecordingTracer()
        plan = make_optimizer(
            "TBNmc", chain8, metrics=traced_metrics, tracer=tracer
        ).optimize()
        assert traced_metrics.as_dict() == baseline_metrics.as_dict()
        assert tracer.root.cost == plan.cost


class TestSpanTree:
    def test_chain_span_tree_memo_hits(self, chain8):
        """(b) Memo-hit annotations agree with Metrics.memo_hits."""
        metrics = Metrics()
        tracer = RecordingTracer()
        optimizer = make_optimizer(
            "TBNmc", chain8, metrics=metrics, tracer=tracer
        )
        optimizer.optimize()
        assert metrics.memo_hits > 0
        assert sum(s.memo_hits for s in tracer.spans()) == metrics.memo_hits
        # Exclusive counter deltas sum to the run totals too.
        assert (
            sum(s.counters.get("memo_hits", 0) for s in tracer.spans())
            == metrics.memo_hits
        )
        assert (
            sum(s.counters.get("partitions_emitted", 0) for s in tracer.spans())
            == metrics.partitions_emitted
        )

    def test_span_count_equals_memoized_expressions(self, chain8):
        tracer = RecordingTracer()
        optimizer = make_optimizer("TBNmc", chain8, tracer=tracer)
        optimizer.optimize()
        assert tracer.span_count() == optimizer.memo.populated_cells()

    def test_root_is_full_query(self, chain8):
        tracer = RecordingTracer()
        make_optimizer("TBNmc", chain8, tracer=tracer).optimize()
        assert tracer.root.subset == chain8.graph.all_vertices
        assert tracer.root.parent_id is None
        assert tracer.root.depth == 0
        for span in tracer.spans():
            for child in span.children:
                assert child.parent_id == span.span_id
                assert child.depth == span.depth + 1

    def test_strategy_events_recorded(self, chain8):
        tracer = RecordingTracer()
        make_optimizer("TBNmc", chain8, tracer=tracer).optimize()
        names = {name for s in tracer.spans() for name, _ in s.events}
        assert "bcc_tree_built" in names or "bcc_tree_reused" in names

    def test_bounded_run_annotates_budgets(self, chain8):
        tracer = RecordingTracer()
        plan = make_optimizer("TBNmcAP", chain8, tracer=tracer).optimize()
        exhaustive = make_optimizer("TBNmc", chain8).optimize()
        assert plan.cost == exhaustive.cost
        assert any(s.budget is not None for s in tracer.spans())

    def test_event_cap(self):
        tracer = RecordingTracer(max_events_per_span=4)
        tracer.begin(0b11, None, "join")
        for i in range(10):
            tracer.event("e", i=i)
        tracer.end(cost=1.0)
        assert len(tracer.root.events) == 4
        assert tracer.root.dropped_events == 6

    def test_find(self, chain8):
        tracer = RecordingTracer()
        make_optimizer("TBNmc", chain8, tracer=tracer).optimize()
        assert tracer.find(0b1, None).kind == "scan"
        assert tracer.find(0b101010, None) is None  # disconnected: never computed


class TestRegistryInstruments:
    @pytest.mark.parametrize("name", available_algorithms())
    def test_time_between_joins_for_every_algorithm(self, name):
        """(c) The time-between-joins histogram is populated everywhere."""
        query = make_query("chain", 5, 11)
        registry = MetricsRegistry()
        make_optimizer(name, query, registry=registry).optimize()
        assert registry.histogram(TIME_BETWEEN_JOINS).count > 0

    def test_partitions_histogram_matches_metrics(self):
        query = make_query("cycle", 6, 5)
        registry = MetricsRegistry()
        metrics = Metrics()
        make_optimizer(
            "TBNmc", query, metrics=metrics, registry=registry
        ).optimize()
        histogram = registry.histogram("partitions_per_expression")
        assert histogram.count == metrics.expressions_expanded
        assert histogram.total == metrics.partitions_emitted

    def test_memo_occupancy_series(self):
        query = make_query("chain", 6, 5)
        registry = MetricsRegistry()
        metrics = Metrics()
        make_optimizer(
            "TBNmc", query, metrics=metrics, registry=registry
        ).optimize()
        occupancy = registry.histogram("memo_occupancy")
        assert occupancy.count > 0
        assert occupancy.max == metrics.peak_memo_cells

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in [1, 2, 3, 4, 100]:
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.min == 1 and histogram.max == 100
        assert histogram.mean == 22
        assert histogram.percentile(50) == 3
        assert histogram.percentile(100) == 100
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_instrument_name_collision(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0

    def test_to_dict_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(1.5)
        payload = json.loads(json.dumps(registry.to_dict()))
        assert payload["c"]["value"] == 3
        assert payload["h"]["count"] == 1


class TestExporters:
    @pytest.fixture
    def traced(self, chain8):
        tracer = RecordingTracer()
        optimizer = make_optimizer("TBNmc", chain8, tracer=tracer)
        optimizer.optimize()
        return tracer, optimizer

    def test_jsonl_roundtrip(self, traced):
        tracer, optimizer = traced
        buffer = io.StringIO()
        count = write_jsonl(tracer, buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(lines) == tracer.span_count()
        spans = [json.loads(line) for line in lines]
        by_id = {span["span_id"]: span for span in spans}
        for span in spans:
            if span["parent_id"] is not None:
                assert span["span_id"] in by_id[span["parent_id"]]["children"]

    def test_jsonl_to_path(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer, str(path))
        assert len(path.read_text().splitlines()) == count

    def test_render_tree(self, traced, chain8):
        tracer, _ = traced
        text = render_trace_tree(tracer, chain8, max_depth=3)
        assert "[mc]" in text
        assert "R0" in text
        assert "memo-hits=" in text

    def test_subset_label(self, chain8):
        assert subset_label(0b11, chain8) == "R0⋈R1"
        assert subset_label(0b11) == "0x3"

    def test_render_summary(self, traced):
        tracer, optimizer = traced
        text = render_summary(optimizer.metrics)
        assert "memo_hits" in text
        assert render_summary() == "(no observations)"

    def test_spans_to_jsonl_matches_write(self, traced):
        tracer, _ = traced
        assert spans_to_jsonl(tracer).count("\n") == tracer.span_count() - 1


class TestExporterRoundTripClique10:
    """Exporters are lossless on a real clique-10 trace (satellite gate)."""

    @pytest.fixture(scope="class")
    def clique10_trace(self):
        from repro.obs.exporters import read_jsonl

        query = make_query("clique", 10, 42)
        tracer = RecordingTracer()
        make_optimizer("TBNmc", query, tracer=tracer).optimize()
        dumped = spans_to_jsonl(tracer)
        reloaded = read_jsonl(io.StringIO(dumped))
        return query, tracer, dumped, reloaded

    def test_redump_is_byte_identical(self, clique10_trace):
        _query, _tracer, dumped, reloaded = clique10_trace
        redumped = "\n".join(
            spans_to_jsonl(root) for root in reloaded
        )
        assert redumped == dumped

    def test_tree_rendering_survives_reload(self, clique10_trace):
        query, tracer, _dumped, reloaded = clique10_trace
        original = render_trace_tree(tracer, query, max_depth=3)
        assert original == "\n".join(
            render_trace_tree(root, query, max_depth=3) for root in reloaded
        )

    def test_collapsed_stacks_survive_reload(self, clique10_trace):
        from repro.obs.exporters import spans_to_collapsed

        query, tracer, _dumped, reloaded = clique10_trace
        original = spans_to_collapsed(tracer, query)
        recovered = "\n".join(
            spans_to_collapsed(root, query) for root in reloaded
        )
        assert original == recovered

    def test_counters_survive_reload(self, clique10_trace):
        from repro.obs.exporters import aggregate_counters

        _query, tracer, _dumped, reloaded = clique10_trace
        original = aggregate_counters(tracer)
        recovered: dict = {}
        for root in reloaded:
            for counter, value in aggregate_counters(root).items():
                recovered[counter] = recovered.get(counter, 0) + value
        assert recovered == original


class TestTiming:
    def test_time_call(self):
        elapsed, value = time_call(lambda: 41 + 1)
        assert value == 42
        assert elapsed >= 0

    def test_stopwatch_context(self):
        with Stopwatch() as stopwatch:
            pass
        assert stopwatch.elapsed_total is not None
        assert stopwatch.elapsed_total >= 0

    def test_stopwatch_lap(self):
        stopwatch = Stopwatch()
        first = stopwatch.lap()
        second = stopwatch.elapsed()
        assert first >= 0 and second >= 0


class TestAliases:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("mincutlazy", "TBNmc"),
            ("mincut-lazy", "TBNmc"),
            ("MinCutOptimistic", "TBNmcopt"),
            ("leftdeep", "TLNmc"),
            ("dpccp", "BBNccp"),
            ("dpsize", "BBNsize"),
            ("dpsub", "BBNnaive"),
            ("mincutlazyAP", "TBNmcAP"),
            ("leftdeep-P", "TLNmcP"),
            ("TBNmc", "TBNmc"),  # canonical names pass through
        ],
    )
    def test_resolve(self, alias, canonical):
        assert resolve_alias(alias) == canonical

    def test_alias_optimizes(self):
        query = make_query("clique", 5, 3)
        via_alias = make_optimizer("mincutlazy", query).optimize()
        canonical = make_optimizer("TBNmc", query).optimize()
        assert via_alias.cost == canonical.cost

    def test_unknown_name_still_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            make_optimizer("nonsense", make_query("chain", 3, 1))


class TestMetricsMerge:
    """Metrics.merge / snapshot / diff under interleaved multi-source updates."""

    def test_merge_sums_counters_and_maxes_peak(self):
        a, b = Metrics(), Metrics()
        a.join_operators_costed = 10
        a.peak_memo_cells = 5
        b.join_operators_costed = 7
        b.peak_memo_cells = 9
        a.merge(b)
        assert a.join_operators_costed == 17
        assert a.peak_memo_cells == 9

    def test_merge_unions_expansion_sets(self):
        a, b = Metrics(), Metrics()
        a.note_expansion((1, None))
        b.note_expansion((1, None))
        b.note_expansion((2, None))
        a.merge(b)
        assert a.unique_expressions_expanded == 2
        # re-expansion counts are per-source and sum additively
        assert a.expressions_expanded == 3

    def test_snapshot_diff_with_interleaved_merges(self):
        # A snapshot taken mid-run must yield correct deltas even when a
        # worker's metrics are merged in between snapshot and diff.
        parent, worker = Metrics(), Metrics()
        parent.memo_lookups = 4
        before = parent.snapshot()
        parent.memo_lookups += 2
        worker.memo_lookups = 10
        worker.join_operators_costed = 3
        parent.merge(worker)
        delta = parent.diff(before)
        assert delta["memo_lookups"] == 12
        assert delta["join_operators_costed"] == 3

    def test_interleaved_updates_preserve_totals(self):
        # Simulate two workers and a parent updating in alternation; the
        # merged totals must equal the sum regardless of interleaving.
        parent = Metrics()
        workers = [Metrics(), Metrics()]
        for step in range(30):
            source = workers[step % 2] if step % 3 else parent
            source.partitions_emitted += 1
            source.join_operators_costed += 2
        expected_partitions = (
            parent.partitions_emitted
            + sum(w.partitions_emitted for w in workers)
        )
        for worker in workers:
            parent.merge(worker)
        assert parent.partitions_emitted == expected_partitions
        assert parent.join_operators_costed == 2 * expected_partitions

    def test_merge_accumulates_parallel_counters(self):
        a, b = Metrics(), Metrics()
        a.parallel_tasks = 3
        b.parallel_tasks = 4
        b.parallel_entries_merged = 6
        a.merge(b)
        assert a.parallel_tasks == 7
        assert a.parallel_entries_merged == 6


class TestRegistryMerge:
    """MetricsRegistry.merge folds per-worker instruments deterministically."""

    def test_counter_and_histogram_merge(self):
        from repro.obs.registry import MetricsRegistry

        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").inc(2)
        worker.counter("c").inc(3)
        parent.histogram("h").observe(1.0)
        worker.histogram("h").observe(2.0)
        worker.histogram("h").observe(4.0)
        parent.merge(worker)
        assert parent.counter("c").value == 5
        hist = parent.histogram("h")
        assert hist.count == 3
        assert hist.total == 7.0
        assert hist.max == 4.0

    def test_merge_adopts_unknown_instruments(self):
        from repro.obs.registry import MetricsRegistry

        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.timer("t").observe(0.5)
        parent.merge(worker)
        assert parent.timer("t").count == 1
        # and the adopted instrument is a copy-by-merge, shared totals only
        assert parent.timer("t").total == 0.5

    def test_merge_type_collision_rejected(self):
        from repro.obs.registry import MetricsRegistry

        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("x").inc()
        worker.histogram("x").observe(1.0)
        with pytest.raises(TypeError):
            parent.merge(worker)

    def test_merged_percentiles_are_exact(self):
        from repro.obs.registry import MetricsRegistry

        parent, worker = MetricsRegistry(), MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            parent.histogram("h").observe(v)
        for v in (4.0, 5.0):
            worker.histogram("h").observe(v)
        parent.merge(worker)
        assert parent.histogram("h").percentile(50) == 3.0
        assert parent.histogram("h").percentile(100) == 5.0
