"""Tests for the minimal-cut partitioning strategies against the
brute-force oracle, plus the Section 3.3 performance-profile claims."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import Metrics
from repro.core.bitset import bit, mask_of, popcount
from repro.partition import (
    BruteForceMinCuts,
    MinCutEager,
    MinCutLazy,
    MinCutLeftDeep,
    MinCutOptimistic,
    minimal_cut_pairs,
)
from repro.workloads import (
    binary_tree,
    chain,
    clique,
    cycle,
    grid,
    random_connected_graph,
    star,
    wheel,
)

from tests.helpers import small_graphs

ALL_STRATEGIES = [
    MinCutLazy(),
    MinCutLazy(size3_tweak=True),
    MinCutEager(),
    MinCutOptimistic(),
    BruteForceMinCuts(),
]


def ordered_oracle(graph, subset=None):
    pairs = minimal_cut_pairs(graph, subset)
    return sorted(itertools.chain.from_iterable([(a, b), (b, a)] for a, b in pairs))


def run(strategy, graph, subset=None, **kwargs):
    metrics = Metrics()
    subset = graph.all_vertices if subset is None else subset
    parts = list(strategy.partitions(graph, subset, metrics))
    return parts, metrics


class TestExactness:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: repr(s))
    def test_small_graph_zoo(self, strategy):
        for graph in small_graphs():
            parts, _ = run(strategy, graph)
            assert sorted(parts) == ordered_oracle(graph), graph

    @pytest.mark.parametrize(
        "strategy", [MinCutLazy(), MinCutEager(), MinCutOptimistic()],
        ids=["lazy", "eager", "optimistic"],
    )
    @given(seed=st.integers(0, 50_000), cyclicity=st.sampled_from([0.0, 0.3, 0.6]))
    @settings(max_examples=40, deadline=None)
    def test_random_graphs(self, strategy, seed, cyclicity):
        graph = random_connected_graph(8, cyclicity, seed)
        parts, _ = run(strategy, graph)
        assert sorted(parts) == ordered_oracle(graph)

    def test_subset_partitioning(self):
        graph = grid(3, 3)
        subset = mask_of([0, 1, 2, 4, 5])
        parts, _ = run(MinCutLazy(), graph, subset)
        assert sorted(parts) == ordered_oracle(graph, subset)

    def test_no_duplicates(self):
        for graph in [clique(6), wheel(8), grid(3, 3)]:
            parts, _ = run(MinCutLazy(), graph)
            assert len(parts) == len(set(parts))

    def test_anchor_choice_does_not_change_cuts(self):
        graph = wheel(8)
        baseline = sorted(run(MinCutLazy(), graph)[0])
        for anchor in range(graph.n):
            for strategy in (MinCutLazy(anchor=anchor), MinCutOptimistic(anchor=anchor)):
                parts, _ = run(strategy, graph)
                assert sorted(parts) == baseline

    def test_singleton_and_pair(self):
        g = chain(2)
        parts, _ = run(MinCutLazy(), g, 0b01)
        assert parts == []
        parts, _ = run(MinCutLazy(), g)
        assert sorted(parts) == [(0b01, 0b10), (0b10, 0b01)]


class TestLazinessProfile:
    """Section 3.3.1's analysis of biconnection-tree construction counts."""

    def test_acyclic_builds_exactly_one_tree(self):
        for graph in [chain(12), star(12), binary_tree(15),
                      random_connected_graph(12, 0.0, 9)]:
            _, metrics = run(MinCutLazy(), graph)
            assert metrics.bcc_trees_built == 1

    def test_eager_builds_one_tree_per_invocation(self):
        graph = chain(8)
        _, metrics = run(MinCutEager(), graph)
        # Every recursive invocation past the early-exit builds a tree.
        assert metrics.bcc_trees_built > graph.n // 2

    def test_clique_lazy_degrades_to_eager(self):
        graph = clique(7)
        _, lazy = run(MinCutLazy(), graph)
        _, eager = run(MinCutEager(), graph)
        # Trees are almost never reusable on cliques.
        assert lazy.bcc_trees_built >= eager.bcc_trees_built * 0.8

    def test_size3_tweak_reduces_rebuilds_on_triangles(self):
        graph = cycle(3)
        _, plain = run(MinCutLazy(), graph)
        _, tweaked = run(MinCutLazy(size3_tweak=True), graph)
        assert tweaked.bcc_trees_built <= plain.bcc_trees_built

    def test_usability_hits_counted(self):
        _, metrics = run(MinCutLazy(), chain(10))
        assert metrics.usability_hits > 0
        assert metrics.usability_hits <= metrics.usability_tests


class TestOptimisticProfile:
    """Section 3.3.2's failure accounting for MinCutOptimistic."""

    def test_clique_zero_failures(self):
        _, metrics = run(MinCutOptimistic(), clique(8))
        assert metrics.failed_connectivity_tests == 0

    def test_acyclic_failures_below_cuts(self):
        for graph in [chain(10), binary_tree(15), random_connected_graph(11, 0.0, 4)]:
            _, metrics = run(MinCutOptimistic(), graph)
            cuts = metrics.partitions_emitted // 2
            assert metrics.failed_connectivity_tests < cuts

    def test_wheel_rim_anchor_worst_case(self):
        """With a rim anchor the hub enters S first and failures grow
        superlinearly in the cut count (paper Figure 5)."""
        graph = wheel(12)
        _, hub_anchor = run(MinCutOptimistic(), graph)
        _, rim_anchor = run(MinCutOptimistic(anchor=1), graph)
        cuts = rim_anchor.partitions_emitted // 2
        assert hub_anchor.failed_connectivity_tests == 0
        assert rim_anchor.failed_connectivity_tests > cuts

    def test_wheel_failures_scale_with_size(self):
        failures = {}
        for n in (8, 12, 16):
            _, metrics = run(MinCutOptimistic(anchor=1), wheel(n))
            cuts = metrics.partitions_emitted // 2
            failures[n] = metrics.failed_connectivity_tests / cuts
        assert failures[16] > failures[8]


class TestLeftDeepMinCut:
    def test_star_partitions(self):
        graph = star(5)
        parts, _ = run(MinCutLeftDeep(), graph)
        # Leaves only; the hub is an articulation vertex.
        assert sorted(right for _, right in parts) == [bit(i) for i in range(1, 5)]

    def test_two_vertices(self):
        parts, _ = run(MinCutLeftDeep(), chain(2))
        assert sorted(parts) == [(0b01, 0b10), (0b10, 0b01)]

    def test_matches_naive_filtering(self):
        from repro.partition import NaiveLeftDeepCPFree

        for graph in small_graphs():
            if graph.n < 2:
                continue
            mc, _ = run(MinCutLeftDeep(), graph)
            naive, _ = run(NaiveLeftDeepCPFree(), graph)
            assert sorted(mc) == sorted(naive)

    def test_singleton_guard(self):
        parts, _ = run(MinCutLeftDeep(), chain(3), 0b010)
        assert parts == []

    def test_counts_no_connectivity_tests(self):
        _, metrics = run(MinCutLeftDeep(), cycle(8))
        assert metrics.connectivity_tests == 0
        assert metrics.bcc_trees_built == 1
