"""Tests for the experiment harness: every driver produces well-formed
series, and key paper-shape claims hold at small scale."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import ExperimentResult, graph_maker
from repro.experiments.memory import THRESHOLDS, required_cells


class TestCommon:
    def test_graph_maker_names(self):
        for name in ("chain", "star", "cycle", "clique", "wheel",
                     "random-acyclic", "random-cyclic"):
            g = graph_maker(name)(6, 1)
            assert g.n == 6

    def test_graph_maker_unknown(self):
        with pytest.raises(ValueError):
            graph_maker("moebius")

    def test_render(self):
        result = ExperimentResult("figX", "demo", ["a", "b"])
        result.add_row(a=1, b=0.123456)
        result.add_row(a=2, b=None)
        text = result.render()
        assert "figX" in text and "demo" in text
        assert "0.1235" in text and "-" in text

    def test_column_extraction(self):
        result = ExperimentResult("figX", "demo", ["a"])
        result.add_row(a=1)
        result.add_row(a=2)
        assert result.column("a") == [1, 2]

    def test_to_json_roundtrip(self):
        import json

        result = ExperimentResult("figX", "demo", ["a", "b"], notes=["hi"])
        result.add_row(a=1, b=2.5)
        decoded = json.loads(result.to_json())
        assert decoded["experiment_id"] == "figX"
        assert decoded["rows"] == [{"a": 1, "b": 2.5}]
        assert decoded["notes"] == ["hi"]


class TestExperimentRegistry:
    def test_all_ids_present(self):
        expected = {f"fig{i}" for i in range(2, 21)} | {
            "fig21-24", "fig25-30", "memory-policies", "shared-cache",
            "table2", "optimality",
        }
        assert set(EXPERIMENTS) == expected


@pytest.fixture(scope="module")
def fig2():
    return EXPERIMENTS["fig2"]("small")


@pytest.fixture(scope="module")
def fig5():
    return EXPERIMENTS["fig5"]("small")


class TestMinCutShapes:
    def test_fig2_lazy_single_tree_and_dominance(self, fig2):
        for row in fig2.rows:
            assert row["lazy_trees"] == 1
            assert row["eager_trees"] > 1
        # At the largest size lazy clearly beats eager.
        last = fig2.rows[-1]
        assert last["lazy_ms"] < last["eager_ms"]

    def test_fig4_lazy_degrades_to_eager_on_cliques(self):
        result = EXPERIMENTS["fig4"]("small")
        last = result.rows[-1]
        assert last["optimistic_failed"] == 0
        # Lazy's trees approach eager's (reuse almost never possible).
        assert last["lazy_trees"] >= 0.8 * last["eager_trees"]

    def test_fig5_optimistic_failures_grow(self, fig5):
        ratios = [row["optimistic_failed"] / row["cuts"] for row in fig5.rows]
        assert ratios[-1] > ratios[0]
        assert all(row["optimistic_failed"] > 0 for row in fig5.rows)


class TestExhaustiveShapes:
    def test_fig6_runs_and_orders(self):
        result = EXPERIMENTS["fig6"]("small")
        for row in result.rows:
            assert row["TLNmc_ms"] > 0
            # Chains: everything within a small factor (paper: modest gap).
            assert row["TLNnaive_rel"] < 4
            assert row["BLNsize_rel"] < 4

    def test_fig9_optimal_algorithms_cluster(self):
        result = EXPERIMENTS["fig9"]("small")
        last = result.rows[-1]
        # The two optimal algorithms stay close; size-driven lags as n grows.
        assert last["BBNccp_rel"] < 3

    def test_fig9_join_op_counts_match_formula(self):
        from repro.analysis.counting import ono_lohman_join_operators
        from repro.spaces import PlanSpace

        result = EXPERIMENTS["fig9"]("small")
        for row in result.rows:
            expected = ono_lohman_join_operators(
                "star", row["n"], PlanSpace.bushy_cp_free()
            )
            assert row["TBNmc_joinops"] == expected


class TestBoundingShapes:
    @pytest.fixture(scope="class")
    def fig16(self):
        return EXPERIMENTS["fig16"]("small")

    def test_accumulated_storage_pruning(self):
        result = EXPERIMENTS["fig14"]("small")
        for row in result.rows:
            assert row["A_p"] < 1.0          # plans pruned
            assert row["A_p"] <= row["A_p+lb"]  # bounds add storage back
            assert row["P_p"] < 1.01

    def test_accumulated_cpu_blowup_trend(self, fig16):
        rels = [row["A_rel"] for row in fig16.rows]
        assert rels[-1] > rels[0]  # worsens with size (Section 4.3.2)

    def test_reexpansions_grow(self, fig16):
        reexp = [row["A_reexpansions"] for row in fig16.rows]
        assert reexp[-1] > reexp[0] > 0


class TestMemoryExperiment:
    def test_required_cells_positive(self):
        assert required_cells(6, 1) > 6

    def test_fig21_24_monotone_in_storage(self):
        result = EXPERIMENTS["fig21-24"]("small")
        exhaustive_rows = [r for r in result.rows if r["algorithm"] == "TLNmc"]
        assert exhaustive_rows
        for row in exhaustive_rows:
            assert row["0%"] > row["100%"] * 1.05  # recomputation costs

    def test_fig25_30_zero_storage_A_beats_P(self):
        result = EXPERIMENTS["fig25-30"]("small")
        zero = [r for r in result.rows if r["threshold"] == "0%"]
        assert zero
        # Paper Figure 30: with no memoization, accumulated-cost pruning
        # always reduces visits, so A beats P at the largest size.
        last = max(zero, key=lambda r: r["n"])
        assert last["A_rel"] < last["P_rel"]

    def test_thresholds_cover_paper_grid(self):
        assert THRESHOLDS == (1.0, 0.25, 0.10, 0.05, 0.01, 0.0)


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self):
        return EXPERIMENTS["table2"]("small")

    def test_groups_present(self, table2):
        spaces = {row["space"] for row in table2.rows}
        assert spaces == {
            "Left-Deep CP-free", "Bushy CP-free",
            "Left-Deep with CPs", "Bushy with CPs",
        }

    def test_join_op_anchors(self, table2):
        """Table 2's star n=5 row: 36 / 64 / 75 / 180 join operators."""
        anchors = {
            "Left-Deep CP-free": 36,
            "Bushy CP-free": 64,
            "Left-Deep with CPs": 75,
            "Bushy with CPs": 180,
        }
        for row in table2.rows:
            if row["algorithm"] == "(join ops)":
                assert row["star:5"] == anchors[row["space"]]

    def test_pruned_never_slower_by_much(self, table2):
        """Predicted-cost variants should not exceed exhaustive by a large
        factor anywhere in the table (pruning is risk-free)."""
        by_space: dict[str, dict[str, dict]] = {}
        for row in table2.rows:
            by_space.setdefault(row["space"], {})[row["algorithm"]] = row
        pairs = [
            ("Left-Deep CP-free", "TLNmc", "TLNmcP"),
            ("Bushy CP-free", "TBNmc", "TBNmcP"),
            ("Left-Deep with CPs", "TLCnaive", "TLCnaiveP"),
            ("Bushy with CPs", "TBCnaive", "TBCnaiveP"),
        ]
        for space, exhaustive, pruned in pairs:
            rows = by_space[space]
            for cell, value in rows[exhaustive].items():
                if cell in ("space", "algorithm"):
                    continue
                # Loose bound with an absolute floor: the small cells are
                # sub-millisecond and wall-clock-noisy on a loaded machine.
                assert rows[pruned][cell] < value * 5 + 2e-3

    def test_cp_pruning_stronger_at_largest_size(self, table2):
        """Pruning is much more effective in spaces containing CPs."""
        by_space = {}
        for row in table2.rows:
            by_space.setdefault(row["space"], {})[row["algorithm"]] = row
        cell = "star:8"
        cp_ratio = (
            by_space["Bushy with CPs"]["TBCnaiveP"][cell]
            / by_space["Bushy with CPs"]["TBCnaive"][cell]
        )
        assert cp_ratio < 0.8


class TestRegressionGate:
    """Unit coverage for the Table 2 CI regression harness."""

    def test_workload_grid_shape(self):
        from repro.experiments.regression import ALGORITHMS, SIZES, workload_cells

        cells = workload_cells()
        assert len(cells) == len(ALGORITHMS) * 3 * len(SIZES)
        keys = {(c["algorithm"], c["topology"], c["n"]) for c in cells}
        assert len(keys) == len(cells)  # no duplicate cells
        assert all(isinstance(c["seed"], int) for c in cells)

    def test_collect_with_injected_runner(self):
        from repro.experiments.regression import collect

        def fake_runner(cell):
            return {
                "cost": float(cell["n"]),
                "metrics": {"join_operators_costed": cell["n"] * 10},
            }

        measured = collect(runner=fake_runner)
        assert all(
            row["join_operators_costed"] in (50, 80) for row in measured.values()
        )

    def test_compare_flags_counter_and_cost_drift(self):
        from repro.experiments.regression import compare

        baseline = {"a": {"cost": 100.0, "join_operators_costed": 10}}
        assert compare(baseline, {"a": {"cost": 100.0, "join_operators_costed": 10}}) == []
        [problem] = compare(
            baseline, {"a": {"cost": 100.0, "join_operators_costed": 11}}
        )
        assert "join_operators_costed" in problem
        [problem] = compare(baseline, {"a": {"cost": 101.0, "join_operators_costed": 10}})
        assert "cost" in problem
        # tolerance absorbs float-summation noise but not real drift
        assert compare(
            baseline, {"a": {"cost": 100.0 * (1 + 1e-12), "join_operators_costed": 10}}
        ) == []

    def test_compare_flags_missing_and_extra_cells(self):
        from repro.experiments.regression import compare

        baseline = {"a": {"cost": 1.0, "join_operators_costed": 1}}
        measured = {"b": {"cost": 1.0, "join_operators_costed": 1}}
        problems = compare(baseline, measured)
        assert len(problems) == 2

    def test_committed_baseline_loads_and_covers_grid(self):
        import json
        import os

        from repro.experiments.regression import (
            DEFAULT_BASELINE_PATH,
            workload_cells,
        )

        path = os.path.join(os.path.dirname(__file__), "..", DEFAULT_BASELINE_PATH)
        with open(path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        assert len(baseline) == len(workload_cells())
        for row in baseline.values():
            assert row["cost"] > 0
            assert row["join_operators_costed"] > 0
