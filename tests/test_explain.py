"""Tests for plan-decision explain: bounding ledger + multiphase diff.

The acceptance bar from the observability issue: on a multiphase
clique-10 run, ``explain_phases`` must report a reuse/reject reason for
*every* subplan of the phase-1 optimum — no silent drops.
"""

import pytest

from repro.multiphase import (
    SubplanDecision,
    explain_phases,
    optimize_multiphase,
    render_phase_diff,
)
from repro.obs.exporters import read_jsonl, write_jsonl
from repro.obs.explain import bounding_ledger, render_ledger
from repro.obs.tracer import RecordingTracer
from repro.registry import make_optimizer
from repro.workloads import clique, star
from repro.workloads.weights import weighted_query

VERDICTS = {"reused", "improved", "rejected", "restructured", "pruned"}


class TestBoundingLedger:
    def _traced_run(self, algorithm="TBNmcAP", n=8):
        query = weighted_query(clique(n), 5)
        tracer = RecordingTracer()
        optimizer = make_optimizer(algorithm, query, tracer=tracer)
        optimizer.optimize()
        return query, tracer

    def test_one_entry_per_cell(self):
        _query, tracer = self._traced_run()
        ledger = bounding_ledger(tracer)
        cells = [(e.subset, e.order) for e in ledger]
        assert len(cells) == len(set(cells))
        assert len(ledger) == len({
            (s.subset, s.order) for s in tracer.spans()
        })

    def test_budgeted_run_records_budgets(self):
        _query, tracer = self._traced_run("TBNmcAP")
        ledger = bounding_ledger(tracer)
        assert any(e.budgets for e in ledger)
        for entry in ledger:
            assert tuple(sorted(entry.budgets)) == entry.budgets
            assert entry.computations >= entry.budget_failures

    def test_ledger_survives_jsonl_roundtrip(self, tmp_path):
        _query, tracer = self._traced_run()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, str(path))
        reloaded = bounding_ledger(read_jsonl(str(path)))
        live = bounding_ledger(tracer)
        assert [e.to_dict() for e in reloaded] == [e.to_dict() for e in live]

    def test_render_ledger_limits(self):
        query, tracer = self._traced_run()
        ledger = bounding_ledger(tracer)
        full = render_ledger(ledger, query)
        assert "expression" in full
        short = render_ledger(ledger, query, limit=3)
        assert len(short.splitlines()) < len(full.splitlines())
        assert "more expressions" in short


class TestExplainPhases:
    def _diff(self, n=10, phases=("TBNmcP", "TBCnaiveP")):
        query = weighted_query(clique(n), 5)
        result = optimize_multiphase(query, list(phases), trace=True)
        return query, result, explain_phases(result, query)

    def test_every_phase1_subplan_has_a_decision(self):
        """The acceptance criterion: clique-10, no subplan unaccounted."""
        _query, result, decisions = self._diff(n=10)
        phase1_subsets = {
            node.vertices for node in result.phases[-2].plan.iter_nodes()
        }
        assert {d.subset for d in decisions} == phase1_subsets
        for decision in decisions:
            assert decision.verdict in VERDICTS
            assert decision.reason
            assert decision.label

    def test_seeded_second_phase_reuses_or_improves(self):
        """Phase 2 over a superset space never worsens a kept subplan."""
        _query, _result, decisions = self._diff(n=8)
        for decision in decisions:
            if decision.phase2_cost is not None and decision.verdict in (
                "reused", "improved"
            ):
                assert decision.phase2_cost <= decision.phase1_cost

    def test_left_deep_to_bushy_explains_discards(self):
        """A bushy phase 2 restructures star left-deep subplans."""
        query = weighted_query(star(8), 5)
        result = optimize_multiphase(
            query, ["TLNmcP", "TBNmcP"], trace=True
        )
        decisions = explain_phases(result, query)
        assert decisions
        assert all(d.verdict in VERDICTS and d.reason for d in decisions)

    def test_requires_two_phases(self):
        query = weighted_query(clique(6), 5)
        result = optimize_multiphase(query, ["TBNmc"], trace=True)
        with pytest.raises(ValueError, match="two phases"):
            explain_phases(result, query)

    def test_requires_trace(self):
        query = weighted_query(clique(6), 5)
        result = optimize_multiphase(query, ["TBNmcP", "TBCnaiveP"])
        with pytest.raises(ValueError, match="trace=True"):
            explain_phases(result, query)

    def test_to_dict_is_json_ready(self):
        import json

        _query, _result, decisions = self._diff(n=8)
        payload = json.dumps([d.to_dict() for d in decisions])
        assert json.loads(payload)[0]["verdict"] in VERDICTS


class TestRenderPhaseDiff:
    def _decisions(self):
        return [
            SubplanDecision(0b111, "a ⋈ b ⋈ c", "reused",
                            "kept at matching cost 12", 12.0, 12.0),
            SubplanDecision(0b011, "a ⋈ b", "improved",
                            "larger space found cost 4 < 6", 6.0, 4.0),
            SubplanDecision(0b110, "b ⋈ c", "rejected",
                            "every attempt failed its budget", 9.0, None),
        ]

    def test_renders_all_rows(self):
        text = render_phase_diff(self._decisions())
        assert "expression" in text
        assert text.count("\n") == 3
        assert "reused" in text and "improved" in text and "rejected" in text
        assert " - " not in text.splitlines()[1]  # reused row has both costs

    def test_limit_elides(self):
        text = render_phase_diff(self._decisions(), limit=1)
        assert "2 more subplans" in text

    def test_empty(self):
        assert render_phase_diff([]) == "(no phase-1 subplans)"
