"""Tests for the top-down partition search (Algorithm 1)."""

import pytest

from repro.analysis.counting import count_join_operators, ono_lohman_join_operators
from repro.analysis.metrics import Metrics
from repro.catalog import Query
from repro.cost.io_model import CostModel
from repro.enumerator import OptimizationError, TopDownEnumerator
from repro.memo import MemoTable
from repro.partition import (
    MinCutLazy,
    MinCutLeftDeep,
    NaiveBushyCP,
    NaiveLeftDeepCP,
)
from repro.plans import validate_plan
from repro.spaces import PlanSpace
from repro.workloads import chain, random_connected_graph
from repro.workloads.weights import weighted_query

from tests.helpers import make_query


def two_relation_query():
    return Query.uniform(chain(2), cardinality=10_000, selectivity=0.001)


class TestBasics:
    def test_single_relation(self):
        q = Query.uniform(chain(1))
        plan = TopDownEnumerator(q, MinCutLazy()).optimize()
        assert plan.is_scan
        assert plan.vertices == 1

    def test_two_relations_hand_checked(self):
        q = two_relation_query()
        model = CostModel()
        plan = TopDownEnumerator(q, MinCutLazy(), model).optimize()
        # Optimal two-way join: cheapest method over (R0,R1)/(R1,R0).
        pages = q.pages(1)
        candidates = []
        for method in model.JOIN_METHODS:
            candidates.append(2 * pages + model.join_operator_cost(method, pages, pages))
        assert plan.cost == pytest.approx(min(candidates))
        validate_plan(plan, q)

    def test_best_plan_subexpression(self):
        q = make_query("chain", 5, 3)
        enum = TopDownEnumerator(q, MinCutLazy())
        sub = enum.best_plan(0b00111)
        validate_plan(sub, q, expected_vertices=0b00111)

    def test_best_plan_disconnected_cp_free_fails(self):
        q = make_query("chain", 5, 3)
        enum = TopDownEnumerator(q, MinCutLazy())
        with pytest.raises(OptimizationError):
            enum.best_plan(0b10001)  # disconnected: no CP-free plan

    def test_disconnected_ok_with_cp_space(self):
        q = make_query("chain", 5, 3)
        enum = TopDownEnumerator(q, NaiveBushyCP())
        plan = enum.best_plan(0b10001)
        validate_plan(plan, q, expected_vertices=0b10001)

    def test_repeated_optimize_uses_memo(self):
        q = make_query("star", 6, 1)
        metrics = Metrics()
        enum = TopDownEnumerator(q, MinCutLazy(), metrics=metrics)
        first = enum.optimize()
        expansions = metrics.expressions_expanded
        second = enum.optimize()
        assert second.cost == first.cost
        assert metrics.expressions_expanded == expansions  # pure memo hit


class TestOptimalityCounters:
    """The enumerator must enumerate exactly the Ono–Lohman join operators."""

    @pytest.mark.parametrize("topology", ["chain", "star"])
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_bushy_cp_free_counts(self, topology, n):
        q = make_query(topology, n, 5)
        metrics = Metrics()
        TopDownEnumerator(q, MinCutLazy(), metrics=metrics).optimize()
        expected = ono_lohman_join_operators(topology, n, PlanSpace.bushy_cp_free())
        assert metrics.logical_joins_enumerated == expected
        # Each logical join costs all three physical methods.
        assert metrics.join_operators_costed == 3 * expected

    @pytest.mark.parametrize("topology", ["chain", "star"])
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_left_deep_cp_free_counts(self, topology, n):
        q = make_query(topology, n, 5)
        metrics = Metrics()
        TopDownEnumerator(q, MinCutLeftDeep(), metrics=metrics).optimize()
        expected = ono_lohman_join_operators(topology, n, PlanSpace.left_deep_cp_free())
        assert metrics.logical_joins_enumerated == expected

    def test_random_graph_counts_match_brute_force(self):
        for seed in range(5):
            g = random_connected_graph(7, 0.4, seed)
            q = weighted_query(g, seed)
            metrics = Metrics()
            TopDownEnumerator(q, MinCutLazy(), metrics=metrics).optimize()
            assert metrics.logical_joins_enumerated == count_join_operators(
                g, PlanSpace.bushy_cp_free()
            )

    def test_with_cp_counts(self):
        n = 6
        q = make_query("chain", n, 5)
        metrics = Metrics()
        TopDownEnumerator(q, NaiveBushyCP(), metrics=metrics).optimize()
        assert metrics.logical_joins_enumerated == 3**n - 2 ** (n + 1) + 1
        metrics2 = Metrics()
        TopDownEnumerator(q, NaiveLeftDeepCP(), metrics=metrics2).optimize()
        assert metrics2.logical_joins_enumerated == n * 2 ** (n - 1) - n

    def test_no_reexpansion_without_bounding(self):
        q = make_query("star", 7, 5)
        metrics = Metrics()
        TopDownEnumerator(q, MinCutLazy(), metrics=metrics).optimize()
        assert metrics.expressions_reexpanded == 0


class TestGracefulMemoDegradation:
    """Section 5.1: top-down search recomputes missing cells correctly."""

    def test_capacity_zero_still_optimal(self):
        q = make_query("star", 5, 9)
        reference = TopDownEnumerator(q, MinCutLazy()).optimize()
        constrained = TopDownEnumerator(
            q, MinCutLazy(), memo=MemoTable(capacity=0)
        ).optimize()
        assert constrained.cost == pytest.approx(reference.cost)

    @pytest.mark.parametrize("capacity", [1, 3, 10, 30])
    def test_any_capacity_still_optimal(self, capacity):
        q = make_query("chain", 7, 11)
        reference = TopDownEnumerator(q, MinCutLazy()).optimize()
        metrics = Metrics()
        constrained = TopDownEnumerator(
            q, MinCutLazy(), memo=MemoTable(capacity=capacity, metrics=metrics),
            metrics=metrics,
        ).optimize()
        assert constrained.cost == pytest.approx(reference.cost)
        assert metrics.peak_memo_cells <= capacity

    def test_smaller_capacity_recomputes_more(self):
        # Keep n small: with capacity 0 the recursion re-derives every
        # subexpression per use, which is exponential by design.
        q = make_query("star", 6, 4)
        expansions = {}
        for capacity in (None, 8, 0):
            metrics = Metrics()
            TopDownEnumerator(
                q, MinCutLazy(), memo=MemoTable(capacity=capacity), metrics=metrics
            ).optimize()
            expansions[capacity] = metrics.expressions_expanded
        assert expansions[None] <= expansions[8] <= expansions[0]
        assert expansions[0] > expansions[None]


class TestInterestingOrders:
    """Algorithm 1's demand-driven order machinery."""

    def test_ordered_root_plan_satisfies_order(self):
        q = make_query("chain", 4, 7)
        enum = TopDownEnumerator(q, MinCutLazy())
        plan = enum.optimize(order=0)
        assert plan.order == 0
        validate_plan(plan, q)

    def test_order_never_cheaper_than_unordered(self):
        q = make_query("chain", 4, 7)
        enum = TopDownEnumerator(q, MinCutLazy())
        unordered = enum.optimize()
        ordered = enum.optimize(order=0)
        assert ordered.cost >= unordered.cost

    def test_memo_keyed_by_order(self):
        q = make_query("chain", 4, 7)
        enum = TopDownEnumerator(q, MinCutLazy())
        enum.optimize(order=0)
        full = q.graph.all_vertices
        assert enum.memo.get(q, full, 0) is not None
        assert enum.memo.get(q, full, None) is not None  # computed as fallback

    def test_smj_can_satisfy_order_without_sort(self):
        """When the requested order matches a sort-merge join's output,
        the optimizer may answer without a top-level sort enforcer."""
        q = Query.uniform(chain(2), cardinality=100_000, selectivity=0.001)
        enum = TopDownEnumerator(q, MinCutLazy())
        plan = enum.optimize(order=0)
        assert plan.order == 0
        # Either shape is legal, but the plan must cost no more than
        # sort-on-top-of-best-unordered.
        unordered = enum.optimize()
        model = CostModel()
        assert plan.cost <= model.build_sort(q, unordered, 0).cost + 1e-9

    def test_scan_order_via_sort(self):
        q = make_query("chain", 3, 1)
        enum = TopDownEnumerator(q, MinCutLazy())
        plan = enum.best_plan(0b001, order=0)
        assert plan.op == "sort"
        assert plan.order == 0


class TestIndexScans:
    """Footnote 3's access path: a clustered index produces key order
    without a sort, which demand-driven order search exploits."""

    def test_index_scan_satisfies_order_directly(self):
        q = make_query("chain", 3, 5)
        model = CostModel(indexed_relations={0})
        enum = TopDownEnumerator(q, MinCutLazy(), model)
        plan = enum.best_plan(0b001, order=0)
        assert plan.op == "iscan"
        assert plan.order == 0

    def test_index_never_worse_than_sort(self):
        q = make_query("chain", 4, 5)
        plain = TopDownEnumerator(q, MinCutLazy(), CostModel())
        indexed = TopDownEnumerator(
            q, MinCutLazy(), CostModel(indexed_relations={0, 1, 2, 3})
        )
        for order in range(4):
            with_index = indexed.optimize(order=order)
            without = plain.optimize(order=order)
            assert with_index.cost <= without.cost + 1e-9

    def test_index_only_covers_its_own_relation(self):
        q = make_query("chain", 3, 5)
        model = CostModel(indexed_relations={0})
        assert model.scan_plans(q, 0b010, order=1) == []
        assert model.scan_plans(q, 0b001, order=1) == []

    def test_unordered_scan_unaffected(self):
        q = make_query("chain", 3, 5)
        model = CostModel(indexed_relations={0})
        [scan] = model.scan_plans(q, 0b001, None)
        assert scan.op == "scan"
