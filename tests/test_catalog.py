"""Tests for relations, predicates, the catalog builder, and cardinality
estimation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, JoinPredicate, Query, Relation
from repro.core.bitset import iter_subsets, mask_of
from repro.core.joingraph import JoinGraph
from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import weighted_query


class TestRelation:
    def test_pages(self):
        r = Relation("R", 1000, tuples_per_page=100)
        assert r.pages == 10.0

    def test_pages_minimum_one(self):
        assert Relation("R", 5).pages == 1.0

    def test_negative_cardinality_rejected(self):
        with pytest.raises(ValueError):
            Relation("R", -1)

    def test_bad_packing_rejected(self):
        with pytest.raises(ValueError):
            Relation("R", 10, tuples_per_page=0)


class TestJoinPredicate:
    def test_endpoints_normalized(self):
        assert JoinPredicate(3, 1, 0.5).endpoints() == (1, 3)

    def test_self_join_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate(2, 2, 0.5)

    def test_selectivity_bounds(self):
        with pytest.raises(ValueError):
            JoinPredicate(0, 1, 0.0)
        with pytest.raises(ValueError):
            JoinPredicate(0, 1, 1.5)
        JoinPredicate(0, 1, 1.0)  # inclusive upper bound is allowed


class TestCatalog:
    def test_build_and_freeze(self):
        cat = Catalog()
        a = cat.add_relation("A", 1000)
        b = cat.add_relation("B", 2000)
        c = cat.add_relation("C", 500)
        cat.add_predicate(a, b, 0.01)
        cat.add_predicate(b, c, 0.1)
        q = Query.from_catalog(cat)
        assert q.n == 3
        assert q.graph.has_edge(a, b)
        assert q.cardinality(mask_of([a, b])) == pytest.approx(1000 * 2000 * 0.01)

    def test_duplicate_relation_rejected(self):
        cat = Catalog()
        cat.add_relation("A", 10)
        with pytest.raises(ValueError):
            cat.add_relation("A", 20)

    def test_duplicate_predicate_rejected(self):
        cat = Catalog()
        cat.add_relation("A", 10)
        cat.add_relation("B", 10)
        cat.add_predicate(0, 1, 0.5)
        with pytest.raises(ValueError):
            cat.add_predicate(1, 0, 0.5)

    def test_unknown_relation_rejected(self):
        cat = Catalog()
        cat.add_relation("A", 10)
        with pytest.raises(ValueError):
            cat.add_predicate(0, 3, 0.5)

    def test_disconnected_catalog_rejected(self):
        cat = Catalog()
        for name in "ABCD":
            cat.add_relation(name, 10)
        cat.add_predicate(0, 1, 0.5)
        cat.add_predicate(2, 3, 0.5)
        with pytest.raises(ValueError):
            Query.from_catalog(cat)

    def test_index_of(self):
        cat = Catalog()
        cat.add_relation("A", 10)
        cat.add_relation("B", 10)
        assert cat.index_of("B") == 1
        with pytest.raises(KeyError):
            cat.index_of("Z")


class TestQuery:
    def test_uniform_constructor(self):
        q = Query.uniform(chain(4), cardinality=100, selectivity=0.1)
        assert q.cardinality(1) == 100
        assert q.cardinality(0b11) == pytest.approx(1000)

    def test_mismatched_relations_rejected(self):
        with pytest.raises(ValueError):
            Query(chain(3), [Relation("A", 1)], {})

    def test_missing_selectivity_rejected(self):
        rels = [Relation(f"R{i}", 10) for i in range(3)]
        with pytest.raises(ValueError):
            Query(chain(3), rels, {(0, 1): 0.5})

    def test_extra_selectivity_rejected(self):
        rels = [Relation(f"R{i}", 10) for i in range(3)]
        with pytest.raises(ValueError):
            Query(chain(3), rels, {(0, 1): 0.5, (1, 2): 0.5, (0, 2): 0.5})

    def test_predicates_roundtrip(self):
        q = Query.uniform(star(4), selectivity=0.25)
        preds = q.predicates()
        assert len(preds) == 3
        assert all(p.selectivity == 0.25 for p in preds)

    def test_describe(self):
        assert "n=4" in Query.uniform(chain(4)).describe()


class TestCardinalityEstimation:
    def test_empty_set(self):
        q = Query.uniform(chain(3))
        assert q.cardinality(0) == 1.0  # empty product

    def test_independence_assumption(self):
        q = Query.uniform(chain(3), cardinality=10, selectivity=0.5)
        # |{0,1,2}| = 10^3 * 0.5^2
        assert q.cardinality(0b111) == pytest.approx(250)

    def test_cartesian_product_no_reduction(self):
        q = Query.uniform(chain(3), cardinality=10, selectivity=0.5)
        assert q.cardinality(0b101) == pytest.approx(100)

    def test_caching_returns_same_value(self):
        q = weighted_query(star(6), 3)
        v = q.cardinality(0b111)
        assert q.cardinality(0b111) == v

    def test_join_selectivity_cross_edges_only(self):
        q = Query.uniform(chain(4), selectivity=0.5)
        assert q.join_selectivity(0b0011, 0b1100) == pytest.approx(0.5)  # edge 1-2
        assert q.join_selectivity(0b0101, 0b1010) == pytest.approx(0.125)  # all 3 edges cross
        assert q.join_selectivity(0b0001, 0b0100) == pytest.approx(1.0)  # no edge crosses

    @given(st.integers(0, 3000))
    @settings(max_examples=40)
    def test_composition_consistency(self, seed):
        """card(S) == card(L) * card(R) * sel(L, R) for any split."""
        g = random_connected_graph(6, 0.4, seed)
        q = weighted_query(g, seed)
        full = g.all_vertices
        for left in iter_subsets(full, proper=True):
            right = full ^ left
            combined = q.cardinality(left) * q.cardinality(right)
            combined *= q.join_selectivity(left, right)
            assert math.isclose(q.cardinality(full), combined, rel_tol=1e-9)

    def test_pages_of_base_and_intermediate(self):
        q = Query.uniform(chain(2), cardinality=1000)
        assert q.pages(0b01) == 10.0
        # Intermediate result: 1000*1000*0.01 = 10000 tuples.
        assert q.pages(0b11) == pytest.approx(100.0)
