"""Tests for multi-phase optimization (Section 5.2)."""

import pytest

from repro.multiphase import optimize_multiphase
from repro.registry import optimize
from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import weighted_query


class TestTwoPhase:
    @pytest.mark.parametrize(
        "phases,final",
        [
            (["TLNmc", "TLCnaive"], "TLCnaive"),
            (["TLNmcP", "TLCnaiveP"], "TLCnaive"),
            (["TBNmc", "TBCnaive"], "TBCnaive"),
            (["TBNmcP", "TBCnaiveP"], "TBCnaive"),
        ],
        ids=lambda x: "+".join(x) if isinstance(x, list) else x,
    )
    def test_final_plan_is_global_optimum(self, phases, final):
        for seed in range(3):
            query = weighted_query(random_connected_graph(6, 0.3, seed), seed)
            result = optimize_multiphase(query, phases)
            reference = optimize(final, query)
            assert result.plan.cost == pytest.approx(reference.cost)

    def test_phase_results_recorded(self):
        query = weighted_query(star(6), 5)
        result = optimize_multiphase(query, ["TBNmcP", "TBCnaiveP"])
        assert len(result.phases) == 2
        assert result.phases[0].algorithm == "TBNmcP"
        # Phase 1 (smaller space) can never beat phase 2.
        assert result.phases[1].plan.cost <= result.phases[0].plan.cost + 1e-9

    def test_total_metrics_accumulate(self):
        query = weighted_query(star(6), 5)
        result = optimize_multiphase(query, ["TBNmcP", "TBCnaiveP"])
        total = result.total_metrics
        assert total.logical_joins_enumerated >= max(
            p.metrics.logical_joins_enumerated for p in result.phases
        )

    def test_seeding_reduces_second_phase_work(self):
        """With predicted-cost pruning, the phase-1 optimum strengthens
        phase-2 pruning relative to running phase 2 cold."""
        improved = 0
        trials = 6
        for seed in range(trials):
            query = weighted_query(random_connected_graph(7, 0.0, seed), seed + 100)
            two_phase = optimize_multiphase(query, ["TBNmcP", "TBCnaiveP"])
            from repro.analysis.metrics import Metrics
            from repro.registry import make_optimizer

            cold = Metrics()
            make_optimizer("TBCnaiveP", query, metrics=cold).optimize()
            seeded_phase2 = two_phase.phases[1].metrics
            if seeded_phase2.join_operators_costed <= cold.join_operators_costed:
                improved += 1
        assert improved >= trials // 2


class TestValidation:
    def test_empty_phase_list(self):
        query = weighted_query(chain(3), 1)
        with pytest.raises(ValueError):
            optimize_multiphase(query, [])

    def test_bottom_up_second_phase_rejected(self):
        query = weighted_query(chain(3), 1)
        with pytest.raises(ValueError):
            optimize_multiphase(query, ["TBNmc", "BBCnaive"])

    def test_bottom_up_first_phase_allowed(self):
        query = weighted_query(chain(4), 1)
        result = optimize_multiphase(query, ["BBNccp", "TBCnaiveP"])
        assert result.plan.cost <= result.phases[0].plan.cost + 1e-9

    def test_unknown_name_fails_fast(self):
        query = weighted_query(chain(3), 1)
        with pytest.raises(ValueError):
            optimize_multiphase(query, ["TBNmc", "NOPE"])

    def test_single_phase(self):
        query = weighted_query(chain(4), 3)
        result = optimize_multiphase(query, ["TBNmc"])
        assert result.plan.cost == pytest.approx(optimize("TBNmc", query).cost)
