"""Tests for the C_out cost model and its interplay with bounding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import Metrics
from repro.cost import CostModel, CoutCostModel
from repro.plans import validate_plan
from repro.registry import make_optimizer
from repro.spaces import PlanSpace
from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import weighted_query


class TestModel:
    def test_scans_are_free(self):
        query = weighted_query(chain(3), 1)
        model = CoutCostModel()
        [scan] = model.scan_plans(query, 1, None)
        assert scan.cost == 0.0
        assert scan.cardinality == query.cardinality(1)

    def test_join_cost_is_output_cardinality(self):
        query = weighted_query(chain(3), 1)
        model = CoutCostModel()
        [left] = model.scan_plans(query, 0b001, None)
        [right] = model.scan_plans(query, 0b010, None)
        plan = model.build_join(query, model.JOIN_METHODS[0], left, right)
        assert plan.cost == pytest.approx(query.cardinality(0b011))

    def test_all_methods_cost_the_same(self):
        query = weighted_query(chain(3), 1)
        model = CoutCostModel()
        costs = {
            model.operator_cost(query, m, 0b001, 0b010)
            for m in model.JOIN_METHODS
        }
        assert len(costs) == 1

    def test_page_interface_disabled(self):
        model = CoutCostModel()
        with pytest.raises(NotImplementedError):
            model.join_operator_cost(model.JOIN_METHODS[0], 1.0, 2.0)

    def test_lower_bound_conservative(self):
        """bound(L, R) <= cost of any plan shape joining L and R."""
        query = weighted_query(random_connected_graph(6, 0.4, 3), 3)
        model = CoutCostModel()
        from repro.core.bitset import iter_subsets

        full = query.graph.all_vertices
        for left in iter_subsets(full, proper=True):
            right = full ^ left
            bound = model.lower_bound(query, left, right)
            # Minimal conceivable plan cost: top + each composite child's
            # own top, which is exactly the bound; any real plan adds more.
            top = query.cardinality(full)
            assert bound >= top - 1e-9


class TestOptimalityUnderCout:
    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=10, deadline=None)
    def test_cross_algorithm_agreement(self, seed):
        query = weighted_query(random_connected_graph(6, 0.3, seed), seed)
        model = CoutCostModel()
        costs = set()
        for name in ("TBNmc", "BBNccp", "TBNnaive", "BBNsize",
                     "TBNmcA", "TBNmcP", "TBNmcAP"):
            plan = make_optimizer(name, query, model).optimize()
            validate_plan(plan, query, PlanSpace.bushy_cp_free())
            costs.add(round(plan.cost, 6))
        assert len(costs) == 1

    def test_cout_and_io_can_disagree_on_plans(self):
        """The two models optimize different objectives; over many seeds
        they must eventually pick different join orders."""
        differ = 0
        for seed in range(10):
            query = weighted_query(random_connected_graph(7, 0.4, seed), seed)
            io_plan = make_optimizer("TBNmc", query, CostModel()).optimize()
            cout_plan = make_optimizer("TBNmc", query, CoutCostModel()).optimize()
            if io_plan.sql_like() != cout_plan.sql_like():
                differ += 1
        assert differ > 0


class TestBoundingStrengthDependsOnModel:
    """Section 4.3.1: predicted-cost bounding strength tracks how well
    logical properties predict cost.  Under C_out the prediction is nearly
    exact, so P prunes far more than under the I/O model."""

    def test_predicted_prunes_more_under_cout(self):
        query = weighted_query(star(9), 7)
        ratios = {}
        for label, model in (("io", CostModel()), ("cout", CoutCostModel())):
            pruned = Metrics()
            make_optimizer("TBNmcP", query, model, metrics=pruned).optimize()
            exhaustive = Metrics()
            make_optimizer("TBNmc", query, model, metrics=exhaustive).optimize()
            ratios[label] = (
                pruned.join_operators_costed / exhaustive.join_operators_costed
            )
        assert ratios["cout"] < ratios["io"] * 0.7
