"""Tests for the canonical topology constructors."""

import pytest

from repro.core.bitset import bit
from repro.workloads import binary_tree, chain, clique, cycle, grid, star, wheel


class TestChain:
    def test_structure(self):
        g = chain(5)
        assert g.edge_count() == 4
        assert g.has_edge(0, 1) and g.has_edge(3, 4)
        assert not g.has_edge(0, 2)
        assert g.is_connected()

    def test_single(self):
        assert chain(1).edge_count() == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            chain(0)


class TestStar:
    def test_structure(self):
        g = star(6)
        assert g.edge_count() == 5
        assert g.degree(0) == 5
        assert all(g.degree(i) == 1 for i in range(1, 6))

    def test_invalid(self):
        with pytest.raises(ValueError):
            star(-1)


class TestCycle:
    def test_structure(self):
        g = cycle(5)
        assert g.edge_count() == 5
        assert all(g.degree(i) == 2 for i in range(5))
        assert g.has_edge(4, 0)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            cycle(2)


class TestClique:
    def test_structure(self):
        g = clique(5)
        assert g.edge_count() == 10
        assert all(g.degree(i) == 4 for i in range(5))

    def test_trivial(self):
        assert clique(1).edge_count() == 0


class TestWheel:
    def test_structure(self):
        g = wheel(6)
        # Hub degree n-1; rim vertices have hub + two rim neighbours.
        assert g.degree(0) == 5
        assert all(g.degree(i) == 3 for i in range(1, 6))
        assert g.edge_count() == 10

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            wheel(3)


class TestGrid:
    def test_structure(self):
        g = grid(2, 3)
        assert g.n == 6
        assert g.edge_count() == 7  # 2*2 vertical + 3*1 horizontal... = 4+3
        assert g.has_edge(0, 3) and g.has_edge(1, 2)
        assert not g.has_edge(2, 3)  # row wrap must not connect

    def test_degenerate_is_chain(self):
        assert grid(1, 5) == chain(5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid(0, 3)


class TestBinaryTree:
    def test_structure(self):
        g = binary_tree(7)
        assert g.edge_count() == 6
        assert g.degree(0) == 2
        assert g.has_edge(1, 3) and g.has_edge(2, 6)

    def test_acyclic(self):
        for n in (1, 2, 5, 12):
            assert binary_tree(n).edge_count() == n - 1
