"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.workloads import random_connected_graph
from repro.workloads.weights import weighted_query


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(params=range(4))
def weighted_random_query(request):
    """A weighted random query (varying seeds/cyclicity)."""
    seed = request.param
    graph = random_connected_graph(6 + seed % 2, 0.2 * (seed % 3), seed)
    return weighted_query(graph, seed + 1000)
