"""Anytime + top-k enumeration: budgets, gap bounds, ranked plans.

The executable contracts live in :mod:`repro.conformance.invariants`
(``topk-soundness`` / ``anytime-gap``); this module adds the property
layer on top (``docs/anytime.md``):

* an **unlimited** budget is a no-op — plan, cost, and every metrics
  counter conserved against the plain path;
* node budgets are **monotone**: more nodes never worsen the returned
  plan, and the gap bound certifies a sound floor at every prefix;
* the fast path **ranks identically** to the oracle, and both match an
  independent bottom-up k-best DP oracle (:func:`tests.helpers.exhaustive_topk`);
* wall-clock deadlines terminate and stay sound (``stress`` tier, being
  nondeterministic by nature).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import Metrics
from repro.anytime import (
    AnytimeReport,
    Budget,
    BudgetClock,
    BudgetExhausted,
    gap_bound_from,
    greedy_plan,
    static_lower_bound,
)
from repro.cost.io_model import CostModel
from repro.enumerator import OptimizationError
from repro.multiphase import optimize_multiphase
from repro.plans import validate_plan
from repro.registry import make_optimizer, parse_name
from tests.helpers import assert_ranked, exhaustive_topk, make_query, random_query

TOPOLOGY_NAMES = ("chain", "star", "cycle", "clique", "grid")

#: Strategy x budget sweeps stay cheap on these sizes (n <= 6).
topologies = st.sampled_from(TOPOLOGY_NAMES)
sizes = st.integers(min_value=3, max_value=6)
seeds = st.integers(min_value=0, max_value=10**6)


# -- budget / clock units ------------------------------------------------------


class TestBudget:
    def test_token_round_trip(self):
        for budget in (
            Budget.nodes(5000),
            Budget.millis(250),
            Budget(max_nodes=10, deadline_ms=1.5),
        ):
            assert Budget.parse_token(budget.token()) == budget

    def test_unlimited_has_no_token(self):
        assert Budget().is_unlimited
        with pytest.raises(ValueError):
            Budget().token()

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_nodes=-1)
        with pytest.raises(ValueError):
            Budget(deadline_ms=0)
        for bad in ("", "5x", "1n:2n", "3ms:4ms", "n"):
            with pytest.raises(ValueError):
                Budget.parse_token(bad)

    def test_clock_latches(self):
        clock = BudgetClock(Budget.nodes(2))
        clock.spend_node()
        clock.spend_node()
        for _ in range(3):
            with pytest.raises(BudgetExhausted):
                clock.spend_node()
        assert clock.exhausted
        assert clock.nodes_spent == 2

    def test_unconstrained_clock_never_interrupts(self):
        clock = BudgetClock(Budget())
        assert clock.unconstrained
        for _ in range(1000):
            clock.spend_node()
        assert clock.nodes_spent == 1000


class TestGapBound:
    def test_nonpositive_floor_degrades_to_infinity(self):
        assert math.isinf(gap_bound_from(10.0, 0.0))
        assert math.isinf(gap_bound_from(10.0, -1.0))

    def test_certified_floor_is_the_soundness_statement(self):
        report = AnytimeReport(
            plan_cost=12.0,
            lower_bound=8.0,
            gap_bound=gap_bound_from(12.0, 8.0),
            nodes_spent=3,
            completed=False,
            exhausted=True,
        )
        assert report.certified_floor == pytest.approx(8.0)

    def test_completed_and_exhausted_are_exclusive(self):
        with pytest.raises(ValueError):
            AnytimeReport(
                plan_cost=1.0,
                lower_bound=1.0,
                gap_bound=0.0,
                nodes_spent=0,
                completed=True,
                exhausted=True,
            )


# -- anytime properties --------------------------------------------------------


class TestAnytimeProperties:
    @given(topology=topologies, n=sizes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_unlimited_budget_is_a_noop(self, topology, n, seed):
        """Plan, cost, and every metrics counter conserved."""
        query = make_query(topology, n, seed)
        plain_metrics = Metrics()
        plain = make_optimizer(
            "TBNmcAP", query, metrics=plain_metrics
        ).optimize()
        budgeted_metrics = Metrics()
        optimizer = make_optimizer("TBNmcAP", query, metrics=budgeted_metrics)
        budgeted = optimizer.optimize(budget=Budget())
        assert budgeted.to_wire() == plain.to_wire()
        assert budgeted.cost == plain.cost
        assert budgeted_metrics.as_dict() == plain_metrics.as_dict()
        report = optimizer.anytime
        assert report is not None and report.completed
        assert report.gap_bound == 0.0
        assert report.nodes_spent == 0

    @given(topology=topologies, n=sizes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_node_budget_monotonicity(self, topology, n, seed):
        """More nodes never worsen the plan; the floor stays sound."""
        query = make_query(topology, n, seed)
        optimal = make_optimizer("TBNmcA", query).optimize().cost
        previous = math.inf
        for nodes in (0, 1, 2, 4, 8, 16, 64, 10**9):
            optimizer = make_optimizer("TBNmcA", query)
            plan = optimizer.optimize(budget=Budget.nodes(nodes))
            report = optimizer.anytime
            assert report is not None
            assert plan.cost <= previous * (1 + 1e-12)
            assert plan.cost >= optimal * (1 - 1e-9)
            assert report.certified_floor <= optimal * (1 + 1e-9)
            validate_plan(plan, query, parse_name("TBNmcA").space)
            previous = plan.cost
        assert math.isclose(previous, optimal, rel_tol=1e-9)

    @given(n=st.integers(min_value=3, max_value=7), seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_zero_budget_returns_the_greedy_seed(self, n, seed):
        query = random_query(n, 0.3, seed)
        optimizer = make_optimizer("TBNmc", query)
        plan = optimizer.optimize(budget=Budget.nodes(0))
        report = optimizer.anytime
        assert report is not None and report.exhausted
        assert report.nodes_spent == 0
        seed_plan = greedy_plan(
            query, CostModel(), parse_name("TBNmc").space
        )
        assert plan.to_wire() == seed_plan.to_wire()
        floor = static_lower_bound(query, CostModel())
        assert report.lower_bound >= min(floor, plan.cost) - 1e-12

    def test_budget_applies_to_ordered_roots(self):
        query = make_query("chain", 5)
        optimizer = make_optimizer("TBNmc", query)
        # Order 0 is the always-defined "no interesting order" request.
        plan = optimizer.optimize(0, budget=Budget.nodes(2))
        report = optimizer.anytime
        assert report is not None and report.exhausted
        assert plan.cost == report.plan_cost

    def test_multiphase_shares_one_clock(self):
        query = make_query("clique", 6)
        result = optimize_multiphase(
            query, ["TLNmcA", "TBNmcA"], budget=Budget.nodes(12)
        )
        spent = sum(
            phase.anytime.nodes_spent
            for phase in result.phases
            if phase.anytime is not None
        )
        assert spent <= 12
        assert result.anytime is not None

    def test_multiphase_budget_rejects_bottom_up_phases(self):
        query = make_query("chain", 4)
        with pytest.raises(ValueError, match="top-down"):
            optimize_multiphase(
                query, ["DPccp", "TBNmcA"], budget=Budget.nodes(5)
            )


# -- top-k properties ----------------------------------------------------------


class TestTopKProperties:
    @given(topology=topologies, n=sizes, seed=seeds,
           k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_fastpath_oracle_parity(self, topology, n, seed, k):
        """``!fast`` ranks bit-identically to the scalar oracle."""
        query = make_query(topology, n, seed)
        oracle = make_optimizer(
            "TBNmcAP", query, fastpath="off"
        ).optimize_topk(k)
        fast = make_optimizer("TBNmcAP!fast", query).optimize_topk(k)
        assert_ranked(oracle)
        assert [p.to_wire() for p in fast] == [p.to_wire() for p in oracle]

    @given(topology=topologies, n=sizes, seed=seeds,
           k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_matches_exhaustive_oracle(self, topology, n, seed, k):
        """Lazy top-down composition == independent bottom-up k-best DP."""
        query = make_query(topology, n, seed)
        for name in ("TBNmc", "TLNmcA"):
            ranked = make_optimizer(name, query).optimize_topk(k)
            assert_ranked(ranked)
            expected = exhaustive_topk(query, k, space=parse_name(name).space)
            got = [plan.cost for plan in ranked]
            assert len(got) == len(expected)
            assert all(
                math.isclose(a, b, rel_tol=1e-9)
                for a, b in zip(got, expected)
            )

    def test_rank_zero_is_the_champion(self):
        query = make_query("cycle", 6)
        for name in ("TBNmc", "TBNmcA", "TBNmcAP", "TLNmcA", "TBCnaive"):
            champion = make_optimizer(name, query).optimize()
            ranked = make_optimizer(name, query).optimize_topk(1)
            assert ranked[0].to_wire() == champion.to_wire()

    def test_rejects_bad_arguments(self):
        query = make_query("chain", 4)
        optimizer = make_optimizer("TBNmc", query)
        with pytest.raises(ValueError):
            optimizer.optimize_topk(0)
        with pytest.raises(OptimizationError):
            optimizer.optimize_topk(2, order=1)

    def test_single_relation_query_ranks_scans(self):
        query = make_query("chain", 1)
        ranked = make_optimizer("TBNmc", query).optimize_topk(3)
        assert_ranked(ranked)


# -- deadline tier (nondeterministic by nature) --------------------------------


@pytest.mark.stress
class TestDeadlineDeterminism:
    def test_deadline_terminates_and_stays_sound(self):
        """A wall-clock deadline interrupts a large search with a valid,
        sound result regardless of where the clock lands."""
        query = make_query("clique", 9)
        optimal = make_optimizer("TBNmcA", query).optimize().cost
        for deadline_ms in (0.1, 1.0, 10.0, 10_000.0):
            optimizer = make_optimizer("TBNmcA", query)
            plan = optimizer.optimize(budget=Budget.millis(deadline_ms))
            report = optimizer.anytime
            assert report is not None
            validate_plan(plan, query, parse_name("TBNmcA").space)
            assert plan.cost >= optimal * (1 - 1e-9)
            assert report.certified_floor <= optimal * (1 + 1e-9)
            if report.completed:
                assert math.isclose(plan.cost, optimal, rel_tol=1e-9)

    def test_node_prefix_is_deadline_independent(self):
        """The plan returned for a node budget is a pure function of the
        (query, algorithm, budget) triple — rerunning under wall-clock
        pressure cannot change it."""
        query = make_query("clique", 8)
        reference = None
        for _ in range(3):
            optimizer = make_optimizer("TBNmcAP", query)
            plan = optimizer.optimize(budget=Budget.nodes(25))
            wire = plan.to_wire()
            if reference is None:
                reference = wire
            assert wire == reference
