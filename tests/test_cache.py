"""Tests for the cost-aware memoization subsystem (:mod:`repro.cache`).

Covers the eviction policies, recompute-cost accounting, the cold
demotion tier, the cross-query :class:`GlobalPlanCache`, and — most
importantly — the invariant that makes the whole subsystem safe: every
policy at every capacity returns exactly the plans of unbounded
memoization (top-down partitioning search tolerates eviction; it never
trades optimality for storage).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import Metrics
from repro.cache.coldtier import ColdTier
from repro.cache.costing import CostProfile, logical_cost_proxy, profile_key
from repro.cache.policies import POLICY_NAMES, make_policy
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.memo import GlobalPlanCache, MemoTable
from repro.registry import make_optimizer
from repro.workloads import chain, clique, cycle, star

from tests.helpers import make_query


@pytest.fixture
def query():
    return Query.uniform(chain(6), cardinality=1000, selectivity=0.01)


def scan(query, v):
    [plan] = CostModel().scan_plans(query, 1 << v, None)
    return plan


class TestPolicies:
    def test_make_policy_names(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("random")

    def test_lru_evicts_least_recently_used(self, query):
        memo = MemoTable(capacity=2, policy="lru")
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_plan(query, 2, None, scan(query, 1))
        memo.get(query, 1, None)  # refresh 1; 2 becomes the LRU cell
        memo.store_plan(query, 4, None, scan(query, 2))
        assert memo.peek(query, 1, None) is not None
        assert memo.peek(query, 2, None) is None
        assert memo.stats.evictions == 1

    def test_smallest_evicts_fewest_relations_first(self, query):
        memo = MemoTable(capacity=2, policy="smallest")
        big = scan(query, 0)  # cell keyed by a 2-relation subset below
        memo.store_plan(query, 0b11, None, big)
        memo.store_plan(query, 0b100, None, scan(query, 2))
        memo.store_plan(query, 0b11000, None, scan(query, 3))
        # The singleton 0b100 is the smallest subset and goes first.
        assert memo.peek(query, 0b100, None) is None
        assert memo.peek(query, 0b11, None) is not None

    def test_cost_policy_keeps_expensive_cells(self, query):
        memo = MemoTable(capacity=2, policy="cost")
        # The full 6-chain subset is far more expensive to recompute than
        # a singleton, so the singletons are evicted around it.
        memo.store_plan(query, 0b111111, None, scan(query, 0))
        memo.store_plan(query, 0b1, None, scan(query, 0))
        memo.store_plan(query, 0b10, None, scan(query, 1))
        memo.store_plan(query, 0b100, None, scan(query, 2))
        assert memo.peek(query, 0b111111, None) is not None
        assert memo.stats.evictions == 2

    def test_cost_policy_inflation_ages_out_stale_cells(self, query):
        memo = MemoTable(capacity=2, policy="cost")
        memo.store_plan(query, 0b1111, None, scan(query, 0))  # expensive
        # A stream of cheap singletons keeps evicting each other, raising
        # the inflation until even the expensive cell's score is matched
        # and it finally ages out (GreedyDual guarantee: no cell is
        # immortal).
        for v in range(6):
            memo.store_plan(query, 1 << v, None, scan(query, v))
            memo.get(query, 1 << v, None)
        for _ in range(50):
            for v in range(6):
                memo.store_plan(query, 1 << v, None, scan(query, v))
        assert memo.peek(query, 0b1111, None) is None

    def test_tie_break_is_deterministic(self, query):
        def run():
            memo = MemoTable(capacity=3, policy="cost")
            for v in range(6):  # singletons all share the same weight
                memo.store_plan(query, 1 << v, None, scan(query, v))
            return memo.keys()

        assert run() == run()


class TestCostProfile:
    def test_proxy_monotone_in_size_and_density(self):
        q_chain = Query.uniform(chain(6))
        q_clique = Query.uniform(clique(6))
        assert logical_cost_proxy(q_chain, 0b111) < logical_cost_proxy(
            q_chain, 0b11111
        )
        # Same subset, denser internal connectivity => heavier.
        assert logical_cost_proxy(q_chain, 0b111) < logical_cost_proxy(
            q_clique, 0b111
        )
        # Singletons are unit weight; an interesting order adds the detour.
        assert logical_cost_proxy(q_chain, 0b1) == 1.0
        assert logical_cost_proxy(q_chain, 0b111, 0) == logical_cost_proxy(
            q_chain, 0b111
        ) + 1.0

    def test_profile_key_format(self):
        assert profile_key(5, None) == "5:-"
        assert profile_key(5, 2) == "5:2"

    def test_metric_validation(self):
        with pytest.raises(ValueError, match="unknown profile metric"):
            CostProfile(metric="joules")

    def test_add_accumulates(self):
        profile = CostProfile()
        profile.add(3, None, 2.0)
        profile.add(3, None, 5.0)
        assert profile.lookup(3) == 7.0
        assert profile.lookup(3, 1) is None
        assert (3, None) in profile and len(profile) == 1

    def test_from_trace_records_work_metric(self):
        records = [
            {"span_id": 1, "subset": 3, "order": None,
             "counters": {"join_operators_costed": 4}, "children": [2]},
            {"span_id": 2, "subset": 1, "order": None,
             "counters": {}, "children": []},
        ]
        profile = CostProfile.from_trace_records(records)
        assert profile.lookup(3) == 4.0
        assert profile.lookup(1) is None  # zero work is not recorded

    def test_from_trace_records_time_metric_is_exclusive(self):
        records = [
            {"span_id": 1, "subset": 3, "order": None, "elapsed_us": 10.0,
             "children": [2]},
            {"span_id": 2, "subset": 1, "order": None, "elapsed_us": 4.0,
             "children": []},
        ]
        profile = CostProfile.from_trace_records(records, metric="time")
        assert profile.lookup(3) == 6.0  # 10 minus the child's 4
        assert profile.lookup(1) == 4.0

    def test_save_load_roundtrip(self, tmp_path):
        profile = CostProfile(metric="work")
        profile.add(3, None, 2.5)
        profile.add(5, 2, 7.0)
        path = str(tmp_path / "profile.json")
        profile.save(path)
        loaded = CostProfile.load(path)
        assert loaded.metric == "work"
        assert loaded.lookup(3) == 2.5
        assert loaded.lookup(5, 2) == 7.0
        payload = json.load(open(path, encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["weights"] == {"3:-": 2.5, "5:2": 7.0}

    def test_from_trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"span_id": 1, "subset": 7, "order": None,
                        "counters": {"partitions_emitted": 3}}) + "\n"
        )
        profile = CostProfile.from_trace_file(str(path))
        assert profile.lookup(7) == 3.0


class TestColdTier:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ColdTier(0)
        assert ColdTier(None).capacity is None

    def test_put_take(self):
        tier = ColdTier(2)
        tier.put("a", ("wire",), None, 3.0)
        assert "a" in tier and len(tier) == 1
        entry = tier.take("a")
        assert entry.plan_wire == ("wire",) and entry.weight == 3.0
        assert tier.take("a") is None

    def test_fifo_displacement_counts_evictions(self):
        tier = ColdTier(2)
        tier.put("a", None, 1.0, 1.0)
        tier.put("b", None, 1.0, 1.0)
        tier.put("c", None, 1.0, 1.0)
        assert "a" not in tier and "b" in tier and "c" in tier
        assert tier.evictions == 1

    def test_reput_refreshes_position(self):
        tier = ColdTier(2)
        tier.put("a", None, 1.0, 1.0)
        tier.put("b", None, 1.0, 1.0)
        tier.put("a", None, 2.0, 1.0)  # refresh: b is now the oldest
        tier.put("c", None, 1.0, 1.0)
        assert "a" in tier and "b" not in tier


class TestBoundRefresh:
    """Satellite 2: lower-bound-only cells must not refresh LRU position."""

    def test_plan_get_refreshes_but_bound_get_does_not(self, query):
        memo = MemoTable(capacity=2, policy="lru")
        memo.store_plan(query, 1, None, scan(query, 0))   # A (plan)
        memo.store_lower_bound(query, 2, None, 9.0)       # B (bound)
        memo.get(query, 1, None)   # refreshes A
        memo.get(query, 2, None)   # must NOT refresh B
        memo.store_plan(query, 4, None, scan(query, 2))   # evict one
        # B was stored after A but never refreshed; A's refresh happened
        # later, so B is the LRU victim.
        assert memo.peek(query, 1, None) is not None
        assert memo.peek(query, 2, None) is None

    def test_bound_hit_still_counts_as_hit(self, query):
        memo = MemoTable(capacity=4)
        memo.store_lower_bound(query, 2, None, 9.0)
        assert memo.get(query, 2, None).lower_bound == 9.0
        assert memo.stats.hits == 1


class TestMemoTiering:
    def test_eviction_demotes_and_cold_hit_promotes(self, query):
        memo = MemoTable(capacity=2, policy="lru", cold_capacity=4)
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_plan(query, 2, None, scan(query, 1))
        memo.store_plan(query, 4, None, scan(query, 2))  # demotes cell 1
        assert memo.stats.demotions == 1
        assert memo.cold_cells() == 1
        entry = memo.get(query, 1, None)  # cold hit, promoted back
        assert entry.has_plan
        assert memo.peek(query, 1, None) is not None
        assert memo.stats.cold_hits == 1
        assert memo.stats.recompute_cost_saved > 0
        # Promotion into a full hot tier demotes another cell in turn.
        assert memo.stats.demotions == 2

    def test_no_cold_tier_by_default(self, query):
        memo = MemoTable(capacity=1)
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_plan(query, 2, None, scan(query, 1))
        assert memo.stats.evictions == 1
        assert memo.stats.demotions == 0
        assert memo.get(query, 1, None) is None

    def test_metrics_counters_wired(self, query):
        metrics = Metrics()
        memo = MemoTable(capacity=1, metrics=metrics, cold_capacity=2)
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_plan(query, 2, None, scan(query, 1))
        memo.get(query, 1, None)
        # store(2) demoted cell 1; the cold-hit promotion of cell 1 then
        # demoted cell 2 out of the single-slot hot tier.
        assert metrics.memo_evictions == 2
        assert metrics.memo_demotions == 2
        assert metrics.memo_cold_hits == 1

    def test_summary_shape(self, query):
        memo = MemoTable(capacity=2, policy="cost", cold_capacity=2)
        memo.store_plan(query, 1, None, scan(query, 0))
        summary = memo.summary()
        assert summary["policy"] == "cost"
        assert summary["capacity"] == 2
        assert summary["cold_capacity"] == 2
        assert summary["occupancy"] == 1
        assert summary["shared"] is False
        for field in ("hits", "misses", "evictions", "demotions",
                      "cold_hits", "cold_evictions"):
            assert field in summary

    def test_capacity_zero_stores_nothing(self, query):
        memo = MemoTable(capacity=0, policy="cost")
        memo.store_plan(query, 1, None, scan(query, 0))
        assert len(memo) == 0


# -- the safety invariant -------------------------------------------------------

TOPOLOGIES = {"chain": chain, "star": star, "cycle": cycle, "clique": clique}


@pytest.mark.parametrize("capacity", [4, 16, None], ids=["cap4", "cap16", "unbounded"])
@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_optimal_under_every_policy_and_capacity(topology, policy, capacity):
    """Eviction never costs optimality: plans match unbounded memoization."""
    query = make_query(topology, 6, 11)
    best = make_optimizer("TBNmc", query).optimize()
    plan = make_optimizer(
        "TBNmc", query, memo_policy=policy, memo_capacity=capacity
    ).optimize()
    assert plan.cost == best.cost
    assert plan.to_wire() == best.to_wire()


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_optimal_with_cold_tier(topology):
    query = make_query(topology, 6, 11)
    best = make_optimizer("TBNmc", query).optimize()
    optimizer = make_optimizer(
        "TBNmc", query, memo_policy="cost", memo_capacity=8,
        memo_cold_capacity=8,
    )
    plan = optimizer.optimize()
    assert plan.cost == best.cost
    assert optimizer.memo.stats.demotions > 0


def test_profile_policy_optimal_with_real_profile():
    from repro.obs.tracer import RecordingTracer

    query = make_query("star", 6, 11)
    tracer = RecordingTracer()
    best = make_optimizer("TBNmc", query, tracer=tracer).optimize()
    profile = CostProfile.from_tracer(tracer)
    assert len(profile) > 0
    plan = make_optimizer(
        "TBNmc", query, memo_policy="profile", memo_capacity=8,
        memo_profile=profile,
    ).optimize()
    assert plan.cost == best.cost


def test_bounded_variants_stay_optimal_under_cost_eviction():
    """Accumulated/predicted bounding composes with cost-aware eviction."""
    query = make_query("cycle", 7, 5)
    best = make_optimizer("TBNmc", query).optimize()
    for name in ("TBNmcA", "TBNmcP", "TBNmcAP"):
        plan = make_optimizer(
            name, query, memo_policy="cost", memo_capacity=16
        ).optimize()
        assert plan.cost == best.cost, name


# -- property tests -------------------------------------------------------------


class TestProperties:
    @given(
        capacity=st.integers(1, 12),
        seed=st.integers(0, 2**16),
        policy=st.sampled_from(POLICY_NAMES),
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, capacity, seed, policy):
        query = make_query("chain", 6, seed)
        optimizer = make_optimizer(
            "TBNmc", query, memo_policy=policy, memo_capacity=capacity
        )
        optimizer.optimize()
        memo = optimizer.memo
        assert len(memo) <= capacity
        if memo.metrics is not None:
            assert memo.metrics.peak_memo_cells <= capacity

    @given(cold=st.integers(1, 16), seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_cold_hits_are_counted_and_saved_cost_positive(self, cold, seed):
        query = make_query("star", 6, seed)
        optimizer = make_optimizer(
            "TBNmc", query, memo_policy="cost", memo_capacity=4,
            memo_cold_capacity=cold,
        )
        optimizer.optimize()
        stats = optimizer.memo.stats
        assert stats.demotions == stats.evictions
        assert optimizer.memo.cold_cells() <= cold
        if stats.cold_hits:
            assert stats.recompute_cost_saved > 0

    @given(
        subset=st.integers(1, 2**6 - 1),
        order=st.one_of(st.none(), st.integers(0, 5)),
    )
    @settings(max_examples=50, deadline=None)
    def test_profile_falls_back_to_proxy_for_unknown_keys(self, subset, order):
        query = Query.uniform(chain(6))
        profile = CostProfile()
        profile.add(0b11, None, 123.0)
        memo = MemoTable(capacity=4, policy="profile", profile=profile)
        expected = (
            123.0 if (subset, order) == (0b11, None)
            else logical_cost_proxy(query, subset, order)
        )
        assert memo._weight_for(query, subset, order, None) == expected

    @given(
        keys=st.lists(
            st.tuples(st.integers(1, 2**6 - 1), st.one_of(st.none(), st.integers(0, 5))),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_export_import_roundtrip_under_eviction(self, keys):
        query = Query.uniform(chain(6), cardinality=1000, selectivity=0.01)
        source = MemoTable(capacity=8, policy="cost")
        for subset, order in keys:
            source.store_plan(query, subset, order, scan(query, 0))
        exported = source.export_entries()
        target = MemoTable()
        imported = target.import_entries(query, exported)
        assert imported == len(exported) == len(source)
        for subset, order in source.keys():
            assert target.peek(query, subset, order) is not None


# -- the shared cross-query cache ----------------------------------------------


class TestGlobalPlanCache:
    def test_second_identical_query_is_free(self):
        query = make_query("star", 6, 9)
        cache = GlobalPlanCache()
        first = Metrics()
        plan1 = make_optimizer(
            "TBNmc", query, metrics=first, global_cache=cache
        ).optimize()
        second = Metrics()
        optimizer = make_optimizer(
            "TBNmc", query, metrics=second, global_cache=cache
        )
        plan2 = optimizer.optimize()
        assert plan2.cost == plan1.cost
        assert second.join_operators_costed == 0
        assert optimizer.memo.stats.shared_hits >= 1

    def test_export_entries_refused(self):
        with pytest.raises(TypeError, match="export_for_query"):
            GlobalPlanCache().export_entries()

    def test_absorb_memo_rejects_global_cache(self):
        query = make_query("chain", 4, 1)
        with pytest.raises(TypeError):
            GlobalPlanCache().absorb_memo(query, GlobalPlanCache())

    def test_stat_mismatch_blocks_reuse(self):
        """Same names, different stats: the canonical key must not match."""
        query = make_query("chain", 4, 1)
        cache = GlobalPlanCache()
        memo = MemoTable(shared=cache)
        optimizer = make_optimizer("TBNmc", query, memo=memo)
        optimizer.optimize()
        assert len(cache) > 0
        # A query over the same graph with different weights shares the
        # relation *names* but not the statistics.
        other = make_query("chain", 4, 2)
        assert cache.export_for_query(other) == []
        fresh = Metrics()
        plan = make_optimizer(
            "TBNmc", other, metrics=fresh, global_cache=cache
        ).optimize()
        assert fresh.join_operators_costed > 0  # nothing leaked across
        assert plan.cost == make_optimizer("TBNmc", other).optimize().cost

    def test_export_for_query_is_sorted_and_applicable(self):
        query = make_query("chain", 5, 3)
        cache = GlobalPlanCache()
        make_optimizer("TBNmc", query, global_cache=cache).optimize()
        entries = cache.export_for_query(query)
        assert entries == sorted(
            entries, key=lambda e: (e[0], e[1] is not None, e[1] or 0)
        )
        memo = MemoTable()
        assert memo.import_entries(query, entries) == len(entries)

    def test_absorb_then_reuse(self):
        query = make_query("star", 5, 4)
        memo = MemoTable()
        plan = make_optimizer("TBNmc", query, memo=memo).optimize()
        cache = GlobalPlanCache()
        added = cache.absorb_memo(query, memo)
        assert added == memo.plan_cells()
        entry = cache.get(query, plan.vertices, None)
        assert cache.plan_for_query(query, entry).to_wire() == plan.to_wire()


class TestParallelSharedCache:
    def test_workers_with_shared_cache_match_serial(self):
        query = make_query("clique", 8, 42)
        serial = make_optimizer("TBNmc", query).optimize()
        cache = GlobalPlanCache()
        warm = make_optimizer("TBNmc", query, global_cache=cache).optimize()
        assert warm.to_wire() == serial.to_wire()
        metrics = Metrics()
        parallel = make_optimizer(
            "TBNmc@2", query, metrics=metrics, global_cache=cache
        ).optimize()
        assert parallel.cost == serial.cost
        assert parallel.to_wire() == serial.to_wire()
        # The warm cache seeds the workers: no join operator is recosted.
        assert metrics.join_operators_costed == 0

    def test_workers_with_cold_shared_cache_match_serial(self):
        query = make_query("star", 7, 13)
        serial = make_optimizer("TBNmc", query).optimize()
        parallel = make_optimizer(
            "TBNmc@2", query, global_cache=GlobalPlanCache()
        ).optimize()
        assert parallel.cost == serial.cost
        assert parallel.to_wire() == serial.to_wire()
