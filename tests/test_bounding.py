"""Tests for branch-and-bound: Algorithm 7 (accumulated-cost), the
Section 4.2 predicted-cost test, and their combination."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import Metrics
from repro.enumerator import Bounding, TopDownEnumerator
from repro.partition import MinCutLazy, MinCutLeftDeep
from repro.plans import validate_plan
from repro.plans.physical import INFINITY
from repro.spaces import PlanSpace
from repro.workloads import random_connected_graph
from repro.workloads.weights import weighted_query

from tests.helpers import make_query

ALL_BOUNDINGS = [
    Bounding.ACCUMULATED,
    Bounding.PREDICTED,
    Bounding.ACCUMULATED | Bounding.PREDICTED,
]


class TestBoundingParsing:
    def test_from_suffix(self):
        assert Bounding.from_suffix("") is Bounding.NONE
        assert Bounding.from_suffix("a") is Bounding.ACCUMULATED
        assert Bounding.from_suffix("P") is Bounding.PREDICTED
        assert Bounding.from_suffix("AP") == Bounding.ACCUMULATED | Bounding.PREDICTED

    def test_unknown_suffix(self):
        with pytest.raises(ValueError):
            Bounding.from_suffix("X")


class TestOptimalityPreserved:
    """Branch-and-bound must never change the returned optimum."""

    @pytest.mark.parametrize("bounding", ALL_BOUNDINGS, ids=["A", "P", "AP"])
    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=25, deadline=None)
    def test_bushy_random(self, bounding, seed):
        graph = random_connected_graph(7, 0.3, seed)
        query = weighted_query(graph, seed)
        exhaustive = TopDownEnumerator(query, MinCutLazy()).optimize()
        bounded = TopDownEnumerator(query, MinCutLazy(), bounding=bounding).optimize()
        assert bounded.cost == pytest.approx(exhaustive.cost)
        validate_plan(bounded, query, PlanSpace.bushy_cp_free())

    @pytest.mark.parametrize("bounding", ALL_BOUNDINGS, ids=["A", "P", "AP"])
    def test_left_deep_star(self, bounding):
        query = make_query("star", 8, 17)
        exhaustive = TopDownEnumerator(query, MinCutLeftDeep()).optimize()
        bounded = TopDownEnumerator(
            query, MinCutLeftDeep(), bounding=bounding
        ).optimize()
        assert bounded.cost == pytest.approx(exhaustive.cost)
        validate_plan(bounded, query, PlanSpace.left_deep_cp_free())


class TestAccumulatedCostMechanics:
    def test_budget_failure_returns_none_and_stores_bound(self):
        query = make_query("chain", 4, 3)
        enum = TopDownEnumerator(
            query, MinCutLazy(), bounding=Bounding.ACCUMULATED
        )
        optimum = enum.optimize().cost
        # A fresh search with an impossible budget must fail.
        fresh = TopDownEnumerator(
            query, MinCutLazy(), bounding=Bounding.ACCUMULATED
        )
        full = query.graph.all_vertices
        assert fresh._get_best_budgeted(full, None, optimum / 10) is None
        entry = fresh.memo.get(query, full, None)
        assert entry is not None and entry.lower_bound is not None

    def test_stored_bound_short_circuits(self):
        query = make_query("chain", 5, 3)
        enum = TopDownEnumerator(query, MinCutLazy(), bounding=Bounding.ACCUMULATED)
        optimum = enum.optimize().cost
        fresh = TopDownEnumerator(query, MinCutLazy(), bounding=Bounding.ACCUMULATED)
        full = query.graph.all_vertices
        assert fresh._get_best_budgeted(full, None, optimum / 10) is None
        before = fresh.metrics.expressions_expanded
        # Equal-or-smaller budget: answered from the stored bound.
        assert fresh._get_best_budgeted(full, None, optimum / 20) is None
        assert fresh.metrics.expressions_expanded == before
        assert fresh.metrics.memo_bound_hits >= 1

    def test_larger_budget_reoptimizes_after_failure(self):
        query = make_query("chain", 5, 3)
        optimum = TopDownEnumerator(query, MinCutLazy()).optimize().cost
        enum = TopDownEnumerator(query, MinCutLazy(), bounding=Bounding.ACCUMULATED)
        full = query.graph.all_vertices
        assert enum._get_best_budgeted(full, None, optimum * 0.5) is None
        plan = enum._get_best_budgeted(full, None, optimum * 2)
        assert plan is not None
        assert plan.cost == pytest.approx(optimum)

    def test_budget_exactly_at_optimum_succeeds(self):
        query = make_query("chain", 4, 5)
        optimum = TopDownEnumerator(query, MinCutLazy()).optimize().cost
        enum = TopDownEnumerator(query, MinCutLazy(), bounding=Bounding.ACCUMULATED)
        plan = enum._get_best_budgeted(query.graph.all_vertices, None, optimum)
        assert plan is not None and plan.cost <= optimum + 1e-9

    def test_reexpansion_pathology_on_stars(self):
        """Section 4.3.2: accumulated-cost bounding re-expands logical
        expressions; exhaustive search never does."""
        query = make_query("star", 8, 23)
        exhaustive = Metrics()
        TopDownEnumerator(query, MinCutLazy(), metrics=exhaustive).optimize()
        accumulated = Metrics()
        TopDownEnumerator(
            query, MinCutLazy(), bounding=Bounding.ACCUMULATED, metrics=accumulated
        ).optimize()
        assert exhaustive.expressions_reexpanded == 0
        assert accumulated.expressions_reexpanded > 0

    def test_budget_failures_counted(self):
        query = make_query("star", 7, 29)
        metrics = Metrics()
        TopDownEnumerator(
            query, MinCutLazy(), bounding=Bounding.ACCUMULATED, metrics=metrics
        ).optimize()
        assert metrics.budget_failures > 0


class TestPredictedCostMechanics:
    def test_prunes_counted(self):
        query = make_query("star", 8, 31)
        metrics = Metrics()
        TopDownEnumerator(
            query, MinCutLazy(), bounding=Bounding.PREDICTED, metrics=metrics
        ).optimize()
        assert metrics.predicted_prunes > 0

    def test_no_reexpansion_with_predicted_only(self):
        """Predicted-cost bounding respects memoization (unlike A)."""
        query = make_query("star", 8, 31)
        metrics = Metrics()
        TopDownEnumerator(
            query, MinCutLazy(), bounding=Bounding.PREDICTED, metrics=metrics
        ).optimize()
        assert metrics.expressions_reexpanded == 0

    def test_fewer_plans_stored_than_exhaustive(self):
        query = make_query("star", 9, 37)
        exhaustive = TopDownEnumerator(query, MinCutLazy())
        exhaustive.optimize()
        predicted = TopDownEnumerator(query, MinCutLazy(), bounding=Bounding.PREDICTED)
        predicted.optimize()
        assert predicted.memo.plan_cells() <= exhaustive.memo.plan_cells()


class TestInitialPlanSeeding:
    def test_seed_never_worsens_result(self):
        query = make_query("chain", 6, 41)
        optimum = TopDownEnumerator(query, MinCutLazy()).optimize()
        for bounding in ALL_BOUNDINGS:
            seeded = TopDownEnumerator(
                query, MinCutLazy(), bounding=bounding
            ).optimize(initial_plan=optimum)
            assert seeded.cost == pytest.approx(optimum.cost)

    def test_unreachable_seed_is_returned(self):
        """If the seed is already optimal, accumulated search returns it."""
        query = make_query("chain", 4, 43)
        optimum = TopDownEnumerator(query, MinCutLazy()).optimize()
        enum = TopDownEnumerator(query, MinCutLazy(), bounding=Bounding.ACCUMULATED)
        plan = enum.optimize(initial_plan=optimum)
        assert plan.cost <= optimum.cost + 1e-9

    def test_seed_from_smaller_space(self):
        """Section 5.2: a left-deep optimum seeds the bushy search."""
        query = weighted_query(random_connected_graph(7, 0.4, 5), 47)
        left_deep = TopDownEnumerator(query, MinCutLeftDeep()).optimize()
        bushy = TopDownEnumerator(
            query, MinCutLazy(), bounding=Bounding.PREDICTED
        ).optimize(initial_plan=left_deep)
        reference = TopDownEnumerator(query, MinCutLazy()).optimize()
        assert bushy.cost == pytest.approx(reference.cost)
        assert bushy.cost <= left_deep.cost + 1e-9

    def test_infinite_budget_without_seed(self):
        query = make_query("chain", 3, 1)
        enum = TopDownEnumerator(query, MinCutLazy(), bounding=Bounding.ACCUMULATED)
        plan = enum.optimize()
        assert plan.cost < INFINITY
