"""Stress tests: queries beyond the machine-word boundary.

Section 3.1's bitmap model assumes query size / word size is bounded by
a small constant; Python integers are arbitrary-precision, so the same
encoding works past 64 relations.  These tests exercise the >64-vertex
paths (masks spanning multiple words) on workloads whose optimal
enumeration stays polynomial (chains) or near-linear (minimal cuts of
acyclic graphs).
"""

import pytest

from repro.analysis.metrics import Metrics
from repro.core.bitset import iter_bits, popcount
from repro.enumerator import TopDownEnumerator
from repro.partition import MinCutLazy, MinCutLeftDeep, MinCutOptimistic
from repro.plans import validate_plan
from repro.spaces import PlanSpace
from repro.workloads import binary_tree, chain, random_connected_graph
from repro.workloads.seeding import DEFAULT_SEED
from repro.workloads.weights import weighted_query

from tests.helpers import make_query

pytestmark = pytest.mark.stress


class TestWideBitsets:
    def test_masks_past_word_boundary(self):
        mask = (1 << 200) | (1 << 64) | 1
        assert popcount(mask) == 3
        assert list(iter_bits(mask)) == [0, 64, 200]

    def test_wide_graph_connectivity(self):
        g = chain(130)
        assert g.is_connected()
        assert not g.is_connected(g.all_vertices & ~(1 << 65))

    def test_mincut_lazy_on_wide_chain(self):
        g = chain(120)
        metrics = Metrics()
        cuts = list(MinCutLazy().partitions(g, g.all_vertices, metrics))
        assert len(cuts) == 2 * 119
        assert metrics.bcc_trees_built == 1

    def test_mincut_optimistic_on_wide_tree(self):
        g = binary_tree(100)
        metrics = Metrics()
        cuts = list(MinCutOptimistic().partitions(g, g.all_vertices, metrics))
        assert len(cuts) == 2 * 99
        assert metrics.failed_connectivity_tests < 99


class TestWideOptimization:
    def test_chain_80_left_deep(self):
        """Left-deep chain optimization is Θ(n²) join operators."""
        q = make_query("chain", 80, DEFAULT_SEED)
        metrics = Metrics()
        plan = TopDownEnumerator(q, MinCutLeftDeep(), metrics=metrics).optimize()
        assert metrics.logical_joins_enumerated == 80 * 79
        validate_plan(plan, q, PlanSpace.left_deep_cp_free())

    def test_chain_40_bushy(self):
        """Bushy chain optimization is Θ(n³) join operators."""
        n = 40
        q = make_query("chain", n, DEFAULT_SEED)
        metrics = Metrics()
        plan = TopDownEnumerator(q, MinCutLazy(), metrics=metrics).optimize()
        assert metrics.logical_joins_enumerated == (n**3 - n) // 3
        validate_plan(plan, q, PlanSpace.bushy_cp_free())

    def test_random_tree_70_cuts(self):
        """Full optimization of an arbitrary 70-vertex tree can have
        exponentially many csg-cmp pairs, but its minimal cuts are exactly
        its 69 edges — enumerable in linear time per cut."""
        g = random_connected_graph(70, 0.0, DEFAULT_SEED)
        metrics = Metrics()
        cuts = list(MinCutLazy().partitions(g, g.all_vertices, metrics))
        assert len(cuts) == 2 * 69
        assert metrics.bcc_trees_built == 1

    def test_zero_cardinality_relation(self):
        """Degenerate statistics must not break the optimizer."""
        from repro.catalog import Catalog, Query

        cat = Catalog()
        cat.add_relation("empty", 0)
        cat.add_relation("full", 1000)
        cat.add_predicate(0, 1, 0.5)
        q = Query.from_catalog(cat)
        plan = TopDownEnumerator(q, MinCutLazy()).optimize()
        assert plan.cardinality == 0.0
        validate_plan(plan, q)
