"""Tests for the bitmap-encoded join graph."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitset import iter_bits, iter_subsets, mask_of, set_of
from repro.core.joingraph import Edge, JoinGraph
from repro.workloads import chain, clique, cycle, random_connected_graph, star


def to_networkx(graph: JoinGraph, subset: int | None = None) -> nx.Graph:
    nxg = nx.Graph()
    members = graph.all_vertices if subset is None else subset
    nxg.add_nodes_from(iter_bits(members))
    for e in graph.edges:
        if e.mask & members == e.mask:
            nxg.add_edge(e.u, e.v)
    return nxg


class TestEdge:
    def test_normalization(self):
        assert Edge(3, 1) == Edge(1, 3)
        assert Edge(3, 1).u == 1
        assert Edge(3, 1).v == 3

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Edge(2, 2)

    def test_mask(self):
        assert Edge(1, 3).mask == 0b1010

    def test_ordering(self):
        assert sorted([Edge(2, 3), Edge(0, 5), Edge(0, 1)]) == [
            Edge(0, 1), Edge(0, 5), Edge(2, 3)
        ]


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(0, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(3, [(0, 3)])

    def test_duplicate_edges_collapse(self):
        g = JoinGraph(3, [(0, 1), (1, 0), (1, 2)])
        assert g.edge_count() == 2

    def test_from_edge_list(self):
        g = JoinGraph.from_edge_list([(0, 4), (4, 2)])
        assert g.n == 5
        assert g.has_edge(0, 4) and g.has_edge(2, 4)

    def test_from_empty_edge_list_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph.from_edge_list([])

    def test_equality_and_hash(self):
        a = JoinGraph(3, [(0, 1), (1, 2)])
        b = JoinGraph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != JoinGraph(3, [(0, 1), (0, 2)])

    def test_single_vertex(self):
        g = JoinGraph(1, [])
        assert g.is_connected()
        assert g.all_vertices == 1


class TestQueries:
    def test_neighbors(self):
        g = star(5)
        assert g.neighbors[0] == 0b11110
        assert g.neighbors[3] == 0b00001
        assert g.degree(0) == 4
        assert g.degree(1) == 1

    def test_neighbors_of_set(self):
        g = chain(5)
        assert g.neighbors_of_set(mask_of([1, 2])) == mask_of([0, 3])
        assert g.neighbors_of_set(mask_of([1, 2]), within=mask_of([1, 2, 3])) == mask_of([3])

    def test_connects(self):
        g = chain(4)
        assert g.connects(mask_of([0, 1]), mask_of([2, 3]))
        assert not g.connects(mask_of([0]), mask_of([2, 3]))

    def test_edges_within(self):
        g = cycle(5)
        inner = list(g.edges_within(mask_of([0, 1, 2])))
        assert inner == [Edge(0, 1), Edge(1, 2)]
        assert g.edge_count_within(g.all_vertices) == 5

    def test_relabelled(self):
        g = chain(4)
        h = g.relabelled([3, 2, 1, 0])
        assert h == chain(4)  # chain is symmetric under reversal
        with pytest.raises(ValueError):
            g.relabelled([0, 0, 1, 2])

    def test_vertex_masks(self):
        assert list(chain(3).vertex_masks()) == [1, 2, 4]


class TestConnectivity:
    def test_full_graph(self):
        assert chain(6).is_connected()
        disconnected = JoinGraph(4, [(0, 1), (2, 3)])
        assert not disconnected.is_connected()

    def test_empty_subset(self):
        assert not chain(3).is_connected(0)

    def test_singleton_subset(self):
        assert chain(3).is_connected(0b100)

    def test_chain_interval_rule(self):
        g = chain(6)
        for subset in iter_subsets(g.all_vertices):
            bits = sorted(iter_bits(subset))
            is_interval = bits == list(range(bits[0], bits[-1] + 1))
            assert g.is_connected(subset) == is_interval

    def test_star_hub_rule(self):
        g = star(6)
        for subset in iter_subsets(g.all_vertices):
            expected = subset & 1 or subset & (subset - 1) == 0
            assert g.is_connected(subset) == bool(expected)

    def test_components(self):
        g = chain(6)
        comps = g.connected_components(mask_of([0, 1, 3, 5]))
        assert sorted(comps) == sorted([mask_of([0, 1]), mask_of([3]), mask_of([5])])

    def test_reachable_from(self):
        g = chain(5)
        assert g.reachable_from(1, mask_of([0, 1, 3, 4])) == mask_of([0, 1])

    @given(st.integers(0, 10_000))
    def test_matches_networkx_on_random_graphs(self, seed):
        g = random_connected_graph(7, 0.3, seed)
        for subset in iter_subsets(g.all_vertices):
            nxg = to_networkx(g, subset)
            assert g.is_connected(subset) == nx.is_connected(nxg)

    def test_clique_always_connected(self):
        g = clique(6)
        for subset in iter_subsets(g.all_vertices):
            assert g.is_connected(subset)
