"""Unit and property tests for the bitset substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitset import (
    bit,
    bits_between,
    first_bit,
    is_singleton,
    is_subset,
    iter_bits,
    iter_subsets,
    lowest_bit,
    mask_of,
    popcount,
    set_of,
)

masks = st.integers(min_value=0, max_value=(1 << 20) - 1)
nonempty_masks = st.integers(min_value=1, max_value=(1 << 16) - 1)


class TestBasics:
    def test_bit(self):
        assert bit(0) == 1
        assert bit(5) == 32

    def test_mask_of_roundtrip(self):
        assert mask_of([0, 2, 5]) == 0b100101
        assert set_of(0b100101) == frozenset({0, 2, 5})

    def test_mask_of_empty(self):
        assert mask_of([]) == 0
        assert set_of(0) == frozenset()

    def test_mask_of_duplicates(self):
        assert mask_of([1, 1, 1]) == 2

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_is_subset(self):
        assert is_subset(0b101, 0b111)
        assert is_subset(0, 0b111)
        assert not is_subset(0b1000, 0b111)
        assert is_subset(0b111, 0b111)

    def test_is_singleton(self):
        assert not is_singleton(0)
        assert is_singleton(1)
        assert is_singleton(1 << 13)
        assert not is_singleton(0b11)

    def test_lowest_bit(self):
        assert lowest_bit(0) == 0
        assert lowest_bit(0b1100) == 0b100

    def test_first_bit(self):
        assert first_bit(0b1100) == 2
        assert first_bit(1) == 0

    def test_first_bit_empty_raises(self):
        with pytest.raises(ValueError):
            first_bit(0)

    def test_iter_bits_order(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert list(iter_bits(0)) == []

    def test_bits_between(self):
        assert bits_between(0, 3) == 0b111
        assert bits_between(2, 5) == 0b11100
        assert bits_between(3, 3) == 0
        assert bits_between(4, 2) == 0


class TestSubsetEnumeration:
    def test_empty(self):
        assert list(iter_subsets(0)) == []

    def test_singleton(self):
        assert list(iter_subsets(0b100)) == [0b100]
        assert list(iter_subsets(0b100, proper=True)) == []

    def test_small(self):
        assert sorted(iter_subsets(0b101)) == [0b001, 0b100, 0b101]
        assert sorted(iter_subsets(0b101, proper=True)) == [0b001, 0b100]

    def test_counts(self):
        mask = 0b101101
        k = popcount(mask)
        assert len(list(iter_subsets(mask))) == 2**k - 1
        assert len(list(iter_subsets(mask, proper=True))) == 2**k - 2

    @given(nonempty_masks)
    def test_all_are_subsets_and_unique(self, mask):
        seen = list(iter_subsets(mask))
        assert len(seen) == len(set(seen))
        assert all(s and is_subset(s, mask) for s in seen)
        assert len(seen) == 2 ** popcount(mask) - 1

    @given(nonempty_masks)
    def test_increasing_order(self, mask):
        seen = list(iter_subsets(mask))
        assert seen == sorted(seen)


class TestProperties:
    @given(masks)
    def test_set_roundtrip(self, mask):
        assert mask_of(set_of(mask)) == mask

    @given(st.sets(st.integers(0, 11), min_size=1))
    def test_subset_enumeration_complete(self, vertices):
        """Every non-empty subset of the ground set is enumerated.

        Builds the expected powerset independently (by extending each
        already-known subset with one more element) rather than trusting
        any bit trick, then compares as sets.
        """
        mask = mask_of(vertices)
        expected = {0}
        for v in vertices:
            expected |= {s | bit(v) for s in expected}
        expected.discard(0)
        assert set(iter_subsets(mask)) == expected

    @given(nonempty_masks)
    def test_lowest_bit_strip_roundtrip(self, mask):
        """Peeling lowest_bit until empty visits every bit exactly once."""
        rest, peeled = mask, 0
        order = []
        while rest:
            low = lowest_bit(rest)
            assert peeled & low == 0
            peeled |= low
            order.append(first_bit(low))
            rest ^= low
        assert peeled == mask
        assert order == list(iter_bits(mask))
        assert mask_of(order) == mask

    @given(masks)
    def test_iter_bits_matches_popcount(self, mask):
        assert len(list(iter_bits(mask))) == popcount(mask)

    @given(masks, masks)
    def test_subset_definition(self, a, b):
        assert is_subset(a, b) == set_of(a).issubset(set_of(b))

    @given(nonempty_masks)
    def test_lowest_bit_is_member(self, mask):
        low = lowest_bit(mask)
        assert is_singleton(low)
        assert is_subset(low, mask)
        assert first_bit(mask) == min(iter_bits(mask))
