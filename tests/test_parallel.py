"""Tests for the parallel partition-search subsystem (repro.parallel).

The headline guarantee under test: for every Figure 9 topology and every
registered top-down strategy, a parallel run returns the *bit-identical*
best plan (cost and shape) of the serial run, and under exhaustive
enumeration the merged operation counts equal the serial counts.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.metrics import Metrics
from repro.core.bitset import popcount
from repro.core.joingraph import JoinGraph
from repro.memo import MemoTable
from repro.obs.registry import TIME_BETWEEN_JOINS, MetricsRegistry
from repro.parallel import (
    ParallelEnumerator,
    SharedBound,
    balance_shards,
    connected_subsets,
    default_weight,
    level_frontiers,
    partition_frontier,
    trace_weights,
)
from repro.registry import make_optimizer, optimize, parse_name, resolve_alias, split_workers
from repro.spaces import PlanSpace
from repro.workloads import chain, clique, cycle, star
from repro.workloads.weights import weighted_query

from tests.helpers import make_query

TOPOLOGIES = {
    "chain": chain(6),
    "cycle": cycle(6),
    "star": star(6),
    "clique": clique(6),
}

#: Every registered top-down strategy, bounded variants included.
STRATEGIES = (
    "TLNnaive",
    "TLCnaive",
    "TBNnaive",
    "TBCnaive",
    "TLNmc",
    "TBNmc",
    "TBNmcopt",
    "TBNmcA",
    "TBNmcP",
    "TBNmcAP",
)

_QUERIES = {name: weighted_query(graph, 7) for name, graph in TOPOLOGIES.items()}


# -- fork-point selection ------------------------------------------------------


class TestForkPoints:
    def test_connected_subsets_chain(self):
        # A chain has exactly n*(n+1)/2 connected subsets (contiguous runs).
        graph = chain(6)
        subsets = connected_subsets(graph)
        assert len(subsets) == 6 * 7 // 2
        assert len(set(subsets)) == len(subsets)
        for subset in subsets:
            assert graph.is_connected(subset)

    def test_connected_subsets_clique(self):
        # Every non-empty subset of a clique is connected.
        graph = clique(5)
        assert len(connected_subsets(graph)) == 2**5 - 1

    def test_connected_subsets_sorted_by_size(self):
        sizes = [popcount(s) for s in connected_subsets(cycle(6))]
        assert sizes == sorted(sizes)

    def test_connected_subsets_max_size(self):
        subsets = connected_subsets(clique(5), max_size=3)
        assert max(popcount(s) for s in subsets) == 3

    def test_level_frontiers_match_serial_memo_set(self):
        # The union of all level frontiers plus the root must equal the
        # set of expressions the serial exhaustive search memoizes.
        for name, graph in TOPOLOGIES.items():
            query = _QUERIES[name]
            enum = make_optimizer("TBNmc", query)
            enum.optimize()
            memoized = {subset for subset, _ in enum.memo.keys()}
            levels = level_frontiers(graph, PlanSpace.bushy_cp_free())
            frontier = {s for level in levels for s in level}
            assert frontier | {graph.all_vertices} == memoized, name

    def test_level_frontiers_cp_space_is_all_subsets(self):
        graph = chain(5)
        levels = level_frontiers(graph, PlanSpace.bushy_with_cp())
        assert sum(len(level) for level in levels) == 2**5 - 1 - 1  # no root

    def test_level_sizes_are_homogeneous(self):
        levels = level_frontiers(cycle(6), PlanSpace.bushy_cp_free())
        for index, level in enumerate(levels):
            assert level, f"empty level {index}"
            assert {popcount(s) for s in level} == {index + 1}

    def test_partition_frontier_dedups_orientations(self):
        from repro.partition import MinCutLazy

        graph = chain(5)
        pairs = partition_frontier(graph, MinCutLazy())
        keys = {frozenset(pair) for pair in pairs}
        assert len(keys) == len(pairs)
        for left, right in pairs:
            assert left & right == 0
            assert left | right == graph.all_vertices

    def test_balance_shards_partitions_items(self):
        items = list(range(20))
        shards = balance_shards(items, 3, weight=lambda x: float(x + 1))
        flattened = sorted(x for shard in shards for x in shard)
        assert flattened == items
        # deterministic: same inputs, same shards
        again = balance_shards(items, 3, weight=lambda x: float(x + 1))
        assert shards == again

    def test_balance_shards_balances_loads(self):
        items = list(range(1, 33))
        shards = balance_shards(items, 4, weight=float)
        loads = [sum(shard) for shard in shards]
        assert max(loads) - min(loads) <= max(items)

    def test_balance_shards_preserves_item_order_within_shard(self):
        shards = balance_shards(list(range(10)), 2, weight=lambda _x: 1.0)
        for shard in shards:
            assert shard == sorted(shard)

    def test_default_weight_grows_with_size_and_density(self):
        graph = clique(6)
        small, large = (1 << 2) - 1, (1 << 4) - 1
        assert default_weight(graph, large) > default_weight(graph, small)
        sparse = chain(6)
        assert default_weight(graph, large) > default_weight(sparse, large)

    def test_trace_weights_from_spans(self):
        class FakeSpan:
            def __init__(self, subset, elapsed):
                self.subset, self.elapsed = subset, elapsed

        weights = trace_weights([FakeSpan(3, 0.5), FakeSpan(3, 0.2), FakeSpan(5, 1.0)])
        assert weights == {3: 0.5, 5: 1.0}


# -- serial/parallel identity --------------------------------------------------


class TestIdentity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("algorithm", STRATEGIES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_cost_and_shape_match_serial(self, topology, algorithm, workers):
        query = _QUERIES[topology]
        serial = optimize(algorithm, query)
        parallel = make_optimizer(algorithm, query, workers=workers).optimize()
        assert parallel.cost == serial.cost
        assert parallel == serial  # full plan-tree equality, not just cost

    @pytest.mark.parametrize("algorithm", ["TBNmc", "TBNmcA", "TBNmcAP"])
    def test_subtree_policy_matches_serial(self, algorithm):
        query = _QUERIES["clique"]
        serial = optimize(algorithm, query)
        parallel = make_optimizer(
            algorithm, query, workers=2, parallel_policy="subtree"
        ).optimize()
        assert parallel.cost == serial.cost

    def test_larger_clique_matches_serial(self):
        query = make_query("clique", 8, 11)
        serial = optimize("TBNmc", query)
        parallel = make_optimizer("TBNmc", query, workers=2).optimize()
        assert parallel.cost == serial.cost
        assert parallel == serial

    def test_interesting_order_request(self):
        query = _QUERIES["chain"]
        enum = make_optimizer("TBNmc", query)
        serial = enum.optimize(order=0)
        parallel = make_optimizer("TBNmc", query, workers=2).optimize(order=0)
        assert parallel.cost == serial.cost
        assert parallel.order == serial.order

    def test_tiny_query_falls_back_to_serial(self):
        query = make_query("chain", 3, 5)
        parallel = make_optimizer("TBNmc", query, workers=4)
        plan = parallel.optimize()
        assert plan.cost == optimize("TBNmc", query).cost
        assert parallel.worker_results == []  # no pool was spun up

    def test_repeated_runs_are_identical(self):
        query = _QUERIES["cycle"]
        first = make_optimizer("TBNmc", query, workers=3).optimize()
        second = make_optimizer("TBNmc", query, workers=3).optimize()
        assert first == second


# -- metrics conservation ------------------------------------------------------


class TestMetricsConservation:
    def test_exhaustive_counters_match_serial(self):
        query = _QUERIES["clique"]
        serial_metrics, serial_registry = Metrics(), MetricsRegistry()
        optimize("TBNmc", query, metrics=serial_metrics, registry=serial_registry)

        metrics, registry = Metrics(), MetricsRegistry()
        make_optimizer(
            "TBNmc", query, metrics=metrics, registry=registry, workers=3
        ).optimize()

        assert metrics.join_operators_costed == serial_metrics.join_operators_costed
        assert (
            metrics.logical_joins_enumerated
            == serial_metrics.logical_joins_enumerated
        )
        assert metrics.partitions_emitted == serial_metrics.partitions_emitted
        assert (
            metrics.unique_expressions_expanded
            == serial_metrics.unique_expressions_expanded
        )
        assert (
            registry.histogram(TIME_BETWEEN_JOINS).count
            == serial_registry.histogram(TIME_BETWEEN_JOINS).count
        )

    def test_time_between_joins_count_equals_join_operators(self):
        query = _QUERIES["star"]
        metrics, registry = Metrics(), MetricsRegistry()
        make_optimizer(
            "TBNmc", query, metrics=metrics, registry=registry, workers=2
        ).optimize()
        assert (
            registry.histogram(TIME_BETWEEN_JOINS).count
            == metrics.join_operators_costed
        )

    def test_parallel_counters_are_populated(self):
        query = _QUERIES["clique"]
        metrics = Metrics()
        make_optimizer("TBNmc", query, metrics=metrics, workers=2).optimize()
        assert metrics.parallel_tasks == 2**6 - 2  # every proper subset once
        assert metrics.parallel_entries_merged > 0


# -- runtime pieces ------------------------------------------------------------


class TestRuntime:
    def test_shared_bound_tightens_monotonically(self):
        bound = SharedBound()
        assert bound.get() == math.inf
        assert bound.tighten(10.0)
        assert not bound.tighten(11.0)
        assert bound.tighten(9.0)
        assert bound.get() == 9.0

    def test_worker_traces_written(self, tmp_path):
        query = _QUERIES["chain"]
        enum = make_optimizer(
            "TBNmc", query, workers=2, worker_trace_dir=str(tmp_path)
        )
        enum.optimize()
        for result in enum.worker_results:
            assert result.span_count and result.span_count > 0
            lines = (tmp_path / f"worker-{result.worker}.jsonl").read_text().splitlines()
            assert len(lines) == result.span_count
            json.loads(lines[0])  # valid JSONL

    def test_worker_failure_propagates(self):
        bad = JoinGraph(2, [(0, 1)])
        query = weighted_query(bad, 1)
        # Force the pool path despite the tiny query by calling the policy
        # runner directly with a broken algorithm spec: bottom-up names are
        # rejected before any process is spawned.
        with pytest.raises(ValueError, match="top-down"):
            ParallelEnumerator(query, "BBNccp", 2)

    def test_rejects_at_suffix_in_direct_constructor(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelEnumerator(_QUERIES["chain"], "TBNmc@2", 2)

    def test_seeded_memo_contains_all_levels(self):
        query = _QUERIES["cycle"]
        memo = MemoTable()
        enum = make_optimizer("TBNmc", query, memo=memo, workers=2)
        enum.optimize()
        graph = query.graph
        expected = {s for level in level_frontiers(graph, enum.space) for s in level}
        stored = {subset for subset, order in memo.keys() if order is None}
        assert expected <= stored


# -- registry grammar ----------------------------------------------------------


class TestNameGrammar:
    def test_split_workers(self):
        assert split_workers("TBNmc") == ("TBNmc", None)
        assert split_workers("TBNmc@4") == ("TBNmc", 4)
        with pytest.raises(ValueError):
            split_workers("TBNmc@zero")
        with pytest.raises(ValueError):
            split_workers("TBNmc@0")

    def test_resolve_alias_keeps_and_overrides_counts(self):
        assert resolve_alias("mincutlazy@2") == "TBNmc@2"
        assert resolve_alias("parallel") == "TBNmc@4"
        assert resolve_alias("parallel@2") == "TBNmc@2"
        assert resolve_alias("TLNmcAP@8") == "TLNmcAP@8"

    def test_parse_name_ignores_worker_count(self):
        assert parse_name("TBNmc@4") == parse_name("TBNmc")

    def test_suffix_builds_parallel_enumerator(self):
        enum = make_optimizer("TBNmc@2", _QUERIES["chain"])
        assert isinstance(enum, ParallelEnumerator)
        assert enum.workers == 2

    def test_explicit_workers_override_suffix(self):
        enum = make_optimizer("TBNmc@2", _QUERIES["chain"], workers=3)
        assert enum.workers == 3

    def test_alias_via_one_shot_optimize(self):
        query = _QUERIES["star"]
        assert optimize("parallel@2", query).cost == optimize("TBNmc", query).cost

    def test_bottom_up_with_workers_rejected(self):
        with pytest.raises(ValueError, match="top-down"):
            make_optimizer("BBNccp", _QUERIES["chain"], workers=2)
        with pytest.raises(ValueError):
            make_optimizer("dpccp@2", _QUERIES["chain"])
