"""Tests for ``repro.fastpath``: batched costing behind the oracle's back.

The contract under test is *bit-identical parity*: every batch kernel
value equals the scalar model's output exactly (``==``, no tolerance),
every fast-path plan compares equal to the oracle's, and the enumeration
metrics are conserved.  The selection surfaces — ``!fast`` grammar,
``REPRO_FASTPATH``, ``make_optimizer(fastpath=...)``, the CLI flag — and
the numpy-free fallback are covered alongside.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import Metrics
from repro.cost import CostModel, CoutCostModel
from repro.enumerator import TopDownEnumerator
from repro.fastpath import (
    BatchCostKernel,
    FastTopDownEnumerator,
    OperandStats,
    available_backends,
    default_backend,
    numpy_or_none,
    resolve_fastpath,
)
from repro.fastpath.detect import _reset_numpy_probe, fastpath_mode
from repro.obs.profile import RecordingProfiler
from repro.partition import MinCutLazy, NaiveBushyCPFree
from repro.registry import make_optimizer, parse_name, resolve_alias, split_fastpath
from repro.workloads import chain, clique, cycle, star
from repro.workloads.skewed import PROFILES, skewed_query
from repro.workloads.weights import weighted_query

TOPOLOGIES = {
    "chain": chain,
    "star": star,
    "cycle": cycle,
    "clique": clique,
}

BACKENDS = available_backends()


@pytest.fixture(autouse=True)
def _neutral_fastpath_env(monkeypatch):
    """These tests pin the selection surface themselves; an ambient
    ``REPRO_FASTPATH`` (e.g. the escape-hatch CI sweep) must not leak in.
    Tests covering the env re-set it explicitly via ``monkeypatch``."""
    monkeypatch.delenv("REPRO_FASTPATH", raising=False)


def _frontier_pairs(query, max_pairs=400):
    """Every (left, right) candidate an enumeration would cost."""
    graph = query.graph
    strategy = MinCutLazy()
    metrics = Metrics()
    pairs = []
    from repro.core.bitset import iter_subsets

    for subset in iter_subsets(graph.all_vertices):
        if subset.bit_count() < 2 or not graph.is_connected(subset):
            continue
        pairs.extend(strategy.partitions(graph, subset, metrics))
        if len(pairs) >= max_pairs:
            break
    return pairs


class TestBatchKernelParity:
    @settings(max_examples=25, deadline=None)
    @given(
        topology=st.sampled_from(sorted(TOPOLOGIES)),
        n=st.integers(min_value=4, max_value=7),
        profile=st.sampled_from(PROFILES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        model_kind=st.sampled_from(["io", "cout"]),
        backend=st.sampled_from(BACKENDS),
    )
    def test_batch_equals_scalar_bitwise(
        self, topology, n, profile, seed, model_kind, backend
    ):
        """Batch costs and bounds == scalar model outputs, bit for bit."""
        query = skewed_query(TOPOLOGIES[topology](n), profile, seed)
        model = CoutCostModel() if model_kind == "cout" else CostModel()
        kernel = BatchCostKernel(query, model, backend=backend)
        pairs = _frontier_pairs(query)
        costs = kernel.operator_costs(pairs)
        bounds = kernel.lower_bounds(pairs)
        for (left, right), row, bound in zip(pairs, costs, bounds):
            expected = tuple(
                model.operator_cost(query, method, left, right)
                for method in model.JOIN_METHODS
            )
            assert row == expected, (left, right)
            assert bound == model.lower_bound(query, left, right)

    def test_generic_model_falls_back_to_scalar_hooks(self):
        class DoubledCout(CoutCostModel):
            def operator_cost(self, query, method, left, right):
                return 2.0 * super().operator_cost(query, method, left, right)

        query = weighted_query(clique(5), 7)
        model = DoubledCout()
        kernel = BatchCostKernel(query, model)
        assert kernel.mode == "generic"
        pairs = _frontier_pairs(query)
        for (left, right), row in zip(pairs, kernel.operator_costs(pairs)):
            assert row[0] == 2.0 * query.cardinality(left | right)

    def test_mode_and_backend_selection(self):
        query = weighted_query(star(5), 1)
        assert BatchCostKernel(query, CoutCostModel()).mode == "cout"
        io_kernel = BatchCostKernel(query, CostModel())
        assert io_kernel.mode == "io"
        assert io_kernel.backend == default_backend()
        # A gather gains nothing from numpy: cout pins the python backend.
        assert BatchCostKernel(query, CoutCostModel()).backend == "python"
        with pytest.raises(ValueError):
            BatchCostKernel(query, CostModel(), backend="fortran")

    def test_operand_stats_memoize(self):
        query = weighted_query(chain(4), 2)
        stats = OperandStats(query, CostModel())
        assert len(stats) == 0
        first = stats.sort_cost(0b0011)
        assert first == stats.sort_cost(0b0011)
        assert stats.pages(0b0011) == query.pages(0b0011)
        assert len(stats) == 2  # one pages cell + one sort cell


class TestEnumeratorParity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("suffix", ["", "AP"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_plan_and_metrics_parity(self, topology, suffix, backend):
        n = 6 if topology == "clique" else 7
        query = weighted_query(TOPOLOGIES[topology](n), n)
        oracle_metrics = Metrics()
        oracle = make_optimizer(
            f"TBNmc{suffix}", query, metrics=oracle_metrics, fastpath="off"
        ).optimize()
        fast_metrics = Metrics()
        fast = make_optimizer(
            f"TBNmc{suffix}!fast",
            query,
            metrics=fast_metrics,
            fastpath_backend=backend,
        ).optimize()
        assert fast == oracle
        for counter in (
            "logical_joins_enumerated",
            "join_operators_costed",
            "predicted_prunes",
            "memo_lookups",
            "peak_memo_cells",
        ):
            assert getattr(fast_metrics, counter) == getattr(
                oracle_metrics, counter
            ), counter

    def test_parity_across_runtime_variants(self):
        """!fast composes with @N workers and %policy memos unchanged."""
        query = weighted_query(clique(6), 6)
        reference = make_optimizer("TBNmc", query, fastpath="off").optimize()
        for variant in ("TBNmc%cost:24!fast", "TBNmc@2!fast"):
            assert make_optimizer(variant, query).optimize() == reference, variant

    def test_io_model_parity(self):
        query = weighted_query(star(7), 7)
        model = CostModel()
        oracle = make_optimizer(
            "TBNmc", query, CostModel(), fastpath="off"
        ).optimize()
        for backend in BACKENDS:
            fast = make_optimizer(
                "TBNmc!fast", query, CostModel(), fastpath_backend=backend
            ).optimize()
            assert fast == oracle, backend

    def test_ordered_requests_delegate_to_oracle(self):
        query = weighted_query(chain(5), 5)
        fast = FastTopDownEnumerator(query, MinCutLazy(), CostModel())
        oracle = TopDownEnumerator(query, MinCutLazy(), CostModel())
        order = 0  # "sorted on relation 0's join key"
        assert fast.optimize(order) == oracle.optimize(order)

    def test_refuses_kernel_profiler(self):
        query = weighted_query(chain(4), 4)
        with pytest.raises(ValueError, match="profil"):
            FastTopDownEnumerator(
                query, MinCutLazy(), CostModel(), profiler=RecordingProfiler()
            )


class TestGrammar:
    def test_split_fastpath(self):
        assert split_fastpath("TBNmc") == ("TBNmc", False)
        assert split_fastpath("TBNmc!fast") == ("TBNmc", True)
        assert split_fastpath("TBNmc!FAST") == ("TBNmc", True)
        assert split_fastpath("TBNmc!fast@2") == ("TBNmc@2", True)
        assert split_fastpath("TBNmc!fast%cost:64") == ("TBNmc%cost:64", True)
        assert split_fastpath("TBNmc%cost:64!fast") == ("TBNmc%cost:64", True)

    def test_split_fastpath_rejects_unknown_suffix(self):
        for bad in ("TBNmc!", "TBNmc!turbo", "TBNmc!fast2"):
            with pytest.raises(ValueError):
                split_fastpath(bad)

    def test_resolve_alias_canonicalizes_suffix_order(self):
        assert resolve_alias("mincutlazy!fast") == "TBNmc!fast"
        assert resolve_alias("TBNmc!fast@2%cost:64") == "TBNmc@2%cost:64!fast"
        assert resolve_alias("parallel!fast") == "TBNmc@4!fast"

    def test_parse_name_ignores_fast(self):
        spec = parse_name("TBNmcAP!fast")
        assert spec.name == "TBNmcAP"
        assert spec.top_down

    def test_bottom_up_fast_is_an_error(self):
        query = weighted_query(chain(4), 4)
        with pytest.raises(ValueError, match="top-down"):
            make_optimizer("BBNccp!fast", query)


class TestSelection:
    def test_resolve_fastpath_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert resolve_fastpath(False) is False
        assert resolve_fastpath(True) is True
        assert resolve_fastpath(False, "on") is True
        assert resolve_fastpath(True, "off") is False
        monkeypatch.setenv("REPRO_FASTPATH", "on")
        assert resolve_fastpath(False) is True
        assert resolve_fastpath(False, "off") is False
        monkeypatch.setenv("REPRO_FASTPATH", "off")
        assert resolve_fastpath(True, "on") is False

    def test_fastpath_mode_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "maybe")
        with pytest.raises(ValueError):
            fastpath_mode()

    def test_env_off_is_the_escape_hatch(self, monkeypatch):
        query = weighted_query(chain(5), 5)
        monkeypatch.setenv("REPRO_FASTPATH", "off")
        optimizer = make_optimizer("TBNmc!fast", query)
        assert type(optimizer) is TopDownEnumerator

    def test_env_on_keeps_oracle_for_bottom_up_and_profiled(self, monkeypatch):
        query = weighted_query(chain(5), 5)
        monkeypatch.setenv("REPRO_FASTPATH", "on")
        assert type(make_optimizer("TBNmc", query)) is FastTopDownEnumerator
        assert not isinstance(
            make_optimizer("BBNccp", query), FastTopDownEnumerator
        )
        profiled = make_optimizer(
            "TBNmc", query, profiler=RecordingProfiler()
        )
        assert type(profiled) is TopDownEnumerator

    def test_invalid_override_rejected(self):
        query = weighted_query(chain(4), 4)
        with pytest.raises(ValueError, match="fastpath"):
            make_optimizer("TBNmc", query, fastpath="sometimes")


class TestNumpyFreeFallback:
    @pytest.fixture
    def no_numpy(self):
        _reset_numpy_probe(None)
        yield
        _reset_numpy_probe(clear=True)

    def test_detection_reports_python_only(self, no_numpy):
        assert numpy_or_none() is None
        assert default_backend() == "python"
        assert available_backends() == ("python",)

    def test_numpy_backend_request_fails_loudly(self, no_numpy):
        query = weighted_query(chain(4), 4)
        with pytest.raises(ValueError, match="numpy"):
            BatchCostKernel(query, CostModel(), backend="numpy")

    def test_fast_path_still_works_and_agrees(self, no_numpy):
        query = weighted_query(star(6), 6)
        optimizer = make_optimizer("TBNmc!fast", query)
        assert optimizer.fastpath_backend == "python"
        oracle = make_optimizer("TBNmc", query, fastpath="off").optimize()
        assert optimizer.optimize() == oracle


class TestConformanceIntegration:
    def test_invariant_is_registered(self):
        from repro.conformance.invariants import INVARIANTS, QUERY_INVARIANTS

        assert "fastpath-parity" in INVARIANTS
        assert "fastpath-parity" in QUERY_INVARIANTS

    def test_invariant_holds_on_probes(self):
        from repro.conformance.invariants import check_fastpath_parity

        for graph in (chain(6), clique(5)):
            query = weighted_query(graph, graph.n)
            assert check_fastpath_parity(query) == []

    def test_matrix_lists_fast_configurations(self):
        from repro.registry import conformance_matrix

        matrix = conformance_matrix()
        assert "TBNmc!fast" in matrix["bushy-cp-free"]
        assert "TBNmcAP!fast" in matrix["bushy-cp-free"]
        assert "TLNmc!fast" in matrix["left-deep-cp-free"]


class TestCli:
    def test_optimize_json_reports_backend(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            [
                "optimize",
                "--algorithm",
                "TBNmc!fast",
                "--topology",
                "clique",
                "--n",
                "6",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fastpath"]["backend"] in ("python", "numpy")

    def test_fastpath_flag_matches_oracle(self, capsys):
        from repro.cli import main as cli_main

        results = {}
        for label, flag in (("fast", "on"), ("oracle", "off")):
            code = cli_main(
                [
                    "optimize",
                    "--topology",
                    "star",
                    "--n",
                    "7",
                    "--json",
                    "--fastpath",
                    flag,
                ]
            )
            assert code == 0
            results[label] = json.loads(capsys.readouterr().out)
        assert results["fast"]["cost"] == results["oracle"]["cost"]
        assert results["fast"]["plan"] == results["oracle"]["plan"]
        assert "fastpath" in results["fast"]
        assert "fastpath" not in results["oracle"]
