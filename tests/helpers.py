"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

from repro.core.joingraph import JoinGraph
from repro.workloads import random_connected_graph


def small_graphs() -> list[JoinGraph]:
    """A diverse batch of small graphs for oracle-style comparisons."""
    from repro.workloads import binary_tree, chain, clique, cycle, grid, star, wheel

    graphs = [
        chain(1),
        chain(2),
        chain(5),
        star(6),
        cycle(5),
        clique(5),
        wheel(6),
        binary_tree(7),
        grid(2, 3),
    ]
    graphs += [random_connected_graph(7, c, seed) for c in (0.0, 0.4) for seed in range(3)]
    return graphs
