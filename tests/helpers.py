"""Shared non-fixture helpers for the test suite.

The graph/query factories here replace the ad-hoc ``weighted_query(
chain(5), 3)`` constructions that used to be re-spelled in every test
module: name a topology, a size, and (optionally) a seed, and get the
same graph or weighted query everywhere.  ``DEFAULT_SEED`` (the
repository-wide workload seed) is the default, so tests that don't care
about the seed stay deterministic without inventing their own.

:func:`assert_ranked` and :func:`exhaustive_topk` back the ranked
enumeration tests (``docs/anytime.md``): the former asserts the list
invariants every ``optimize_topk`` result must satisfy, the latter is an
independent bottom-up k-best oracle (over
:func:`~repro.conformance.oracles.space_partition_pairs`, so it shares
no code with the enumerator's lazy top-down composition) for n <= 8.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.catalog.query import Query
from repro.core.bitset import iter_subsets
from repro.core.joingraph import JoinGraph
from repro.cost.io_model import CostModel
from repro.plans.physical import Plan
from repro.spaces import PlanSpace
from repro.workloads import (
    binary_tree,
    chain,
    clique,
    cycle,
    grid,
    random_connected_graph,
    star,
    wheel,
)
from repro.workloads.seeding import DEFAULT_SEED
from repro.workloads.weights import weighted_query

#: name -> (n) -> JoinGraph for every fixed shape the suite parametrizes over.
TOPOLOGIES: dict[str, Callable[[int], JoinGraph]] = {
    "chain": chain,
    "star": star,
    "cycle": cycle,
    "clique": clique,
    "wheel": wheel,
    "binary_tree": binary_tree,
    # Two-row lattice: the smallest shape with non-trivial biconnection.
    "grid": lambda n: grid(2, max(1, n // 2)),
}


def make_graph(topology: str, n: int, seed: int = DEFAULT_SEED) -> JoinGraph:
    """Build a named topology; ``random``/``tree`` shapes consume the seed."""
    if topology in TOPOLOGIES:
        return TOPOLOGIES[topology](n)
    if topology == "random-acyclic":
        return random_connected_graph(n, 0.0, seed)
    if topology == "random-cyclic":
        return random_connected_graph(n, 0.4, seed)
    raise ValueError(
        f"unknown topology {topology!r}; choose from "
        f"{sorted(TOPOLOGIES) + ['random-acyclic', 'random-cyclic']}"
    )


def make_query(topology: str, n: int, seed: int = DEFAULT_SEED) -> Query:
    """A weighted query over :func:`make_graph` with seeded statistics."""
    return weighted_query(make_graph(topology, n, seed), seed)


def random_query(
    n: int, cyclicity: float = 0.2, seed: int = DEFAULT_SEED
) -> Query:
    """A weighted query over a seeded random connected graph."""
    return weighted_query(random_connected_graph(n, cyclicity, seed), seed)


def assert_ranked(plans: Sequence[Plan]) -> None:
    """Assert the ranked-list invariants of ``optimize_topk`` results.

    Non-empty, costs monotone nondecreasing, and pairwise structurally
    distinct (by :meth:`~repro.plans.physical.Plan.to_wire`, which
    captures shape, operators, and bit-exact costs).
    """
    assert plans, "a ranked list is never empty"
    costs = [plan.cost for plan in plans]
    assert all(
        a <= b for a, b in zip(costs, costs[1:])
    ), f"ranked costs must be monotone nondecreasing: {costs}"
    wires = [plan.to_wire() for plan in plans]
    assert len(set(wires)) == len(wires), "ranked plans must be distinct"


def exhaustive_topk(
    query: Query,
    k: int,
    space: PlanSpace | None = None,
    cost_model: CostModel | None = None,
) -> list[float]:
    """The k cheapest distinct plan costs, by independent bottom-up DP.

    Fills one k-best cell per subset in increasing-popcount order,
    composing children through
    :func:`~repro.conformance.oracles.space_partition_pairs` — the
    ground-truth partition oracle — so the result shares no enumeration
    code with :meth:`~repro.enumerator.TopDownEnumerator.optimize_topk`.
    Truncating every cell to its k cheapest *distinct* plans is lossless
    for the root's top-k: a full plan using a subplan outside its cell's
    top-k is undercut by at least k distinct cheaper-or-equal swaps.

    Returns the cost sequence rather than plans: with cost ties the
    identity of the boundary plan is tie-break-dependent, but the sorted
    costs are not.  Exponential in ``n`` — intended for n <= 8.
    """
    from repro.conformance.oracles import space_partition_pairs

    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    space = space if space is not None else PlanSpace.bushy_cp_free()
    cost_model = cost_model if cost_model is not None else CostModel()
    graph = query.graph
    cells: dict[int, list[Plan]] = {}

    def truncate(plans: list[Plan]) -> list[Plan]:
        plans.sort(key=lambda plan: plan.cost)
        kept: list[Plan] = []
        seen = set()
        for plan in plans:
            wire = plan.to_wire()
            if wire in seen:
                continue
            seen.add(wire)
            kept.append(plan)
            if len(kept) == k:
                break
        return kept

    subsets = sorted(
        iter_subsets(graph.all_vertices), key=lambda s: s.bit_count()
    )
    for subset in subsets:
        if subset.bit_count() == 1:
            cells[subset] = truncate(
                list(cost_model.scan_plans(query, subset, None))
            )
            continue
        if not space.allows_cartesian_products and not graph.is_connected(
            subset
        ):
            continue
        candidates: list[Plan] = []
        for left, right in sorted(
            space_partition_pairs(graph, subset, space)
        ):
            for left_plan in cells.get(left, ()):
                for right_plan in cells.get(right, ()):
                    for method in cost_model.JOIN_METHODS:
                        candidates.append(
                            cost_model.build_join(
                                query, method, left_plan, right_plan
                            )
                        )
        cells[subset] = truncate(candidates)
    return [plan.cost for plan in cells.get(graph.all_vertices, [])]


def small_graphs() -> list[JoinGraph]:
    """A diverse batch of small graphs for oracle-style comparisons."""
    graphs = [
        chain(1),
        chain(2),
        chain(5),
        star(6),
        cycle(5),
        clique(5),
        wheel(6),
        binary_tree(7),
        grid(2, 3),
    ]
    graphs += [random_connected_graph(7, c, seed) for c in (0.0, 0.4) for seed in range(3)]
    return graphs
