"""Shared non-fixture helpers for the test suite.

The graph/query factories here replace the ad-hoc ``weighted_query(
chain(5), 3)`` constructions that used to be re-spelled in every test
module: name a topology, a size, and (optionally) a seed, and get the
same graph or weighted query everywhere.  ``DEFAULT_SEED`` (the
repository-wide workload seed) is the default, so tests that don't care
about the seed stay deterministic without inventing their own.
"""

from __future__ import annotations

from typing import Callable

from repro.catalog.query import Query
from repro.core.joingraph import JoinGraph
from repro.workloads import (
    binary_tree,
    chain,
    clique,
    cycle,
    grid,
    random_connected_graph,
    star,
    wheel,
)
from repro.workloads.seeding import DEFAULT_SEED
from repro.workloads.weights import weighted_query

#: name -> (n) -> JoinGraph for every fixed shape the suite parametrizes over.
TOPOLOGIES: dict[str, Callable[[int], JoinGraph]] = {
    "chain": chain,
    "star": star,
    "cycle": cycle,
    "clique": clique,
    "wheel": wheel,
    "binary_tree": binary_tree,
    # Two-row lattice: the smallest shape with non-trivial biconnection.
    "grid": lambda n: grid(2, max(1, n // 2)),
}


def make_graph(topology: str, n: int, seed: int = DEFAULT_SEED) -> JoinGraph:
    """Build a named topology; ``random``/``tree`` shapes consume the seed."""
    if topology in TOPOLOGIES:
        return TOPOLOGIES[topology](n)
    if topology == "random-acyclic":
        return random_connected_graph(n, 0.0, seed)
    if topology == "random-cyclic":
        return random_connected_graph(n, 0.4, seed)
    raise ValueError(
        f"unknown topology {topology!r}; choose from "
        f"{sorted(TOPOLOGIES) + ['random-acyclic', 'random-cyclic']}"
    )


def make_query(topology: str, n: int, seed: int = DEFAULT_SEED) -> Query:
    """A weighted query over :func:`make_graph` with seeded statistics."""
    return weighted_query(make_graph(topology, n, seed), seed)


def random_query(
    n: int, cyclicity: float = 0.2, seed: int = DEFAULT_SEED
) -> Query:
    """A weighted query over a seeded random connected graph."""
    return weighted_query(random_connected_graph(n, cyclicity, seed), seed)


def small_graphs() -> list[JoinGraph]:
    """A diverse batch of small graphs for oracle-style comparisons."""
    graphs = [
        chain(1),
        chain(2),
        chain(5),
        star(6),
        cycle(5),
        clique(5),
        wheel(6),
        binary_tree(7),
        grid(2, 3),
    ]
    graphs += [random_connected_graph(7, c, seed) for c in (0.0, 0.4) for seed in range(3)]
    return graphs
