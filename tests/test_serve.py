"""Tests for the plan service (``repro.serve``): protocol, admission,
single-flight queue, and the server end-to-end over real sockets.

The e2e battery walks the lifecycle the subsystem exists for: a cold
miss populates the cross-query cache, an identical request hits it, a
concurrent burst of identical requests is deduplicated to one
optimization, out-of-quota tenants are rejected, and a draining server
finishes admitted work while refusing new work.  Every served plan must
be bit-identical (cost and wire structure) to direct registry
optimization.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.registry import optimize
from repro.serve.admission import (
    REASON_OVERLOAD,
    REASON_QUOTA,
    AdmissionController,
    TokenBucket,
)
from repro.serve.load import build_workload, query_graph_payload, run_load
from repro.serve.protocol import (
    RequestError,
    build_request,
    cache_key,
    decode_line,
    plan_payload,
    wire_to_jsonable,
)
from repro.serve.queue import RequestQueue
from repro.serve.server import PlanServer
from repro.workloads import clique, star
from repro.workloads.weights import weighted_query

DSL = "a(1000) b(500) c(20); a-b:0.01 b-c:0.5"
GRAPH = {
    "relations": [["a", 1000.0], ["b", 500.0], ["c", 20.0]],
    "predicates": [["a", "b", 0.01], ["b", "c", 0.5]],
}


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, 3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        clock.advance(1.0)  # 2 tokens back
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.0)


class TestAdmissionController:
    def test_overload_cap(self):
        control = AdmissionController(max_inflight=1)
        assert control.admit("a") is None
        assert control.admit("b") == REASON_OVERLOAD
        control.release()
        assert control.admit("b") is None

    def test_per_tenant_quota(self):
        control = AdmissionController(
            max_inflight=10, tenant_rate=0.0, tenant_burst=1.0,
            clock=FakeClock(),
        )
        assert control.admit("alice") is None
        assert control.admit("alice") == REASON_QUOTA
        # An unrelated tenant has its own bucket.
        assert control.admit("bob") is None

    def test_overload_does_not_consume_tokens(self):
        control = AdmissionController(
            max_inflight=1, tenant_rate=0.0, tenant_burst=1.0,
            clock=FakeClock(),
        )
        assert control.admit("alice") is None
        assert control.admit("bob") == REASON_OVERLOAD
        control.release()
        assert control.admit("bob") is None  # bob's token survived the shed

    def test_unmatched_release(self):
        control = AdmissionController()
        with pytest.raises(RuntimeError):
            control.release()


class TestProtocol:
    def test_dsl_and_graph_share_cache_key(self):
        by_text = build_request({"query": DSL})
        by_graph = build_request({"graph": GRAPH})
        assert cache_key(by_text) == cache_key(by_graph)

    def test_serial_base_strips_execution_suffixes(self):
        request = build_request({"algorithm": "TBNmc@4", "query": DSL})
        assert request.resolved == "TBNmc@4"
        assert request.serial_base == "TBNmc"
        bounded = build_request({"algorithm": "TBNmc%lru:64", "query": DSL})
        assert bounded.serial_base == "TBNmc"
        assert cache_key(request) == cache_key(bounded)

    def test_alias_resolves(self):
        request = build_request({"algorithm": "mincutlazy", "query": DSL})
        assert request.resolved == "TBNmc"

    def test_exactly_one_query_source(self):
        with pytest.raises(RequestError):
            build_request({})
        with pytest.raises(RequestError):
            build_request({"query": DSL, "graph": GRAPH})

    def test_bad_algorithm_and_tenant(self):
        with pytest.raises(RequestError):
            build_request({"algorithm": "nonsense", "query": DSL})
        with pytest.raises(RequestError):
            build_request({"tenant": "", "query": DSL})

    def test_dsl_error_carries_position(self):
        with pytest.raises(RequestError) as info:
            build_request({"query": "a(1000) b(oops); a-b:0.5"})
        detail = info.value.to_dict()
        assert "position" in detail and detail["position"] is not None
        assert detail["line"] == 1

    def test_graph_validation(self):
        with pytest.raises(RequestError):
            build_request({"graph": {"relations": []}})
        with pytest.raises(RequestError):
            build_request(
                {"graph": {"relations": [["a", 10.0], ["b", 5.0]],
                           "predicates": [["a", "zzz", 0.5]]}}
            )
        with pytest.raises(RequestError):
            build_request(
                {"graph": {"relations": [["a", 10.0], ["b", 5.0]],
                           "predicates": [["a", "b", 7.0]]}}
            )

    def test_decode_line(self):
        assert decode_line(b'{"op": "ping"}\n') == {"op": "ping"}
        with pytest.raises(RequestError):
            decode_line(b"not json\n")
        with pytest.raises(RequestError):
            decode_line(b"[1, 2]\n")

    def test_wire_to_jsonable(self):
        assert wire_to_jsonable(("x", (1, 2.5), "y")) == ["x", [1, 2.5], "y"]


class TestRequestQueue:
    def test_single_flight_dedup(self):
        async def run():
            queue = RequestQueue()
            request = build_request({"query": DSL})
            key = cache_key(request)
            first, deduped_a = queue.submit(key, request)
            second, deduped_b = queue.submit(key, request)
            assert (deduped_a, deduped_b) == (False, True)
            assert queue.dedup_saves == 1
            assert queue.depth == 1
            batch = await queue.next_batch(4)
            assert batch is not None and len(batch) == 1
            assert batch[0].waiters == 2
            plan = optimize("TBNmc", request.query)
            queue.resolve(batch[0], plan)
            assert await first is plan
            assert await second is plan
            assert queue.depth == 0

        asyncio.run(run())

    def test_batches_group_by_serial_family(self):
        async def run():
            queue = RequestQueue()
            td = build_request({"query": DSL})
            bu = build_request({"algorithm": "dpccp", "query": DSL})
            queue.submit(cache_key(td), td)
            queue.submit(cache_key(bu), bu)
            queue.submit(("other", cache_key(td)), td)
            batch = await queue.next_batch(4)
            assert batch is not None
            assert [item.request.serial_base for item in batch] == [
                td.serial_base, td.serial_base,
            ]
            rest = await queue.next_batch(4)
            assert rest is not None
            assert [item.request.serial_base for item in rest] == [
                bu.serial_base,
            ]

        asyncio.run(run())

    def test_close_refuses_and_signals(self):
        async def run():
            queue = RequestQueue()
            queue.close()
            assert await queue.next_batch(4) is None
            assert await queue.next_batch(4) is None  # sentinel propagates
            with pytest.raises(RuntimeError):
                queue.submit("k", build_request({"query": DSL}))

        asyncio.run(run())


def _serve(coro_fn, **server_kwargs):
    """Run ``coro_fn(server)`` against a started server, then stop it."""

    async def run():
        server = PlanServer(**server_kwargs)
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.stop()

    return asyncio.run(run())


class TestPlanServerE2E:
    def test_cold_miss_then_hit_is_bit_identical(self):
        direct = plan_payload(optimize("TBNmc", build_request({"query": DSL}).query))

        async def scenario(server):
            first = await server.handle_payload({"id": 1, "query": DSL})
            second = await server.handle_payload({"id": 2, "graph": GRAPH})
            return first, second

        first, second = _serve(scenario)
        assert first["status"] == "ok" and not first["cached"]
        assert second["status"] == "ok" and second["cached"]
        # Served plans are bit-identical to direct optimization.
        assert first["plan"] == direct
        assert second["plan"] == direct

    def test_concurrent_identical_requests_dedup(self):
        query = weighted_query(clique(6), 7)
        payload = {"graph": query_graph_payload(query)}

        async def scenario(server):
            responses = await asyncio.gather(
                *(server.handle_payload({"id": k, **payload}) for k in range(5))
            )
            return server, responses

        server, responses = _serve(scenario)
        assert all(r["status"] == "ok" for r in responses)
        assert sum(r["deduped"] for r in responses) == 4
        assert server.queue.dedup_saves == 4
        assert server.stats.misses == 1 and server.stats.dedup_saves == 4
        direct = plan_payload(optimize("TBNmc", query))
        assert all(r["plan"] == direct for r in responses)

    def test_bottom_up_algorithm_caches_final_plan(self):
        query = weighted_query(star(5), 11)
        payload = {"algorithm": "dpccp", "graph": query_graph_payload(query)}

        async def scenario(server):
            first = await server.handle_payload({"id": 1, **payload})
            second = await server.handle_payload({"id": 2, **payload})
            return first, second

        first, second = _serve(scenario)
        assert not first["cached"] and second["cached"]
        direct = plan_payload(optimize("dpccp", query))
        assert first["plan"] == direct and second["plan"] == direct

    def test_quota_rejection(self):
        async def scenario(server):
            first = await server.handle_payload({"id": 1, "query": DSL})
            second = await server.handle_payload({"id": 2, "query": DSL})
            return server, first, second

        server, first, second = _serve(
            scenario, tenant_rate=0.0, tenant_burst=1.0
        )
        assert first["status"] == "ok"
        assert second == {"id": 2, "status": "rejected", "reason": REASON_QUOTA}
        assert server.stats.rejected == 1

    def test_bad_query_is_an_error_response(self):
        async def scenario(server):
            return await server.handle_payload(
                {"id": 9, "query": "a(1000) b(oops); a-b:0.5"}
            )

        response = _serve(scenario)
        assert response["status"] == "error"
        assert response["error"]["position"] is not None
        assert "oops" in response["error"]["message"]

    def test_ping_stats_and_unknown_op(self):
        async def scenario(server):
            ping = await server.handle_payload({"id": 1, "op": "ping"})
            await server.handle_payload({"id": 2, "query": DSL})
            stats = await server.handle_payload({"id": 3, "op": "stats"})
            unknown = await server.handle_payload({"id": 4, "op": "shrug"})
            return ping, stats, unknown

        ping, stats, unknown = _serve(scenario)
        assert ping["status"] == "ok" and ping["protocol"] == 1
        assert stats["stats"]["cache_misses"] == 1
        assert "TBNmc" in stats["caches"]
        assert unknown["status"] == "error"

    def test_malformed_line_is_an_error_response(self):
        async def scenario(server):
            return await server.handle_request_line(b"this is not json\n")

        response = _serve(scenario)
        assert response["status"] == "error"
        assert "invalid JSON" in response["error"]["message"]

    def test_drain_finishes_admitted_work_then_refuses(self):
        query = weighted_query(clique(6), 23)
        payload = {"graph": query_graph_payload(query)}

        async def run():
            server = PlanServer()
            await server.start()
            tasks = [
                asyncio.ensure_future(
                    server.handle_payload({"id": k, **payload})
                )
                for k in range(3)
            ]
            await asyncio.sleep(0)  # let every task reach the queue
            await server.stop(drain=True)
            finished = [task.result() for task in tasks]
            late = await server.handle_payload({"id": 99, **payload})
            return finished, late

        finished, late = asyncio.run(run())
        assert all(r["status"] == "ok" for r in finished)
        assert late == {"id": 99, "status": "rejected", "reason": "draining"}

    def test_tcp_roundtrip(self):
        async def run():
            server = PlanServer()
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            for payload in ({"id": 1, "op": "ping"}, {"id": 2, "query": DSL}):
                writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()
            replies = {}
            for _ in range(2):
                reply = json.loads(await reader.readline())
                replies[reply["id"]] = reply
            writer.close()
            await writer.wait_closed()
            await server.stop()
            return replies

        replies = asyncio.run(run())
        assert replies[1]["status"] == "ok" and replies[1]["protocol"] == 1
        assert replies[2]["status"] == "ok"
        assert replies[2]["plan"]["cost"] > 0


class TestLoadDriver:
    def test_seeded_suite_hits_dedups_and_verifies(self):
        async def run():
            server = PlanServer(batch_size=4, dispatch_workers=2)
            await server.start()
            host, port = server.address
            workload = build_workload(unique=6, burst=4, burst_n=6, seed=5)
            report = await run_load(host, port, workload, concurrency=3)
            await server.stop()
            return report

        report = asyncio.run(run())
        assert report.requests == 16 and report.failed == 0
        assert report.mismatches == 0
        assert report.hit_rate > 0
        assert report.dedup_saves > 0
        assert report.percentile_ms(99) >= report.percentile_ms(50) > 0


class TestServeCLI:
    def test_once_smoke(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--once", "--json", "--unique", "4",
             "--dedup-burst", "3", "--concurrency", "2"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["failed"] == 0 and report["mismatches"] == 0
        assert report["hit_rate"] > 0 and report["dedup_saves"] > 0
