"""Tests for the whole-program flow analysis (``repro.lint.flow``).

Structure mirrors ``test_lint.py``: each flow finding kind gets a
positive fixture (exact rule id and severity), a negative fixture
(idiomatic code stays clean), and a pragma-suppression check; the
cross-module fixtures exercise the call graph rather than single files.
The suite ends with the acceptance gates: the tree is flow-clean at
HEAD, and deliberately injecting an unguarded ``GlobalPlanCache`` write
or an unseeded hot-path RNG makes ``repro lint`` exit non-zero.
"""

import json
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    ALL_RULES,
    ERROR,
    FLOW_RULES,
    WARNING,
    ModuleSource,
    lint_modules,
    lint_paths,
    lint_source,
    render_sarif,
)
from repro.lint.flow import UNKNOWN, Effect, FlowProgram, Provenance, render_call_graph


def parse_fixture(files):
    """``{module_name: source}`` -> list of parsed ModuleSource."""
    return [
        ModuleSource.parse(
            textwrap.dedent(source),
            path=name.replace(".", "/") + ".py",
            module=name,
        )
        for name, source in files.items()
    ]


def flow_findings(files, **kwargs):
    """Lint a multi-module fixture with the flow rules only."""
    kwargs.setdefault("select", ["flow-*"])
    return lint_modules(parse_fixture(files), ALL_RULES, **kwargs).findings


def flow_rules_hit(files, **kwargs):
    return [f.rule for f in flow_findings(files, **kwargs)]


def build_program(files):
    return FlowProgram.build(parse_fixture(files))


HOT = "repro.enumerator.core"
HELPER = "repro.enumerator.util"


class TestCallGraph:
    def test_cross_module_resolution(self):
        program = build_program(
            {
                HOT: """\
                    from repro.enumerator.util import helper

                    def caller(x):
                        return helper(x)
                    """,
                HELPER: """\
                    def helper(x):
                        return x + 1
                    """,
            }
        )
        callees = [s.callee for s in program.graph.callees(f"{HOT}.caller")]
        assert f"{HELPER}.helper" in callees

    def test_self_method_dispatch_through_base(self):
        program = build_program(
            {
                "pkg.mod": """\
                    class Base:
                        def leaf(self):
                            return 1

                    class Derived(Base):
                        def top(self):
                            return self.leaf()
                    """,
            }
        )
        callees = [s.callee for s in program.graph.callees("pkg.mod.Derived.top")]
        assert "pkg.mod.Base.leaf" in callees

    def test_functools_partial_makes_ref_edge(self):
        program = build_program(
            {
                "pkg.mod": """\
                    import functools

                    def target(x):
                        return x

                    def builder():
                        return functools.partial(target, 1)
                    """,
            }
        )
        edges = program.graph.callees("pkg.mod.builder")
        ref = [s for s in edges if s.callee == "pkg.mod.target"]
        assert ref and ref[0].kind == "ref"

    def test_thread_spawn_marks_entry_point(self):
        program = build_program(
            {
                "pkg.mod": """\
                    import threading

                    def worker():
                        return 1

                    def start():
                        t = threading.Thread(target=worker)
                        t.start()
                    """,
            }
        )
        assert "pkg.mod.worker" in program.graph.spawned
        spawn = [
            s
            for s in program.graph.callees("pkg.mod.start")
            if s.callee == "pkg.mod.worker"
        ]
        assert spawn and spawn[0].kind == "spawn"

    def test_bound_method_to_thread_spawn(self):
        program = build_program(
            {
                "pkg.mod": """\
                    import asyncio

                    class D:
                        def _run(self):
                            return 1

                        async def go(self):
                            await asyncio.to_thread(self._run)
                    """,
            }
        )
        assert "pkg.mod.D._run" in program.graph.spawned

    def test_unresolvable_call_widens_to_unknown(self):
        program = build_program(
            {
                "pkg.mod": """\
                    def caller(thing):
                        mystery()
                        return thing.whatever()
                    """,
            }
        )
        callees = {s.callee for s in program.graph.callees("pkg.mod.caller")}
        # A bare unresolvable name widens to the <unknown> sentinel; an
        # attribute call on an opaque receiver keeps its dotted display
        # name so the effect patterns can still match it.
        assert UNKNOWN in callees
        assert "thing.whatever" in callees
        # Widened callees contribute no effects (documented imprecision).
        assert program.effects.effects_of("pkg.mod.caller") == set()

    def test_render_call_graph_dump(self):
        program = build_program(
            {
                "pkg.mod": """\
                    def leaf():
                        return 1

                    def top():
                        return leaf()
                    """,
            }
        )
        dump = render_call_graph(program)
        assert "pkg.mod.top" in dump
        assert "-> pkg.mod.leaf" in dump
        assert "edge(s)" in dump


class TestEffectInference:
    def test_transitive_io_effect(self):
        program = build_program(
            {
                "pkg.a": """\
                    from pkg.b import dump

                    def top(x):
                        return dump(x)
                    """,
                "pkg.b": """\
                    def dump(x):
                        print(x)
                    """,
            }
        )
        assert Effect.IO in program.effects.effects_of("pkg.a.top")
        witness = program.effects.witness("pkg.a.top", Effect.IO)
        assert witness.qname == "pkg.b.dump"
        assert witness.path == ("pkg.b.dump",)

    def test_guarded_call_does_not_propagate_trace(self):
        program = build_program(
            {
                "pkg.a": """\
                    def emit(tracer, payload):
                        tracer.event(payload)

                    def guarded(tracer):
                        if tracer.enabled:
                            emit(tracer, "x")
                    """,
            }
        )
        assert Effect.TRACE in program.effects.effects_of("pkg.a.emit")
        assert Effect.TRACE not in program.effects.effects_of("pkg.a.guarded")


class TestHotPathEffectRules:
    def test_hotpath_io_one_call_deep(self):
        found = flow_findings(
            {
                HOT: """\
                    from repro.enumerator.util import dump

                    def _calc_best_join(x):
                        dump(x)
                    """,
                HELPER: """\
                    def dump(x):
                        with open("/tmp/out", "w") as fh:
                            fh.write(str(x))
                    """,
            }
        )
        hits = [f for f in found if f.rule == "flow-hotpath-io"]
        assert hits and all(f.severity == ERROR for f in hits)
        assert any(f.module == HOT and "dump" in f.message for f in hits)

    def test_hotpath_env_one_call_deep(self):
        rules = flow_rules_hit(
            {
                HOT: """\
                    from repro.enumerator.util import mode

                    def _calc_best_join(x):
                        return mode()
                    """,
                HELPER: """\
                    import os

                    def mode():
                        return os.environ.get("REPRO_MODE")
                    """,
            }
        )
        assert "flow-hotpath-env" in rules

    def test_hotpath_random_one_call_deep(self):
        rules = flow_rules_hit(
            {
                HOT: """\
                    from repro.enumerator.util import mix

                    def _calc_best_join(xs):
                        return mix(xs)
                    """,
                HELPER: """\
                    import random

                    def mix(xs):
                        random.shuffle(xs)
                        return xs
                    """,
            }
        )
        assert "flow-hotpath-random" in rules

    def test_hotpath_trace_is_transitive_only(self):
        files = {
            HOT: """\
                from repro.enumerator.util import note

                def _calc_best_join(tracer, x):
                    note(tracer, x)
                """,
            HELPER: """\
                def note(tracer, payload):
                    tracer.event(payload)
                """,
        }
        found = flow_findings(files)
        trace = [f for f in found if f.rule == "flow-hotpath-trace"]
        # The caller is flagged (call-deep leak); the direct site in the
        # helper is the syntactic hotpath-purity rule's jurisdiction.
        assert any(f.module == HOT for f in trace)
        assert not any(f.module == HELPER for f in trace)

    def test_hotpath_alloc_is_a_warning(self):
        found = flow_findings(
            {
                HOT: """\
                    from repro.enumerator.util import uniq

                    def _calc_best_join(xs):
                        return uniq(xs)
                    """,
                HELPER: """\
                    def uniq(xs):
                        return set(xs)
                    """,
            }
        )
        allocs = [f for f in found if f.rule == "flow-hotpath-alloc"]
        assert allocs and all(f.severity == WARNING for f in allocs)

    def test_guarded_emission_and_cold_functions_stay_clean(self):
        rules = flow_rules_hit(
            {
                HOT: """\
                    from repro.enumerator.util import note

                    def _calc_best_join(tracer, x):
                        if tracer.enabled:
                            note(tracer, x)

                    def describe(tracer, x):
                        note(tracer, x)
                    """,
                HELPER: """\
                    def note(tracer, payload):
                        tracer.event(payload)
                    """,
            }
        )
        assert "flow-hotpath-trace" not in rules

    def test_cold_module_is_out_of_scope(self):
        rules = flow_rules_hit(
            {
                "repro.workloads.gen": """\
                    import os

                    def anything():
                        return os.environ.get("HOME")
                    """,
            }
        )
        assert "flow-hotpath-env" not in rules


LOCK_FIXTURE = """\
    import threading

    class Shared:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def read_racy(self):
            return self._count

        def write_racy(self):
            self._count = 0
    """


class TestLockDiscipline:
    def test_unguarded_read_and_write(self):
        found = flow_findings({"pkg.shared": LOCK_FIXTURE})
        rules = [f.rule for f in found]
        assert "flow-unguarded-read" in rules
        assert "flow-unguarded-write" in rules
        assert all(f.severity == ERROR for f in found)

    def test_consistently_locked_class_is_clean(self):
        assert (
            flow_rules_hit(
                {
                    "pkg.shared": """\
                    import threading

                    class Shared:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._count = 0

                        def bump(self):
                            with self._lock:
                                self._count += 1

                        def read(self):
                            with self._lock:
                                return self._count
                    """
                }
            )
            == []
        )

    def test_private_helper_called_under_lock_is_locked_context(self):
        assert (
            flow_rules_hit(
                {
                    "pkg.shared": """\
                    import threading

                    class Shared:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._items = {}

                        def store(self, key, value):
                            with self._lock:
                                self._put(key, value)

                        def _put(self, key, value):
                            self._items[key] = value
                    """
                }
            )
            == []
        )

    def test_guard_inconsistent_two_locks(self):
        rules = flow_rules_hit(
            {
                "pkg.shared": """\
                    import threading

                    class Shared:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self._aux_lock = threading.Lock()
                            self._count = 0

                        def bump(self):
                            with self._lock:
                                self._count += 1

                        def bump_other(self):
                            with self._aux_lock:
                                self._count += 1
                    """
            }
        )
        assert "flow-guard-inconsistent" in rules

    def test_get_lock_style_with_is_recognized(self):
        # SharedBound-style: with self._value.get_lock(): ...
        assert (
            flow_rules_hit(
                {
                    "pkg.shared": """\
                    import multiprocessing

                    class Bound:
                        def __init__(self, context, initial):
                            self._value = context.Value("d", initial)

                        def get(self):
                            with self._value.get_lock():
                                return self._value.value

                        def tighten(self, candidate):
                            with self._value.get_lock():
                                self._value.value = candidate
                    """
                }
            )
            == []
        )

    def test_blocking_under_lock_warns(self):
        found = flow_findings(
            {
                "pkg.shared": """\
                    import threading

                    class Logger:
                        def __init__(self):
                            self._lock = threading.Lock()

                        def flush(self, data):
                            with self._lock:
                                self._write(data)

                        def _write(self, data):
                            with open("/tmp/log", "w") as fh:
                                fh.write(data)
                    """
            }
        )
        blocking = [f for f in found if f.rule == "flow-blocking-under-lock"]
        assert blocking and blocking[0].severity == WARNING

    def test_concurrent_global_write(self):
        found = flow_findings(
            {
                "pkg.mod": """\
                    import threading

                    _RESULTS = []

                    def worker(x):
                        _RESULTS.append(x)

                    def start():
                        t = threading.Thread(target=worker)
                        t.start()
                    """
            }
        )
        hits = [f for f in found if f.rule == "flow-concurrent-global-write"]
        assert hits and hits[0].severity == ERROR
        assert "_RESULTS" in hits[0].message

    def test_pragma_suppresses_with_reason(self):
        source = LOCK_FIXTURE.replace(
            "return self._count",
            "return self._count  "
            "# lint: disable=flow-unguarded-read -- latch read, torn reads benign",
        ).replace(
            "def write_racy(self):\n            self._count = 0",
            "def write_racy(self):\n            self._count = 0  "
            "# lint: disable=flow-unguarded-write -- test fixture waiver",
        )
        # The __init__ assignment is exempt by rule; the racy method
        # bodies carry pragmas, so the fixture lints clean.
        found = flow_findings({"pkg.shared": source})
        assert [f.rule for f in found] == []


class TestDeterminismTaint:
    def test_unseeded_construction_is_flagged(self):
        found = flow_findings(
            {
                "pkg.mod": """\
                    import random

                    def make():
                        return random.Random()
                    """
            }
        )
        assert [f.rule for f in found] == ["flow-unseeded-rng"]
        assert found[0].severity == ERROR

    def test_nondeterministic_seed_is_flagged(self):
        rules = flow_rules_hit(
            {
                "pkg.mod": """\
                    import random
                    import time

                    def make():
                        return random.Random(time.time())
                    """
            }
        )
        assert "flow-unseeded-rng" in rules

    def test_seeded_pair_stays_clean(self):
        assert (
            flow_rules_hit(
                {
                    "pkg.mod": """\
                    import random

                    DEFAULT_SEED = 20070611

                    def from_param(seed):
                        return random.Random(seed)

                    def from_constant():
                        return random.Random(DEFAULT_SEED)

                    def derived(seed, worker_index):
                        return random.Random(seed + worker_index * 7919)
                    """
                }
            )
            == []
        )

    def test_imported_constant_counts_as_seeded(self):
        assert (
            flow_rules_hit(
                {
                    "pkg.seeds": "DEFAULT_SEED = 7\n",
                    "pkg.mod": """\
                    import random

                    from pkg.seeds import DEFAULT_SEED

                    def make():
                        return random.Random(DEFAULT_SEED)
                    """,
                }
            )
            == []
        )

    def test_unused_seed_parameter_warns(self):
        found = flow_findings(
            {
                "pkg.mod": """\
                    def run(items, seed):
                        return sorted(items)
                    """
            }
        )
        assert [f.rule for f in found] == ["flow-unused-seed"]
        assert found[0].severity == WARNING

    def test_taint_provenance_classification(self):
        program = build_program(
            {
                "pkg.mod": """\
                    import random
                    import time

                    def bad():
                        return random.Random(time.time())

                    def opaque(thing):
                        return random.Random(thing.whatever())
                    """
            }
        )
        by_fn = {site.function: site for site in program.taint.sites}
        assert by_fn["pkg.mod.bad"].provenance is Provenance.NONDET
        # Unknown provenance is clean by design (documented imprecision).
        assert by_fn["pkg.mod.opaque"].provenance is Provenance.UNKNOWN


class TestEngineIntegration:
    def test_glob_select_picks_flow_family(self):
        report = lint_source(
            "import random\n\ndef make():\n    return random.Random()\n",
            select=["flow-*"],
        )
        assert set(report.rules_run) == {rule.name for rule in FLOW_RULES}
        assert [f.rule for f in report.findings] == ["flow-unseeded-rng"]

    def test_unmatched_glob_raises(self):
        with pytest.raises(ValueError, match="matches no rule"):
            lint_source("x = 1\n", select=["nope-*"])

    def test_flow_findings_flow_through_reporters(self):
        report = lint_source(
            "import random\n\ndef make():\n    return random.Random()\n",
            select=["flow-unseeded-rng"],
        )
        sarif = json.loads(render_sarif(report, ALL_RULES))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"][0]["ruleId"] == "flow-unseeded-rng"
        assert run["results"][0]["level"] == "error"

    def test_program_root_reports_only_linted_paths(self, tmp_path):
        pkg = tmp_path / "repro" / "enumerator"
        pkg.mkdir(parents=True)
        (pkg / "core.py").write_text(
            "from repro.enumerator.util import mode\n\n"
            "def _calc_best_join(x):\n    return mode()\n"
        )
        (pkg / "util.py").write_text(
            "import os\n\ndef mode():\n    return os.environ.get('MODE')\n"
        )
        report = lint_paths(
            [str(pkg / "core.py")],
            select=["flow-*"],
            program_paths=[str(tmp_path)],
        )
        assert report.findings, "cross-module leak must be visible"
        assert all(f.path.endswith("core.py") for f in report.findings)
        # Without the program context the leak is invisible.
        alone = lint_paths([str(pkg / "core.py")], select=["flow-*"])
        assert alone.findings == []

    def test_all_flow_rules_are_registered(self):
        names = {rule.name for rule in FLOW_RULES}
        assert len(names) == 12
        assert names <= {rule.name for rule in ALL_RULES}
        assert all(name.startswith("flow-") for name in names)


class TestCli:
    BAD = "import random\n\ndef make():\n    return random.Random()\n"

    def test_flow_violation_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        assert cli_main(["lint", str(path), "--select", "flow-*"]) == 1
        assert "flow-unseeded-rng" in capsys.readouterr().out

    def test_sarif_format(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        assert cli_main(["lint", str(path), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert any(
            r["ruleId"].startswith("flow-")
            for r in payload["runs"][0]["results"]
        )

    def test_call_graph_dump(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def leaf():\n    return 1\n\ndef top():\n    return leaf()\n")
        assert cli_main(["lint", str(path), "--call-graph"]) == 0
        out = capsys.readouterr().out
        assert "-> mod.leaf" in out

    def test_program_root_cli(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "enumerator"
        pkg.mkdir(parents=True)
        (pkg / "core.py").write_text(
            "from repro.enumerator.util import mode\n\n"
            "def _calc_best_join(x):\n    return mode()\n"
        )
        (pkg / "util.py").write_text(
            "import os\n\ndef mode():\n    return os.environ.get('MODE')\n"
        )
        code = cli_main(
            [
                "lint",
                str(pkg / "core.py"),
                "--program-root",
                str(tmp_path),
                "--select",
                "flow-*",
            ]
        )
        assert code == 1
        assert "flow-hotpath-env" in capsys.readouterr().out


class TestRepoGate:
    """Acceptance: the tree is flow-clean, injections are caught."""

    def test_repo_is_flow_clean(self):
        report = lint_paths(["src", "tests", "benchmarks"], select=["flow-*"])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"flow findings at HEAD:\n{rendered}"

    def test_repo_is_fully_clean_including_benchmarks(self):
        report = lint_paths(["src", "tests", "benchmarks"])
        assert report.files_checked > 150
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"lint findings at HEAD:\n{rendered}"

    def test_injected_unguarded_cache_write_fails_lint(self, tmp_path):
        source = open("src/repro/memo.py", encoding="utf-8").read()
        copy = tmp_path / "memo.py"
        copy.write_text(source)
        clean = lint_paths([str(copy)], select=["flow-*"])
        assert clean.findings == [], "pristine copy must lint clean"
        idx = source.index("class GlobalPlanCache")
        insert_at = source.index("\n    def ", idx)
        injected = (
            "\n    def racy_poke(self, key, names):\n"
            "        self._name_maps[key] = names\n"
        )
        copy.write_text(source[:insert_at] + injected + source[insert_at:])
        report = lint_paths([str(copy)], select=["flow-*"])
        assert report.exit_code == 1
        assert any(f.rule == "flow-unguarded-write" for f in report.findings)

    def test_injected_unseeded_hotpath_rng_fails_lint(self, tmp_path):
        pkg = tmp_path / "repro" / "enumerator"
        pkg.mkdir(parents=True)
        helper = pkg / "jitter.py"
        helper.write_text(
            "import random\n\n"
            "def _jitter():\n"
            "    return random.Random()\n\n"
            "def _calc_best_join(xs):\n"
            "    rng = _jitter()\n"
            "    return rng\n"
        )
        report = lint_paths([str(helper)], select=["flow-*"])
        assert report.exit_code == 1
        assert any(f.rule == "flow-unseeded-rng" for f in report.findings)
