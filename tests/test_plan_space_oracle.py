"""First-principles oracle: enumerate every plan in a space explicitly.

The integration tests check that all algorithms agree with *each other*;
this module removes the remaining circularity by deriving the optimum
from scratch — recursively constructing every physical plan tree of each
space for tiny queries and taking the cheapest — and checking every
optimizer against it.  The same complete enumeration grounds the ranked
tier: its k cheapest distinct plans must agree with both the top-down
``optimize_topk`` and the bottom-up DP oracle of
:func:`tests.helpers.exhaustive_topk`, giving three independent
derivations of every ranked cost sequence.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Query
from repro.core.bitset import iter_subsets
from repro.cost.io_model import CostModel
from repro.registry import make_optimizer
from repro.spaces import PlanSpace
from repro.workloads import chain, clique, cycle, random_connected_graph, star
from repro.workloads.weights import weighted_query
from tests.helpers import assert_ranked, exhaustive_topk, make_query

MODEL = CostModel()


def all_plans(query: Query, subset: int, space: PlanSpace):
    """Yield every physical plan for ``subset`` within ``space``."""
    graph = query.graph
    if subset & (subset - 1) == 0:
        yield from MODEL.scan_plans(query, subset, None)
        return
    cp_free = not space.allows_cartesian_products
    if cp_free and not graph.is_connected(subset):
        return
    for left in iter_subsets(subset, proper=True):
        right = subset ^ left
        if space.is_left_deep and right & (right - 1):
            continue  # right side must be a base relation
        if cp_free and not (
            graph.is_connected(left)
            and graph.is_connected(right)
            and graph.connects(left, right)
        ):
            continue
        for left_plan in all_plans(query, left, space):
            for right_plan in all_plans(query, right, space):
                for method in MODEL.JOIN_METHODS:
                    yield MODEL.build_join(query, method, left_plan, right_plan)


def oracle_minimum(query: Query, space: PlanSpace) -> float:
    return min(p.cost for p in all_plans(query, query.graph.all_vertices, space))


def oracle_topk(query: Query, k: int, space: PlanSpace) -> list[float]:
    """The k cheapest *distinct* plan costs, by complete enumeration.

    No memoization, no per-cell truncation — the slowest and therefore
    most trustworthy of the three ranked oracles.
    """
    costs: list[float] = []
    seen: set[object] = set()
    plans = sorted(
        all_plans(query, query.graph.all_vertices, space),
        key=lambda plan: plan.cost,
    )
    for plan in plans:
        wire = plan.to_wire()
        if wire in seen:
            continue
        seen.add(wire)
        costs.append(plan.cost)
        if len(costs) == k:
            break
    return costs


SPACE_REPRESENTATIVES = {
    PlanSpace.left_deep_cp_free(): ["TLNmc", "TLNnaive", "BLNsize", "TLNmcAP"],
    PlanSpace.left_deep_with_cp(): ["TLCnaive", "BLCsize", "TLCnaiveP"],
    PlanSpace.bushy_cp_free(): ["TBNmc", "TBNmcopt", "BBNccp", "BBNnaive", "TBNmcA"],
    PlanSpace.bushy_with_cp(): ["TBCnaive", "BBCsize", "BBCnaive", "TBCnaiveP"],
}


class TestAgainstExplicitPlanSpace:
    @pytest.mark.parametrize(
        "maker,n",
        [(chain, 4), (star, 4), (cycle, 4), (clique, 4), (chain, 5)],
        ids=["chain4", "star4", "cycle4", "clique4", "chain5"],
    )
    def test_fixed_topologies(self, maker, n):
        query = weighted_query(maker(n), 31)
        for space, names in SPACE_REPRESENTATIVES.items():
            expected = oracle_minimum(query, space)
            for name in names:
                plan = make_optimizer(name, query).optimize()
                assert plan.cost == pytest.approx(expected), (space.describe(), name)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=10, deadline=None)
    def test_random_queries(self, seed):
        query = weighted_query(random_connected_graph(5, 0.4, seed), seed)
        for space, names in SPACE_REPRESENTATIVES.items():
            expected = oracle_minimum(query, space)
            plan = make_optimizer(names[0], query).optimize()
            assert plan.cost == pytest.approx(expected), space.describe()

    def test_oracle_plan_counts(self):
        """The explicit enumeration itself matches known tree counts:
        a 4-relation clique has 5 shapes x 4! orders x 3 methods^3 plans
        in the bushy space, of which the with-CP chain space is a strict
        subset."""
        query = weighted_query(clique(3), 1)
        bushy = list(all_plans(query, 0b111, PlanSpace.bushy_with_cp()))
        # n=3: 3 unordered shapes x ... = 12 ordered logical trees,
        # each join picks one of 3 methods at 2 join nodes: 12 * 9 = 108.
        assert len(bushy) == 108
        left_deep = list(all_plans(query, 0b111, PlanSpace.left_deep_with_cp()))
        # left-deep logical trees: 3! = 6, times 9 method choices.
        assert len(left_deep) == 54

    @pytest.mark.parametrize("topology", ["chain", "star", "cycle", "clique"])
    def test_ranked_matches_complete_enumeration(self, topology):
        """Three independent derivations of the top-k cost sequence agree:
        complete enumeration, bottom-up k-best DP, lazy top-down ranking."""
        query = make_query(topology, 4, 31)
        representatives = {
            PlanSpace.left_deep_cp_free(): "TLNmc",
            PlanSpace.left_deep_with_cp(): "TLCnaive",
            PlanSpace.bushy_cp_free(): "TBNmc",
            PlanSpace.bushy_with_cp(): "TBCnaive",
        }
        for space, name in representatives.items():
            complete = oracle_topk(query, 5, space)
            dp = exhaustive_topk(query, 5, space=space)
            ranked = make_optimizer(name, query).optimize_topk(5)
            assert_ranked(ranked)
            lazy = [plan.cost for plan in ranked]
            assert len(complete) == len(dp) == len(lazy), space.describe()
            for a, b, c in zip(complete, dp, lazy):
                assert math.isclose(a, b, rel_tol=1e-9), space.describe()
                assert math.isclose(a, c, rel_tol=1e-9), space.describe()

    def test_transformational_and_prefix_match_oracle(self):
        from repro.prefix import PrefixSearchOptimizer
        from repro.transform import TransformationalOptimizer

        query = weighted_query(cycle(4), 7)
        assert TransformationalOptimizer(query).optimize().cost == pytest.approx(
            oracle_minimum(query, PlanSpace.bushy_with_cp())
        )
        assert TransformationalOptimizer(
            query, cp_free=True
        ).optimize().cost == pytest.approx(
            oracle_minimum(query, PlanSpace.bushy_cp_free())
        )
        assert PrefixSearchOptimizer(query).optimize().cost == pytest.approx(
            oracle_minimum(query, PlanSpace.left_deep_cp_free())
        )
