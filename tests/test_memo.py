"""Tests for memo tables: plain, LRU-bounded, and the cross-query cache."""

import pytest

from repro.analysis.metrics import Metrics
from repro.catalog import Catalog, Query
from repro.cost.io_model import CostModel
from repro.memo import GlobalPlanCache, MemoTable, canonical_expression_key
from repro.workloads import chain
from repro.workloads.weights import weighted_query


@pytest.fixture
def query():
    return Query.uniform(chain(4), cardinality=1000, selectivity=0.01)


def scan(query, v):
    [plan] = CostModel().scan_plans(query, 1 << v, None)
    return plan


class TestMemoTable:
    def test_store_and_get(self, query):
        memo = MemoTable()
        assert memo.get(query, 1, None) is None
        memo.store_plan(query, 1, None, scan(query, 0))
        entry = memo.get(query, 1, None)
        assert entry.has_plan
        assert memo.plan_for_query(query, entry).vertices == 1

    def test_keyed_by_order(self, query):
        memo = MemoTable()
        memo.store_plan(query, 1, None, scan(query, 0))
        assert memo.get(query, 1, 0) is None

    def test_lower_bound_keeps_maximum(self, query):
        memo = MemoTable()
        memo.store_lower_bound(query, 3, None, 10.0)
        memo.store_lower_bound(query, 3, None, 5.0)
        assert memo.get(query, 3, None).lower_bound == 10.0
        memo.store_lower_bound(query, 3, None, 20.0)
        assert memo.get(query, 3, None).lower_bound == 20.0

    def test_cell_counting(self, query):
        memo = MemoTable()
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_lower_bound(query, 3, None, 9.0)
        assert memo.populated_cells() == 2
        assert memo.plan_cells() == 1
        assert memo.bound_cells() == 1

    def test_clear(self, query):
        memo = MemoTable()
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.clear()
        assert len(memo) == 0


class TestLRUEviction:
    def test_capacity_zero_stores_nothing(self, query):
        memo = MemoTable(capacity=0)
        memo.store_plan(query, 1, None, scan(query, 0))
        assert memo.get(query, 1, None) is None
        assert len(memo) == 0

    def test_eviction_in_lru_order(self, query):
        metrics = Metrics()
        memo = MemoTable(capacity=2, metrics=metrics)
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_plan(query, 2, None, scan(query, 1))
        # Touch mask 1 so that mask 2 is the least recently used.
        assert memo.get(query, 1, None) is not None
        memo.store_plan(query, 4, None, scan(query, 2))
        assert memo.get(query, 2, None) is None
        assert memo.get(query, 1, None) is not None
        assert memo.get(query, 4, None) is not None
        assert metrics.memo_evictions == 1

    def test_peak_tracking(self, query):
        metrics = Metrics()
        memo = MemoTable(capacity=2, metrics=metrics)
        for v in range(4):
            memo.store_plan(query, 1 << v, None, scan(query, v))
        assert metrics.peak_memo_cells == 2
        assert metrics.memo_evictions == 2

    def test_overwrite_does_not_evict(self, query):
        metrics = Metrics()
        memo = MemoTable(capacity=1, metrics=metrics)
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_plan(query, 1, None, scan(query, 0))
        assert metrics.memo_evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoTable(capacity=-1)


def two_overlapping_queries():
    """Q1 = A ⋈ B ⋈ C and Q2 = B ⋈ C ⋈ D (Section 5.1's example)."""
    def build(names):
        cat = Catalog()
        cards = {"A": 1000, "B": 2000, "C": 4000, "D": 8000}
        for name in names:
            cat.add_relation(name, cards[name])
        for i in range(len(names) - 1):
            cat.add_predicate(i, i + 1, 0.01)
        return Query.from_catalog(cat)

    return build(["A", "B", "C"]), build(["B", "C", "D"])


class TestGlobalPlanCache:
    def test_canonical_key_ignores_vertex_numbering(self):
        q1, q2 = two_overlapping_queries()
        # BC is vertices {1,2} in Q1 but {0,1} in Q2.
        key1 = canonical_expression_key(q1, 0b110, None)
        key2 = canonical_expression_key(q2, 0b011, None)
        assert key1 == key2

    def test_key_distinguishes_predicates(self):
        q1, _ = two_overlapping_queries()
        assert canonical_expression_key(q1, 0b011, None) != canonical_expression_key(
            q1, 0b110, None
        )

    def test_cross_query_plan_retrieval(self):
        q1, q2 = two_overlapping_queries()
        cache = GlobalPlanCache()
        model = CostModel()
        [b1] = model.scan_plans(q1, 0b010, None)
        [c1] = model.scan_plans(q1, 0b100, None)
        bc = model.build_join(q1, model.JOIN_METHODS[1], b1, c1)
        cache.store_plan(q1, 0b110, None, bc)

        entry = cache.get(q2, 0b011, None)
        assert entry is not None
        plan = cache.plan_for_query(q2, entry)
        assert plan is not None
        assert plan.vertices == 0b011  # remapped into Q2's numbering
        assert plan.cost == bc.cost
        assert sorted(plan.leaf_relations()) == ["B", "C"]

    def test_unknown_relation_returns_none(self):
        q1, q2 = two_overlapping_queries()
        cache = GlobalPlanCache()
        [a1] = CostModel().scan_plans(q1, 0b001, None)
        cache.store_plan(q1, 0b001, None, a1)
        # Q2 has no relation A; the canonical keys differ, so no entry.
        assert cache.get(q2, 0b001, None) is None or cache.plan_for_query(
            q2, cache.get(q2, 0b001, None)
        ) is None

    def test_order_token_canonicalized_by_name(self):
        q1, q2 = two_overlapping_queries()
        key1 = canonical_expression_key(q1, 0b110, 1)  # order on B (vertex 1 in Q1)
        key2 = canonical_expression_key(q2, 0b011, 0)  # order on B (vertex 0 in Q2)
        assert key1 == key2


class TestWireExportImport:
    """Round-trips of the parallel wire format (export/import_entries)."""

    def test_plan_round_trip(self, query):
        memo = MemoTable()
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_plan(query, 2, 1, scan(query, 1))
        entries = memo.export_entries()
        other = MemoTable()
        assert other.import_entries(query, entries) == 2
        for subset, order in ((1, None), (2, 1)):
            entry = other.get(query, subset, order)
            restored = other.plan_for_query(query, entry)
            original = memo.plan_for_query(query, memo.get(query, subset, order))
            assert restored == original

    def test_lower_bound_round_trip(self, query):
        memo = MemoTable()
        memo.store_lower_bound(query, 3, None, 12.5)
        other = MemoTable()
        other.import_entries(query, memo.export_entries())
        entry = other.get(query, 3, None)
        assert not entry.has_plan
        assert entry.lower_bound == 12.5

    def test_exclude_skips_already_sent_keys(self, query):
        memo = MemoTable()
        memo.store_plan(query, 1, None, scan(query, 0))
        memo.store_plan(query, 2, None, scan(query, 1))
        sent = {memo.key_for(query, 1, None)}
        entries = memo.export_entries(exclude=sent)
        assert [(s, o) for s, o, _, _ in entries] == [(2, None)]

    def test_existing_plan_wins_on_conflict(self, query):
        memo = MemoTable()
        first = scan(query, 0)
        memo.store_plan(query, 1, None, first)
        # Import a lower-bound entry and a duplicate plan for the same key:
        # neither may displace the stored plan (first-plan-wins policy).
        imported = memo.import_entries(
            query, [(1, None, None, 99.0), (1, None, first.to_wire(), None)]
        )
        assert imported == 0
        entry = memo.get(query, 1, None)
        assert entry.has_plan
        assert memo.plan_for_query(query, entry) == first

    def test_bound_import_keeps_maximum(self, query):
        memo = MemoTable()
        memo.store_lower_bound(query, 3, None, 10.0)
        memo.import_entries(query, [(3, None, None, 5.0)])
        assert memo.get(query, 3, None).lower_bound == 10.0
        memo.import_entries(query, [(3, None, None, 20.0)])
        assert memo.get(query, 3, None).lower_bound == 20.0

    def test_eviction_then_reimport_round_trip(self, query):
        # A capacity-bounded memo evicts cells; exporting before eviction
        # and importing after must restore the evicted entries.
        memo = MemoTable(capacity=2, policy="lru")
        memo.store_plan(query, 1, None, scan(query, 0))
        exported = memo.export_entries()
        memo.store_plan(query, 2, None, scan(query, 1))
        memo.store_plan(query, 4, None, scan(query, 2))  # evicts subset 1
        assert memo.get(query, 1, None) is None
        restored = memo.import_entries(query, exported)
        assert restored == 1
        assert memo.get(query, 1, None).has_plan

    def test_export_keys_in_insertion_order(self, query):
        memo = MemoTable()
        memo.store_plan(query, 2, None, scan(query, 1))
        memo.store_plan(query, 1, None, scan(query, 0))
        assert [s for s, _, _, _ in memo.export_entries()] == [2, 1]

    def test_global_cache_rejects_export(self):
        cache = GlobalPlanCache()
        with pytest.raises(TypeError):
            cache.export_entries()
