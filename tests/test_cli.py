"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize"])
        assert args.algorithm == "TBNmc"
        assert args.topology == "star"
        assert args.n == 8

    def test_experiment_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig2", "--scale", "huge"])


class TestCommands:
    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "TBNmc" in out and "BBNccp" in out and "top-down" in out

    def test_optimize_prints_plan(self, capsys):
        code = main([
            "optimize", "--algorithm", "TBNmcP", "--topology", "chain",
            "--n", "5", "--seed", "3", "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cost:" in out
        assert "scan(" in out
        assert "counters:" in out

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "fig4", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Clique" in out and "completed" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_optimize_with_dsl_query(self, capsys):
        code = main([
            "optimize", "--query", "a(1000) b(500) c(20); a-b:0.01 b-c:0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "n=3" in out and "scan(a)" in out

    def test_run_executes_plan(self, capsys):
        code = main([
            "run", "--query", "a(1000) b(500); a-b:0.05", "--rows", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "result:" in out and "plan (TBNmc)" in out

    def test_run_generated_topology(self, capsys):
        assert main(["run", "--topology", "chain", "--n", "4", "--rows", "12"]) == 0
        assert "result:" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_optimize_json(self, capsys):
        import json

        code = main([
            "optimize", "--algorithm", "TBNmc", "--topology", "chain",
            "--n", "5", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "TBNmc"
        assert payload["cost"] > 0
        assert payload["elapsed_ms"] > 0
        assert payload["metrics"]["memo_lookups"] > 0
        assert payload["instruments"]["time_between_joins_us"]["count"] > 0

    def test_optimize_trace_out_span_count(self, capsys, tmp_path):
        """The ISSUE acceptance: spans == memoized expressions explored."""
        import json

        from repro.registry import make_optimizer
        from repro.workloads import clique
        from repro.workloads.weights import weighted_query

        path = tmp_path / "t.jsonl"
        code = main([
            "optimize", "--algorithm", "mincutlazy", "--topology", "clique",
            "--n", "6", "--trace-out", str(path),
        ])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        spans = [json.loads(line) for line in path.read_text().splitlines()]
        optimizer = make_optimizer("TBNmc", weighted_query(clique(6), 42))
        optimizer.optimize()
        assert len(spans) == optimizer.memo.populated_cells()

    def test_trace_command(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main([
            "trace", "--algorithm", "mincutlazy", "--topology", "chain",
            "--n", "5", "--out", str(path), "--max-depth", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert "summary:" in out
        assert "[mc]" in out
        assert path.read_text().strip()

    def test_trace_alias_accepted(self, capsys):
        assert main(["trace", "--algorithm", "dpccp", "--topology",
                     "chain", "--n", "4"]) == 0
        assert "optimize" in capsys.readouterr().out


class TestProfileCli:
    """The kernel-profiler subcommand and optimize --profile-out."""

    def test_profile_text_table(self, capsys):
        assert main([
            "profile", "--topology", "star", "--n", "8", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "kernel" in out and "share" in out
        assert "cost.eval" in out and "enum.recurse" in out
        assert "top-3 of wall:" in out

    def test_profile_json_report(self, capsys):
        import json

        assert main([
            "profile", "--topology", "clique", "--n", "7", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["algorithm"] == "TBNmc"
        assert report["coverage_of_wall"] > 0.9
        kernels = [row["kernel"] for row in report["kernels"]]
        assert "memo.table" in kernels
        for row in report["kernels"]:
            assert row["share_of_wall"] >= 0.0

    def test_profile_kernel_filter(self, capsys):
        assert main([
            "profile", "--topology", "star", "--n", "7",
            "--kernels", "memo.table,cost.eval",
        ]) == 0
        out = capsys.readouterr().out
        assert "memo.table" in out and "cost.eval" in out
        assert "partition.bcc_build" not in out

    def test_profile_flamegraph_creates_parent_dirs(self, capsys, tmp_path):
        """--*-out paths create missing directories (the trace fix)."""
        folded = tmp_path / "deep" / "nested" / "star.folded"
        assert main([
            "profile", "--topology", "star", "--n", "7",
            "--flamegraph-out", str(folded),
        ]) == 0
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:
            path, _space, micros = line.rpartition(" ")
            assert path and int(micros) >= 0
        assert any(line.startswith("enum.recurse;") for line in lines)

    def test_optimize_profile_out(self, capsys, tmp_path):
        import json

        out = tmp_path / "profile.json"
        code = main([
            "optimize", "--topology", "chain", "--n", "6", "--json",
            "--profile-out", str(out),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["path"] == str(out)
        report = json.load(open(out, encoding="utf-8"))
        assert report["kernels"]
        assert payload["profile"]["kernels"] == [
            row["kernel"] for row in report["kernels"]
        ]


class TestExplainCli:
    """The plan-decision explain subcommand (ledger + phase diff)."""

    def test_explain_single_run_ledger(self, capsys):
        assert main([
            "explain", "--algorithm", "TBNmcAP", "--topology", "clique",
            "--n", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "expression" in out and "budget" in out

    def test_explain_phases_text(self, capsys):
        assert main([
            "explain", "--topology", "clique", "--n", "8",
            "--phases", "TBNmcP,TBCnaiveP",
        ]) == 0
        out = capsys.readouterr().out
        assert "phase diff (every phase-1 subplan):" in out
        assert "bounding ledger (final phase):" in out

    def test_explain_phases_json_covers_phase1(self, capsys):
        import json

        assert main([
            "explain", "--topology", "clique", "--n", "8", "--json",
            "--phases", "TBNmcP,TBCnaiveP",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["phases"]) == 2
        assert payload["decisions"]
        for decision in payload["decisions"]:
            assert decision["verdict"] and decision["reason"]
        assert payload["ledger"]

    def test_explain_from_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "optimize", "--topology", "chain", "--n", "6",
            "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["explain", "--from-trace", str(trace)]) == 0
        assert "expression" in capsys.readouterr().out

    def test_explain_missing_trace_fails_cleanly(self, capsys):
        assert main(["explain", "--from-trace", "/nonexistent.jsonl"]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_explain_single_phase_rejected(self, capsys):
        assert main([
            "explain", "--topology", "chain", "--n", "5",
            "--phases", "TBNmc",
        ]) == 2
        assert "two" in capsys.readouterr().err


class TestOutPathCreation:
    """--*-out options create missing parent directories up front."""

    def test_optimize_trace_out_nested_dir(self, capsys, tmp_path):
        path = tmp_path / "missing" / "dirs" / "trace.jsonl"
        assert main([
            "optimize", "--topology", "chain", "--n", "5",
            "--trace-out", str(path),
        ]) == 0
        assert path.read_text().strip()

    def test_trace_out_nested_dir(self, capsys, tmp_path):
        path = tmp_path / "a" / "b" / "trace.jsonl"
        assert main([
            "trace", "--topology", "chain", "--n", "5", "--out", str(path),
        ]) == 0
        assert path.read_text().strip()

    def test_uncreatable_dir_fails_with_status_2(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory\n")
        code = main([
            "optimize", "--topology", "chain", "--n", "5",
            "--trace-out", str(blocker / "sub" / "trace.jsonl"),
        ])
        assert code == 2
        assert "cannot create directory" in capsys.readouterr().err


class TestParallelCli:
    def _cost_of(self, capsys, argv):
        import json

        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_workers_flag_matches_serial_on_clique8(self, capsys):
        base = ["optimize", "--topology", "clique", "--n", "8",
                "--seed", "42", "--json"]
        serial = self._cost_of(capsys, base)
        parallel = self._cost_of(capsys, base + ["--workers", "2"])
        assert parallel["cost"] == serial["cost"]
        assert parallel["plan"] == serial["plan"]
        assert parallel["parallel"]["workers"] == 2
        assert parallel["parallel"]["tasks"] > 0
        assert "parallel" not in serial

    def test_at_suffix_algorithm_name(self, capsys):
        payload = self._cost_of(
            capsys,
            ["optimize", "--algorithm", "mincutlazy@2", "--topology",
             "star", "--n", "7", "--json"],
        )
        assert payload["parallel"]["workers"] == 2

    def test_fork_policy_flag(self, capsys):
        base = ["optimize", "--algorithm", "TBNmcA", "--topology", "clique",
                "--n", "7", "--json"]
        serial = self._cost_of(capsys, base)
        subtree = self._cost_of(
            capsys, base + ["--workers", "2", "--fork-policy", "subtree"]
        )
        assert subtree["cost"] == serial["cost"]
        assert subtree["parallel"]["policy"] == "subtree"

    def test_worker_trace_dir(self, tmp_path, capsys):
        payload = self._cost_of(
            capsys,
            ["optimize", "--topology", "chain", "--n", "6", "--json",
             "--workers", "2", "--worker-trace-dir", str(tmp_path)],
        )
        traces = payload["parallel"]["worker_traces"]
        assert len(traces) == 2
        for trace in traces:
            assert (tmp_path / trace.split("/")[-1]).exists()


class TestMemoCli:
    """The --memo-* optimize flags and the profile-memo subcommand."""

    def _json_of(self, capsys, argv):
        import json

        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_memo_flags_parse(self):
        args = build_parser().parse_args([
            "optimize", "--memo-policy", "cost", "--memo-capacity", "64",
            "--memo-cold-capacity", "32", "--memo-profile", "p.json",
        ])
        assert args.memo_policy == "cost"
        assert args.memo_capacity == 64
        assert args.memo_cold_capacity == 32
        assert args.memo_profile == "p.json"

    def test_memo_policy_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "--memo-policy", "random"])

    def test_json_memo_block(self, capsys):
        payload = self._json_of(capsys, [
            "optimize", "--topology", "star", "--n", "6", "--seed", "5",
            "--memo-policy", "cost", "--memo-capacity", "10", "--json",
        ])
        memo = payload["memo"]
        assert memo["policy"] == "cost"
        assert memo["capacity"] == 10
        assert memo["occupancy"] <= 10
        assert memo["evictions"] > 0
        for field in ("hits", "misses", "demotions", "cold_hits",
                      "shared_hits", "recompute_cost_saved"):
            assert field in memo

    def test_bounded_memo_matches_unbounded_cost(self, capsys):
        base = ["optimize", "--topology", "clique", "--n", "6",
                "--seed", "5", "--json"]
        unbounded = self._json_of(capsys, base)
        bounded = self._json_of(capsys, base + [
            "--memo-policy", "cost", "--memo-capacity", "8",
            "--memo-cold-capacity", "8",
        ])
        assert bounded["cost"] == unbounded["cost"]
        assert bounded["plan"] == unbounded["plan"]
        assert bounded["memo"]["demotions"] > 0

    def test_text_mode_prints_memo_line(self, capsys):
        assert main([
            "optimize", "--topology", "star", "--n", "6",
            "--memo-policy", "lru", "--memo-capacity", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "memo: lru policy, capacity 8" in out

    def test_memo_suffix_on_algorithm_name(self, capsys):
        payload = self._json_of(capsys, [
            "optimize", "--algorithm", "TBNmc%cost:16", "--topology",
            "star", "--n", "6", "--json",
        ])
        assert payload["memo"]["policy"] == "cost"
        assert payload["memo"]["capacity"] == 16

    def test_bad_profile_path_fails_cleanly(self, capsys):
        code = main([
            "optimize", "--memo-policy", "profile",
            "--memo-profile", "/nonexistent/profile.json",
        ])
        assert code == 2
        assert "cannot load memo profile" in capsys.readouterr().err

    def test_profile_memo_roundtrip(self, capsys, tmp_path):
        out = str(tmp_path / "profile.json")
        assert main([
            "profile-memo", "--topology", "star", "--n", "6",
            "--seed", "5", "--out", out,
        ]) == 0
        message = capsys.readouterr().out
        assert "profile:" in message and out in message
        payload = self._json_of(capsys, [
            "optimize", "--topology", "star", "--n", "6", "--seed", "5",
            "--memo-policy", "profile", "--memo-capacity", "10",
            "--memo-profile", out, "--json",
        ])
        assert payload["memo"]["policy"] == "profile"
        assert payload["cost"] > 0

    def test_profile_memo_from_trace(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        out = str(tmp_path / "profile.json")
        assert main([
            "optimize", "--topology", "chain", "--n", "5",
            "--trace-out", trace,
        ]) == 0
        capsys.readouterr()
        assert main([
            "profile-memo", "--from-trace", trace, "--metric", "time",
            "--out", out,
        ]) == 0
        import json

        payload = json.load(open(out, encoding="utf-8"))
        assert payload["metric"] == "time"
        assert payload["weights"]

    def test_profile_memo_missing_trace_fails(self, capsys, tmp_path):
        code = main([
            "profile-memo", "--from-trace", "/nonexistent.jsonl",
            "--out", str(tmp_path / "p.json"),
        ])
        assert code == 2
        assert "cannot build profile" in capsys.readouterr().err
