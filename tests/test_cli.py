"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize"])
        assert args.algorithm == "TBNmc"
        assert args.topology == "star"
        assert args.n == 8

    def test_experiment_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig2", "--scale", "huge"])


class TestCommands:
    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "TBNmc" in out and "BBNccp" in out and "top-down" in out

    def test_optimize_prints_plan(self, capsys):
        code = main([
            "optimize", "--algorithm", "TBNmcP", "--topology", "chain",
            "--n", "5", "--seed", "3", "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cost:" in out
        assert "scan(" in out
        assert "counters:" in out

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "fig4", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Clique" in out and "completed" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_optimize_with_dsl_query(self, capsys):
        code = main([
            "optimize", "--query", "a(1000) b(500) c(20); a-b:0.01 b-c:0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "n=3" in out and "scan(a)" in out

    def test_run_executes_plan(self, capsys):
        code = main([
            "run", "--query", "a(1000) b(500); a-b:0.05", "--rows", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "result:" in out and "plan (TBNmc)" in out

    def test_run_generated_topology(self, capsys):
        assert main(["run", "--topology", "chain", "--n", "4", "--rows", "12"]) == 0
        assert "result:" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_optimize_json(self, capsys):
        import json

        code = main([
            "optimize", "--algorithm", "TBNmc", "--topology", "chain",
            "--n", "5", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "TBNmc"
        assert payload["cost"] > 0
        assert payload["elapsed_ms"] > 0
        assert payload["metrics"]["memo_lookups"] > 0
        assert payload["instruments"]["time_between_joins_us"]["count"] > 0

    def test_optimize_trace_out_span_count(self, capsys, tmp_path):
        """The ISSUE acceptance: spans == memoized expressions explored."""
        import json

        from repro.registry import make_optimizer
        from repro.workloads import clique
        from repro.workloads.weights import weighted_query

        path = tmp_path / "t.jsonl"
        code = main([
            "optimize", "--algorithm", "mincutlazy", "--topology", "clique",
            "--n", "6", "--trace-out", str(path),
        ])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        spans = [json.loads(line) for line in path.read_text().splitlines()]
        optimizer = make_optimizer("TBNmc", weighted_query(clique(6), 42))
        optimizer.optimize()
        assert len(spans) == optimizer.memo.populated_cells()

    def test_trace_command(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main([
            "trace", "--algorithm", "mincutlazy", "--topology", "chain",
            "--n", "5", "--out", str(path), "--max-depth", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert "summary:" in out
        assert "[mc]" in out
        assert path.read_text().strip()

    def test_trace_alias_accepted(self, capsys):
        assert main(["trace", "--algorithm", "dpccp", "--topology",
                     "chain", "--n", "4"]) == 0
        assert "optimize" in capsys.readouterr().out


class TestParallelCli:
    def _cost_of(self, capsys, argv):
        import json

        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_workers_flag_matches_serial_on_clique8(self, capsys):
        base = ["optimize", "--topology", "clique", "--n", "8",
                "--seed", "42", "--json"]
        serial = self._cost_of(capsys, base)
        parallel = self._cost_of(capsys, base + ["--workers", "2"])
        assert parallel["cost"] == serial["cost"]
        assert parallel["plan"] == serial["plan"]
        assert parallel["parallel"]["workers"] == 2
        assert parallel["parallel"]["tasks"] > 0
        assert "parallel" not in serial

    def test_at_suffix_algorithm_name(self, capsys):
        payload = self._cost_of(
            capsys,
            ["optimize", "--algorithm", "mincutlazy@2", "--topology",
             "star", "--n", "7", "--json"],
        )
        assert payload["parallel"]["workers"] == 2

    def test_fork_policy_flag(self, capsys):
        base = ["optimize", "--algorithm", "TBNmcA", "--topology", "clique",
                "--n", "7", "--json"]
        serial = self._cost_of(capsys, base)
        subtree = self._cost_of(
            capsys, base + ["--workers", "2", "--fork-policy", "subtree"]
        )
        assert subtree["cost"] == serial["cost"]
        assert subtree["parallel"]["policy"] == "subtree"

    def test_worker_trace_dir(self, tmp_path, capsys):
        payload = self._cost_of(
            capsys,
            ["optimize", "--topology", "chain", "--n", "6", "--json",
             "--workers", "2", "--worker-trace-dir", str(tmp_path)],
        )
        traces = payload["parallel"]["worker_traces"]
        assert len(traces) == 2
        for trace in traces:
            assert (tmp_path / trace.split("/")[-1]).exists()
