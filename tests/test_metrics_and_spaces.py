"""Tests for the Metrics counters, PlanSpace descriptors, and the
eviction-policy extension of the memo table."""

import pytest

from repro.analysis.metrics import Metrics
from repro.catalog import Query
from repro.cost.io_model import CostModel
from repro.memo import MemoTable
from repro.spaces import PlanSpace
from repro.workloads import chain


class TestMetrics:
    def test_expansion_tracking(self):
        m = Metrics()
        m.note_expansion((0b11, None))
        m.note_expansion((0b11, None))
        m.note_expansion((0b110, None))
        m.note_expansion((0b11, 0))  # different order: a new expression
        assert m.expressions_expanded == 4
        assert m.expressions_reexpanded == 1
        assert m.unique_expressions_expanded == 3

    def test_as_dict_excludes_private(self):
        d = Metrics().as_dict()
        assert "unique_expressions_expanded" in d
        assert not any(k.startswith("_") for k in d)

    def test_merge_adds_counters(self):
        a, b = Metrics(), Metrics()
        a.memo_hits = 2
        b.memo_hits = 5
        a.peak_memo_cells = 10
        b.peak_memo_cells = 4
        a.note_expansion((1, None))
        b.note_expansion((1, None))
        b.note_expansion((2, None))
        a.merge(b)
        assert a.memo_hits == 7
        assert a.peak_memo_cells == 10  # max, not sum
        assert a.unique_expressions_expanded == 2


class TestPlanSpace:
    def test_describe(self):
        assert PlanSpace.bushy_cp_free().describe() == "bushy CP-free"
        assert PlanSpace.left_deep_with_cp().describe() == "left-deep with CPs"

    def test_flags(self):
        s = PlanSpace.left_deep_cp_free()
        assert s.is_left_deep
        assert not s.allows_cartesian_products
        t = PlanSpace.bushy_with_cp()
        assert not t.is_left_deep
        assert t.allows_cartesian_products


class TestEvictionPolicies:
    @pytest.fixture
    def query(self):
        return Query.uniform(chain(5), cardinality=100, selectivity=0.1)

    def scan(self, query, v):
        [plan] = CostModel().scan_plans(query, 1 << v, None)
        return plan

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MemoTable(capacity=4, policy="random")

    def test_smallest_policy_evicts_singletons_first(self, query):
        memo = MemoTable(capacity=2, policy="smallest")
        model = CostModel()
        big = model.build_join(
            query, model.JOIN_METHODS[1], self.scan(query, 0), self.scan(query, 1)
        )
        memo.store_plan(query, big.vertices, None, big)
        memo.store_plan(query, 1, None, self.scan(query, 0))
        # Adding a third cell evicts the singleton, not the join.
        memo.store_plan(query, 2, None, self.scan(query, 1))
        assert memo.get(query, big.vertices, None) is not None
        assert memo.get(query, 1, None) is None

    def test_lru_policy_evicts_oldest(self, query):
        memo = MemoTable(capacity=2, policy="lru")
        model = CostModel()
        big = model.build_join(
            query, model.JOIN_METHODS[1], self.scan(query, 0), self.scan(query, 1)
        )
        memo.store_plan(query, big.vertices, None, big)
        memo.store_plan(query, 1, None, self.scan(query, 0))
        memo.store_plan(query, 2, None, self.scan(query, 1))
        # LRU evicts the join (stored first), keeping both singletons.
        assert memo.get(query, big.vertices, None) is None
        assert memo.get(query, 1, None) is not None

    def test_policies_listed(self):
        assert MemoTable.POLICIES == ("lru", "smallest", "cost", "profile")
