"""Tests for the Table 1 algorithm registry."""

import pytest

from repro.bottomup import DPccp, DPsize, DPsub
from repro.enumerator import Bounding, TopDownEnumerator
from repro.registry import (
    available_algorithms,
    make_optimizer,
    optimize,
    parse_name,
)
from repro.spaces import PlanSpace
from repro.workloads import chain
from repro.workloads.weights import weighted_query


class TestParsing:
    def test_tbnmc(self):
        spec = parse_name("TBNmc")
        assert spec.top_down
        assert spec.space == PlanSpace.bushy_cp_free()
        assert spec.style == "mc"
        assert spec.bounding is Bounding.NONE
        assert spec.is_optimal_enumeration

    def test_case_insensitive(self):
        assert parse_name("tbnMC").space == parse_name("TBNmc").space

    def test_bounded_suffixes(self):
        assert parse_name("TLNmcA").bounding is Bounding.ACCUMULATED
        assert parse_name("TLNmcP").bounding is Bounding.PREDICTED
        assert parse_name("TLNmcAP").bounding == (
            Bounding.ACCUMULATED | Bounding.PREDICTED
        )

    def test_blnsize(self):
        spec = parse_name("BLNsize")
        assert not spec.top_down
        assert spec.space == PlanSpace.left_deep_cp_free()
        assert not spec.is_optimal_enumeration

    def test_bbcnaive_is_optimal(self):
        assert parse_name("BBCnaive").is_optimal_enumeration

    def test_rejections(self):
        for bad in [
            "XXNmc",        # bad direction
            "TBNfoo",       # bad style
            "BBNccpA",      # bounding on bottom-up
            "TBNccp",       # ccp is bottom-up only
            "BBNmc",        # mc is top-down only
            "TBCmc",        # mc needs CP-free
            "TBNsize",      # no top-down size-driven
            "BLNnaive",     # Table 1 has no bottom-up left-deep naive
        ]:
            with pytest.raises(ValueError):
                parse_name(bad)


class TestConstruction:
    def test_every_listed_algorithm_builds_and_runs(self):
        query = weighted_query(chain(4), 7)
        costs = {}
        for name in available_algorithms():
            optimizer = make_optimizer(name, query)
            plan = optimizer.optimize()
            spec = parse_name(name)
            costs.setdefault(spec.space.describe(), set()).add(round(plan.cost, 6))
        # Within each space every algorithm agrees on the optimum.
        for space, values in costs.items():
            assert len(values) == 1, (space, values)

    def test_types(self):
        query = weighted_query(chain(3), 1)
        assert isinstance(make_optimizer("TBNmc", query), TopDownEnumerator)
        assert isinstance(make_optimizer("BBNccp", query), DPccp)
        assert isinstance(make_optimizer("BBNnaive", query), DPsub)
        assert isinstance(make_optimizer("BLNsize", query), DPsize)

    def test_memo_rejected_for_bottom_up(self):
        from repro.memo import MemoTable

        query = weighted_query(chain(3), 1)
        with pytest.raises(ValueError):
            make_optimizer("BBNccp", query, memo=MemoTable())

    def test_optimize_convenience(self):
        query = weighted_query(chain(4), 7)
        plan = optimize("TBNmc", query)
        assert plan.cost == optimize("BBNccp", query).cost

    def test_optimize_initial_plan_requires_top_down(self):
        query = weighted_query(chain(3), 1)
        seed_plan = optimize("TBNmc", query)
        with pytest.raises(ValueError):
            optimize("BBNccp", query, initial_plan=seed_plan)
        assert optimize("TBNmcP", query, initial_plan=seed_plan).cost == seed_plan.cost
