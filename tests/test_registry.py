"""Tests for the Table 1 algorithm registry."""

import pytest

from repro.bottomup import DPccp, DPsize, DPsub
from repro.enumerator import Bounding, TopDownEnumerator
from repro.registry import (
    MemoSpec,
    available_algorithms,
    make_optimizer,
    optimize,
    parse_name,
    split_memo_policy,
)
from repro.spaces import PlanSpace
from repro.workloads import chain
from repro.workloads.weights import weighted_query


class TestParsing:
    def test_tbnmc(self):
        spec = parse_name("TBNmc")
        assert spec.top_down
        assert spec.space == PlanSpace.bushy_cp_free()
        assert spec.style == "mc"
        assert spec.bounding is Bounding.NONE
        assert spec.is_optimal_enumeration

    def test_case_insensitive(self):
        assert parse_name("tbnMC").space == parse_name("TBNmc").space

    def test_bounded_suffixes(self):
        assert parse_name("TLNmcA").bounding is Bounding.ACCUMULATED
        assert parse_name("TLNmcP").bounding is Bounding.PREDICTED
        assert parse_name("TLNmcAP").bounding == (
            Bounding.ACCUMULATED | Bounding.PREDICTED
        )

    def test_blnsize(self):
        spec = parse_name("BLNsize")
        assert not spec.top_down
        assert spec.space == PlanSpace.left_deep_cp_free()
        assert not spec.is_optimal_enumeration

    def test_bbcnaive_is_optimal(self):
        assert parse_name("BBCnaive").is_optimal_enumeration

    def test_rejections(self):
        for bad in [
            "XXNmc",        # bad direction
            "TBNfoo",       # bad style
            "BBNccpA",      # bounding on bottom-up
            "TBNccp",       # ccp is bottom-up only
            "BBNmc",        # mc is top-down only
            "TBCmc",        # mc needs CP-free
            "TBNsize",      # no top-down size-driven
            "BLNnaive",     # Table 1 has no bottom-up left-deep naive
        ]:
            with pytest.raises(ValueError):
                parse_name(bad)


class TestConstruction:
    def test_every_listed_algorithm_builds_and_runs(self):
        query = weighted_query(chain(4), 7)
        costs = {}
        for name in available_algorithms():
            optimizer = make_optimizer(name, query)
            plan = optimizer.optimize()
            spec = parse_name(name)
            costs.setdefault(spec.space.describe(), set()).add(round(plan.cost, 6))
        # Within each space every algorithm agrees on the optimum.
        for space, values in costs.items():
            assert len(values) == 1, (space, values)

    def test_types(self):
        query = weighted_query(chain(3), 1)
        assert isinstance(make_optimizer("TBNmc", query), TopDownEnumerator)
        assert isinstance(make_optimizer("BBNccp", query), DPccp)
        assert isinstance(make_optimizer("BBNnaive", query), DPsub)
        assert isinstance(make_optimizer("BLNsize", query), DPsize)

    def test_memo_rejected_for_bottom_up(self):
        from repro.memo import MemoTable

        query = weighted_query(chain(3), 1)
        with pytest.raises(ValueError):
            make_optimizer("BBNccp", query, memo=MemoTable())

    def test_optimize_convenience(self):
        query = weighted_query(chain(4), 7)
        plan = optimize("TBNmc", query)
        assert plan.cost == optimize("BBNccp", query).cost

    def test_optimize_initial_plan_requires_top_down(self):
        query = weighted_query(chain(3), 1)
        seed_plan = optimize("TBNmc", query)
        with pytest.raises(ValueError):
            optimize("BBNccp", query, initial_plan=seed_plan)
        assert optimize("TBNmcP", query, initial_plan=seed_plan).cost == seed_plan.cost


class TestMemoSpecParsing:
    """The ``%policy[:capacity[:cold]]`` memo-bounding grammar."""

    def test_plain_name_has_no_spec(self):
        assert split_memo_policy("TBNmc") == ("TBNmc", None)

    def test_policy_only(self):
        base, spec = split_memo_policy("TBNmc%cost")
        assert base == "TBNmc"
        assert spec == MemoSpec(policy="cost", capacity=None, cold_capacity=0)

    def test_policy_capacity_cold(self):
        _, spec = split_memo_policy("TBNmc%profile:64:32")
        assert spec == MemoSpec(policy="profile", capacity=64, cold_capacity=32)

    def test_workers_suffix_in_either_order(self):
        assert split_memo_policy("TBNmc@2%cost:64") == (
            "TBNmc@2", MemoSpec(policy="cost", capacity=64, cold_capacity=0)
        )
        assert split_memo_policy("TBNmc%cost:64@2") == (
            "TBNmc@2", MemoSpec(policy="cost", capacity=64, cold_capacity=0)
        )

    def test_policy_is_case_insensitive(self):
        _, spec = split_memo_policy("TBNmc%COST:8")
        assert spec.policy == "cost"

    def test_rejections(self):
        for bad in (
            "TBNmc%random",        # unknown policy
            "TBNmc%cost:abc",      # non-integer capacity
            "TBNmc%cost:-1",       # negative capacity
            "TBNmc%cost:8:x",      # non-integer cold capacity
            "TBNmc%cost:8:4:2",    # too many parts
        ):
            with pytest.raises(ValueError):
                split_memo_policy(bad)

    def test_alias_resolution_preserves_spec(self):
        from repro.registry import resolve_alias

        assert resolve_alias("mincutlazy%cost:64") == "TBNmc%cost:64"
        assert resolve_alias("mincutlazy%cost:64:32@2") == "TBNmc@2%cost:64:32"
        assert resolve_alias("parallel%lru:8") == "TBNmc@4%lru:8"

    def test_parse_name_ignores_spec(self):
        assert parse_name("TBNmc%cost:64").name == "TBNmc"
        assert parse_name("tbnmcap%profile").bounding is not None


class TestMemoConstruction:
    """make_optimizer wiring of the memo policy settings."""

    def test_suffix_builds_bounded_memo(self):
        query = weighted_query(chain(4), 1)
        optimizer = make_optimizer("TBNmc%cost:16:8", query)
        memo = optimizer.memo
        assert memo.policy == "cost"
        assert memo.capacity == 16
        assert memo.cold_capacity == 8

    def test_explicit_args_win_over_suffix(self):
        query = weighted_query(chain(4), 1)
        optimizer = make_optimizer(
            "TBNmc%lru:16", query, memo_policy="cost", memo_capacity=4
        )
        assert optimizer.memo.policy == "cost"
        assert optimizer.memo.capacity == 4

    def test_policy_without_capacity_is_unbounded(self):
        query = weighted_query(chain(4), 1)
        optimizer = make_optimizer("TBNmc", query, memo_policy="cost")
        assert optimizer.memo.capacity is None
        assert optimizer.memo.policy == "cost"

    def test_prebuilt_memo_conflicts_with_config(self):
        from repro.memo import MemoTable

        query = weighted_query(chain(4), 1)
        with pytest.raises(ValueError, match="not both"):
            make_optimizer(
                "TBNmc", query, memo=MemoTable(), memo_policy="cost"
            )

    def test_memo_policy_rejected_for_bottom_up(self):
        query = weighted_query(chain(4), 1)
        with pytest.raises(ValueError, match="top-down"):
            make_optimizer("BBNccp", query, memo_policy="cost")

    def test_global_cache_attaches_as_shared_tier(self):
        from repro.memo import GlobalPlanCache

        query = weighted_query(chain(4), 1)
        cache = GlobalPlanCache()
        optimizer = make_optimizer("TBNmc", query, global_cache=cache)
        assert optimizer.memo.shared is cache

    def test_profile_attaches(self):
        from repro.cache.costing import CostProfile

        query = weighted_query(chain(4), 1)
        profile = CostProfile()
        optimizer = make_optimizer(
            "TBNmc", query, memo_policy="profile", memo_capacity=8,
            memo_profile=profile,
        )
        assert optimizer.memo.profile is profile

    def test_spec_runs_optimally(self):
        query = weighted_query(chain(6), 3)
        best = make_optimizer("TBNmc", query).optimize()
        plan = make_optimizer("TBNmc%cost:8:4@2", query).optimize()
        assert plan.cost == best.cost
