"""Tests for the conformance subsystem itself.

Three things have to hold for ``repro verify`` to be trustworthy:

* the invariant checkers pass on the known-correct implementation
  (battery, closed forms, fuzz smoke);
* they *fail* — and the fuzzer shrinks the failure to a minimal
  reproducer — when handed an intentionally broken strategy;
* the committed regression corpus under ``tests/corpus/`` replays clean.
"""

import json

import pytest

from repro.analysis.counting import ono_lohman_connected_subgraphs
from repro.cli import main as cli_main
from repro.conformance import (
    brute_force_articulation,
    check_ccp_closed_forms,
    check_cut_minimality,
    check_partition_completeness,
    connected_subsets,
    fuzz,
    is_minimal_cut,
    replay_corpus,
    run_invariants,
    shrink,
)
from repro.conformance.fuzz import generate_cases
from repro.conformance.invariants import standard_battery
from repro.conformance.optimality import fit_loglog_slope, measure_optimality
from repro.core.bitset import iter_bits, lowest_bit
from repro.core.joingraph import JoinGraph
from repro.partition import MinCutLazy
from repro.registry import conformance_matrix

from tests.helpers import make_graph, make_query, small_graphs

CORPUS_DIR = "tests/corpus"


class TestOracles:
    def test_connected_subsets_chain(self):
        g = make_graph("chain", 4)
        assert len(list(connected_subsets(g))) == 4 * 5 // 2

    def test_is_minimal_cut_chain(self):
        g = make_graph("chain", 4)
        full = g.all_vertices
        assert is_minimal_cut(g, full, 0b0011, 0b1100)
        # {0,2} vs {1,3} crosses three edges; dropping 1-2 still cuts.
        assert not is_minimal_cut(g, full, 0b0101, 0b1010)

    def test_brute_force_articulation_star(self):
        g = make_graph("star", 5)
        assert brute_force_articulation(g, g.all_vertices) == 1  # the hub


class TestInvariants:
    @pytest.mark.parametrize("topology", ["chain", "star", "cycle", "clique"])
    def test_clean_on_canonical_graphs(self, topology):
        g = make_graph(topology, 5)
        assert run_invariants(g, make_query(topology, 5, 5)) == []

    def test_clean_on_small_graph_zoo(self):
        for g in small_graphs():
            if 2 <= g.n <= 6:
                assert check_partition_completeness(g) == []
                assert check_cut_minimality(g) == []

    @pytest.mark.parametrize("topology", ["chain", "star", "cycle", "clique"])
    def test_closed_forms_to_n10(self, topology):
        """The acceptance bar: MinCutLazy and DPccp both hit the Ono–Lohman
        counts, and the top-down memo hits the csg counts, up to n = 10."""
        assert check_ccp_closed_forms(
            topologies=(topology,), max_n=10, algorithms=("TBNmc", "BBNccp")
        ) == []

    def test_csg_closed_form_values(self):
        assert ono_lohman_connected_subgraphs("chain", 10) == 55
        assert ono_lohman_connected_subgraphs("star", 5) == 20
        assert ono_lohman_connected_subgraphs("cycle", 5) == 21
        assert ono_lohman_connected_subgraphs("clique", 5) == 31

    def test_unknown_invariant_rejected(self):
        g = make_graph("chain", 4)
        with pytest.raises(ValueError, match="unknown invariants"):
            run_invariants(g, None, ("no-such-check",))

    def test_matrix_covers_every_space(self):
        matrix = conformance_matrix()
        assert set(matrix) == {
            "bushy-cp-free",
            "left-deep-cp-free",
            "bushy-with-cp",
            "left-deep-with-cp",
        }
        flat = [name for group in matrix.values() for name in group]
        assert any("@" in name for name in flat)  # parallel workers
        assert any("%cost" in name for name in flat)  # memo policies
        assert any(name.endswith("AP") for name in flat)  # both boundings


class _BrokenMinCut(MinCutLazy):
    """MinCutLazy that silently drops every cut isolating the lowest vertex.

    On any graph this loses real partitions (incompleteness), which the
    checker must flag and the shrinker must reduce to a minimal graph.
    """

    def partitions(self, graph, subset, metrics):
        for left, right in super().partitions(graph, subset, metrics):
            if left == lowest_bit(subset) or right == lowest_bit(subset):
                continue
            yield left, right


class TestBrokenStrategyIsCaught:
    def test_completeness_flags_dropped_cuts(self):
        g = make_graph("chain", 5)
        violations = check_partition_completeness(g, [_BrokenMinCut()])
        assert violations
        assert all(v.invariant == "partition-complete" for v in violations)
        assert "missing" in violations[0].detail

    def test_shrink_reduces_to_minimal_reproducer(self):
        """The fuzzer's shrinker must walk a big failing graph down to the
        smallest graph that still fails: for _BrokenMinCut, any connected
        2-vertex graph (its single cut isolates the lowest vertex)."""
        g = make_graph("random-cyclic", 8, 3)

        def failing(candidate):
            return check_partition_completeness(candidate, [_BrokenMinCut()])

        assert failing(g)
        reproducer, violations = shrink(g, failing)
        assert violations
        assert reproducer.n == 2
        assert len(reproducer.edges) == 1

    def test_shrink_requires_failing_input(self):
        g = make_graph("chain", 3)
        with pytest.raises(ValueError, match="failing input"):
            shrink(g, lambda candidate: [])


class TestFuzz:
    def test_cases_are_deterministic(self):
        assert generate_cases(10, seed=99) == generate_cases(10, seed=99)
        assert generate_cases(10, seed=99) != generate_cases(10, seed=100)

    def test_smoke_run_is_clean(self):
        report = fuzz(5, seed=7, n_range=(4, 6))
        assert report.cases == 5
        assert report.ok
        assert report.to_dict()["violations"] == []

    @pytest.mark.fuzz
    def test_long_run_is_clean(self):
        report = fuzz(50)
        assert report.cases == 50
        assert report.ok

    def test_fuzz_shrinks_and_saves_reproducer(self, tmp_path, monkeypatch):
        """End-to-end: a violation found by the driver lands in the corpus
        directory as a shrunk, content-addressed reproducer."""
        import importlib

        fuzz_module = importlib.import_module("repro.conformance.fuzz")

        def broken_check(graph, query_seed, invariants, matrix, oracle_max_n,
                         profile="uniform"):
            return check_partition_completeness(graph, [_BrokenMinCut()])

        monkeypatch.setattr(fuzz_module, "_check_graph", broken_check)
        report = fuzz_module.fuzz(1, seed=1, corpus_dir=str(tmp_path))
        assert not report.ok
        assert len(report.corpus_paths) == 1
        entry = json.loads((tmp_path / report.corpus_paths[0].split("/")[-1]).read_text())
        assert entry["n"] == 2
        assert entry["violations"]

    def test_corpus_replays_clean(self):
        violations = replay_corpus(CORPUS_DIR)
        assert violations == []

    def test_corpus_is_committed_and_nonempty(self):
        from repro.conformance.fuzz import load_corpus

        entries = load_corpus(CORPUS_DIR)
        assert len(entries) >= 4
        for _path, entry in entries:
            assert entry["schema"] == 1
            assert entry["n"] >= 2


class TestOptimality:
    def test_fit_recovers_known_slopes(self):
        sizes = [4, 8, 16, 32]
        assert fit_loglog_slope(sizes, [n**2 for n in sizes]) == pytest.approx(2.0)
        assert fit_loglog_slope(sizes, [5.0 * n for n in sizes]) == pytest.approx(1.0)
        assert fit_loglog_slope([4], [1.0]) != fit_loglog_slope([4], [1.0])  # NaN

    def test_small_sweep_passes_gate(self):
        report = measure_optimality(
            algorithms=("TBNmc",), topologies=("chain",), repeats=1
        )
        assert report.ok
        assert all(row["joins_costed"] > 0 for row in report.rows)
        [fit] = [f for f in report.fits if f["gated"]]
        assert fit["work_per_join_slope"] < 1.3


class TestVerifyCli:
    def test_verify_battery_json(self, capsys):
        code = cli_main(
            ["verify", "--invariant", "cut-minimal", "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["ok"]
        assert report["battery"]["invariants"] == ["cut-minimal"]

    def test_verify_fuzz_and_corpus(self, capsys):
        code = cli_main(
            [
                "verify", "--invariant", "partition-complete",
                "--fuzz", "3", "--corpus", CORPUS_DIR, "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["fuzz"]["cases"] == 3
        assert report["corpus"]["violations"] == []

    def test_verify_rejects_unknown_invariant(self, capsys):
        assert cli_main(["verify", "--invariant", "bogus"]) == 2
        assert "unknown invariants" in capsys.readouterr().err

    def test_verify_rejects_negative_fuzz(self, capsys):
        assert cli_main(["verify", "--fuzz", "-1"]) == 2
