"""Tests for the execution engine: operator semantics, data generation,
and the end-to-end invariant that every optimizer's plan for the same
query executes to the same result set."""

import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Query
from repro.cost.io_model import CostModel
from repro.exec import ExecutionEngine, execute_plan, generate_database
from repro.exec.datagen import SyntheticDatabase
from repro.registry import make_optimizer
from repro.workloads import chain, cycle, random_connected_graph, star
from repro.workloads.weights import weighted_query


@pytest.fixture
def db():
    query = Query.uniform(chain(3), cardinality=30, selectivity=0.25)
    return generate_database(query, rng=7, max_rows=30)


class TestDataGeneration:
    def test_row_counts_scaled(self):
        query = Query.uniform(star(4), cardinality=1000)
        db = generate_database(query, rng=1, max_rows=50)
        assert all(db.row_count(v) == 50 for v in range(4))

    def test_relative_sizes_preserved(self):
        from repro.catalog import Catalog

        cat = Catalog()
        cat.add_relation("big", 1000)
        cat.add_relation("small", 250)
        cat.add_predicate(0, 1, 0.1)
        db = generate_database(Query.from_catalog(cat), rng=1, max_rows=40)
        assert db.row_count(0) == 40
        assert db.row_count(1) == 10

    def test_key_columns_present(self, db):
        assert all("k_0_1" in row for row in db.tables[0])
        assert all("k_0_1" in row and "k_1_2" in row for row in db.tables[1])

    def test_domains_track_selectivity(self, db):
        assert db.domains[(0, 1)] == 4  # 1 / 0.25

    def test_domain_cap(self):
        query = Query.uniform(chain(2), selectivity=1e-9)
        db = generate_database(query, rng=1, max_domain=100)
        assert db.domains[(0, 1)] == 100

    def test_rids_unique(self, db):
        rids = [row["_rids"] for table in db.tables for row in table]
        assert len(rids) == len(set(rids))

    def test_determinism(self):
        query = Query.uniform(cycle(4))
        a = generate_database(query, rng=9)
        b = generate_database(query, rng=9)
        assert a.tables == b.tables

    def test_validation(self):
        query = Query.uniform(chain(2))
        with pytest.raises(ValueError):
            generate_database(query, max_rows=1, min_rows=5)

    def test_realized_selectivity_near_target(self):
        """Matching pair fraction approximates the predicate selectivity."""
        query = Query.uniform(chain(2), cardinality=500, selectivity=0.1)
        db = generate_database(query, rng=13, max_rows=500)
        matches = sum(
            1
            for l, r in product(db.tables[0], db.tables[1])
            if l["k_0_1"] == r["k_0_1"]
        )
        realized = matches / (db.row_count(0) * db.row_count(1))
        assert 0.05 < realized < 0.2


class TestOperators:
    def brute_force_join(self, db, vertices):
        """Reference result: filter the cross product of base tables."""
        query = db.query
        members = [v for v in range(query.n) if vertices >> v & 1]
        result = []
        for combo in product(*(db.tables[v] for v in members)):
            ok = True
            for (u, v) in query.selectivity:
                if vertices >> u & 1 and vertices >> v & 1:
                    col = SyntheticDatabase.key_column(u, v)
                    row_u = combo[members.index(u)]
                    row_v = combo[members.index(v)]
                    if row_u[col] != row_v[col]:
                        ok = False
                        break
            if ok:
                result.append(frozenset().union(*(r["_rids"] for r in combo)))
        return frozenset(result)

    @pytest.mark.parametrize("method_index,op", [(0, "bnl"), (1, "hash"), (2, "smj")])
    def test_each_join_method_correct(self, db, method_index, op):
        query = db.query
        model = CostModel()
        [left] = model.scan_plans(query, 0b001, None)
        [right] = model.scan_plans(query, 0b010, None)
        plan = model.build_join(query, model.JOIN_METHODS[method_index], left, right)
        assert plan.op == op
        engine = ExecutionEngine(db)
        assert engine.result_signature(plan) == self.brute_force_join(db, 0b011)

    def test_cartesian_product_execution(self, db):
        query = db.query
        model = CostModel()
        [left] = model.scan_plans(query, 0b001, None)
        [right] = model.scan_plans(query, 0b100, None)
        for method in model.JOIN_METHODS:
            plan = model.build_join(query, method, left, right)
            rows = execute_plan(plan, db)
            assert len(rows) == db.row_count(0) * db.row_count(2)

    def test_sort_operator(self, db):
        query = db.query
        model = CostModel()
        [scan] = model.scan_plans(query, 0b001, None)
        plan = model.build_sort(query, scan, order=0)
        rows = execute_plan(plan, db)
        values = [row["k_0_1"] for row in rows]
        assert values == sorted(values)
        assert len(rows) == db.row_count(0)

    def test_unknown_operator_rejected(self, db):
        from repro.plans.physical import Plan

        bogus = Plan(op="teleport", vertices=1, cost=0.0, cardinality=1.0)
        with pytest.raises(ValueError):
            execute_plan(bogus, db)


class TestCrossAlgorithmEquivalence:
    """The capstone invariant: every optimizer's plan executes to the
    same result set, whatever its shape or space."""

    ALGORITHMS = [
        "TBNmc", "TLNmc", "BBNccp", "BLNsize", "TBCnaive", "BBCnaive",
        "TBNmcP", "TLNmcA",
    ]

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_all_plans_equivalent(self, seed):
        graph = random_connected_graph(5, 0.3, seed)
        query = Query.uniform(graph, cardinality=40, selectivity=0.2)
        db = generate_database(query, rng=seed, max_rows=12)
        engine = ExecutionEngine(db)
        signatures = set()
        for name in self.ALGORITHMS:
            plan = make_optimizer(name, query).optimize()
            signatures.add(engine.result_signature(plan))
        assert len(signatures) == 1

    def test_weighted_query_equivalence(self):
        query = weighted_query(star(5), 3)
        db = generate_database(query, rng=3, max_rows=20)
        engine = ExecutionEngine(db)
        signatures = {
            engine.result_signature(make_optimizer(name, query).optimize())
            for name in self.ALGORITHMS
        }
        assert len(signatures) == 1

    def test_result_size_tracks_estimate_direction(self):
        """With calibrated data, larger estimated results execute larger."""
        small = Query.uniform(chain(3), cardinality=60, selectivity=0.02)
        large = Query.uniform(chain(3), cardinality=60, selectivity=0.5)
        rows = {}
        for label, query in (("small", small), ("large", large)):
            db = generate_database(query, rng=21, max_rows=60)
            plan = make_optimizer("TBNmc", query).optimize()
            rows[label] = len(execute_plan(plan, db))
        assert rows["large"] > rows["small"]
