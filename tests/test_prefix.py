"""Tests for prefix search (Section 2.3, the SQL Anywhere approach)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plans import validate_plan
from repro.prefix import PrefixSearchOptimizer
from repro.registry import make_optimizer
from repro.spaces import PlanSpace
from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import weighted_query


class TestAdmissibleMode:
    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=15, deadline=None)
    def test_cp_free_optimal(self, seed):
        query = weighted_query(random_connected_graph(7, 0.3, seed), seed)
        plan = PrefixSearchOptimizer(query).optimize()
        reference = make_optimizer("TLNmc", query).optimize()
        assert plan.cost == pytest.approx(reference.cost)
        validate_plan(plan, query, PlanSpace.left_deep_cp_free())

    def test_with_cp_optimal(self):
        for seed in range(4):
            query = weighted_query(random_connected_graph(6, 0.3, seed), seed)
            plan = PrefixSearchOptimizer(query, cp_free=False).optimize()
            reference = make_optimizer("TLCnaive", query).optimize()
            assert plan.cost == pytest.approx(reference.cost)
            validate_plan(plan, query, PlanSpace.left_deep_with_cp())

    def test_single_relation(self):
        query = weighted_query(chain(1), 0)
        assert PrefixSearchOptimizer(query).optimize().is_scan

    def test_orders_unsupported(self):
        query = weighted_query(chain(3), 0)
        with pytest.raises(NotImplementedError):
            PrefixSearchOptimizer(query).optimize(order=0)


class TestAggressiveMode:
    def test_invalid_factor(self):
        query = weighted_query(chain(3), 0)
        with pytest.raises(ValueError):
            PrefixSearchOptimizer(query, aggressiveness=0.5)

    def test_prunes_more_and_never_beats_optimum(self):
        query = weighted_query(star(9), 5)
        exact = PrefixSearchOptimizer(query)
        exact_plan = exact.optimize()
        aggressive = PrefixSearchOptimizer(query, aggressiveness=2.0)
        aggressive_plan = aggressive.optimize()
        assert aggressive.prefixes_explored < exact.prefixes_explored
        assert aggressive_plan.cost >= exact_plan.cost - 1e-9
        validate_plan(aggressive_plan, query, PlanSpace.left_deep_cp_free())

    def test_extreme_aggressiveness_still_returns_a_plan(self):
        query = weighted_query(star(8), 5)
        optimizer = PrefixSearchOptimizer(query, aggressiveness=100.0)
        plan = optimizer.optimize()
        validate_plan(plan, query, PlanSpace.left_deep_cp_free())

    def test_quality_degrades_monotonically_in_samples(self):
        """Across seeds, higher aggressiveness can only lose (or tie)."""
        worse = 0
        for seed in range(6):
            query = weighted_query(random_connected_graph(7, 0.2, seed), seed)
            exact = PrefixSearchOptimizer(query).optimize()
            rough = PrefixSearchOptimizer(query, aggressiveness=4.0).optimize()
            assert rough.cost >= exact.cost - 1e-9
            if rough.cost > exact.cost * (1 + 1e-9):
                worse += 1
        # Aggressive pruning usually costs something somewhere.
        assert worse >= 0  # informational; strict loss is workload-dependent


class TestEffortAccounting:
    def test_memory_is_prefix_only(self):
        """No memo: the optimizer exposes no table, only counters."""
        query = weighted_query(chain(6), 3)
        optimizer = PrefixSearchOptimizer(query)
        optimizer.optimize()
        assert not hasattr(optimizer, "memo")
        assert optimizer.prefixes_explored > 0

    def test_factorial_growth_without_pruning_pressure(self):
        """On stars (every leaf joined to the hub) the CP-free prefix tree
        is large; pruning keeps the explored count far below n!."""
        import math

        query = weighted_query(star(8), 3)
        optimizer = PrefixSearchOptimizer(query)
        optimizer.optimize()
        assert optimizer.prefixes_explored < math.factorial(8)
        assert optimizer.prefixes_pruned > 0
