"""Tests for the skewed weight profiles and their fuzzer integration.

The contract: ``uniform`` reproduces the paper's Section 4.3 calibration
bit-for-bit, every profile is deterministic from ``(graph, profile,
seed)``, the skewed profiles actually skew, and the conformance fuzzer
threads profiles through case generation, corpus entries, and replay
without perturbing the pre-profile random streams.
"""

import json
import math

import pytest

from repro.cli import main as cli_main
from repro.conformance.fuzz import corpus_entry, generate_cases, replay_corpus
from repro.workloads import (
    PROFILES,
    clique,
    random_connected_graph,
    skewed_query,
    skewed_workload,
)
from repro.workloads.skewed import HEAVY_TAIL_MAX_EXPONENT
from repro.workloads.weights import generate_weights


class TestProfiles:
    def test_catalog(self):
        assert PROFILES == (
            "uniform", "bimodal-selectivity", "heavy-tail-cardinality"
        )

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            skewed_workload(clique(4), "zipf")

    def test_uniform_matches_paper_calibration_exactly(self):
        """Same seed, same draws: ``uniform`` must be byte-identical to
        generate_weights, so pre-profile reproducers stay valid."""
        g = random_connected_graph(7, 0.4, 11)
        ours = skewed_workload(g, "uniform", 99)
        paper = generate_weights(g, 99)
        assert ours.cardinality_exponents == paper.cardinality_exponents
        assert ours.query.selectivity == paper.query.selectivity

    @pytest.mark.parametrize("profile", PROFILES)
    def test_determinism(self, profile):
        g = clique(6)
        a = skewed_workload(g, profile, 42)
        b = skewed_workload(g, profile, 42)
        assert a.cardinality_exponents == b.cardinality_exponents
        assert a.query.selectivity == b.query.selectivity

    @pytest.mark.parametrize("profile", PROFILES)
    def test_weights_are_valid(self, profile):
        for seed in range(10):
            q = skewed_query(random_connected_graph(8, 0.5, seed), profile, seed)
            assert all(0.0 < s < 1.0 for s in q.selectivity.values())
            assert all(r.cardinality >= 1.0 for r in q.relations)
            assert set(q.selectivity) == {(e.u, e.v) for e in q.graph.edges}

    def test_bimodal_produces_weak_and_strong_edges(self):
        """Across seeds, a meaningful share of edges sits near selectivity
        1 (the weak mode) and a meaningful share well below it."""
        weak = strong = total = 0
        for seed in range(30):
            q = skewed_query(clique(8), "bimodal-selectivity", seed)
            for s in q.selectivity.values():
                total += 1
                if s > 0.5:
                    weak += 1
                elif s < 1e-2:
                    strong += 1
        assert 0.25 < weak / total < 0.75
        assert strong / total > 0.10

    def test_heavy_tail_spreads_exponents(self):
        """Shifted Pareto: most relations small, a few enormous, all capped."""
        exponents = []
        for seed in range(40):
            w = skewed_workload(clique(8), "heavy-tail-cardinality", seed)
            exponents.extend(w.cardinality_exponents)
        assert all(0.0 <= x <= HEAVY_TAIL_MAX_EXPONENT for x in exponents)
        assert max(exponents) > 6.0  # the tail shows up
        median = sorted(exponents)[len(exponents) // 2]
        assert median < 4.0  # but most mass stays small

    def test_intermediate_cardinalities_finite(self):
        for profile in PROFILES:
            q = skewed_query(random_connected_graph(8, 0.4, 3), profile, 3)
            full = q.cardinality(q.graph.all_vertices)
            assert math.isfinite(full) and full >= 0.0


class TestFuzzIntegration:
    def test_cases_carry_profiles(self):
        cases = generate_cases(60, seed=5)
        assert {c.profile for c in cases} == set(PROFILES)
        assert all(c.profile in PROFILES for c in cases)

    def test_profile_pool_does_not_perturb_other_draws(self):
        """Restricting the pool must leave graph/seed streams untouched —
        the fixed-width profile draw is the whole point."""
        full = generate_cases(20, seed=5)
        restricted = generate_cases(20, seed=5, profiles=("uniform",))
        for a, b in zip(full, restricted):
            assert (a.n, a.cyclicity, a.graph_seed, a.query_seed) == (
                b.n, b.cyclicity, b.graph_seed, b.query_seed
            )
        assert all(c.profile == "uniform" for c in restricted)

    def test_bad_profile_pool_rejected(self):
        with pytest.raises(ValueError, match="unknown profiles"):
            generate_cases(5, seed=1, profiles=("zipf",))
        with pytest.raises(ValueError, match="non-empty"):
            generate_cases(5, seed=1, profiles=())

    def test_corpus_entry_records_profile(self):
        g = random_connected_graph(4, 0.0, 1)
        entry = corpus_entry(g, 7, [], "test", profile="bimodal-selectivity")
        assert entry["profile"] == "bimodal-selectivity"

    def test_replay_defaults_missing_profile_to_uniform(self, tmp_path):
        """Entries written before profiles existed have no ``profile`` key
        and must replay under the uniform calibration."""
        g = random_connected_graph(4, 0.0, 1)
        entry = corpus_entry(
            g, 7, [], "test", invariants=("partition-complete",)
        )
        del entry["profile"]
        (tmp_path / "legacy.json").write_text(json.dumps(entry))
        assert replay_corpus(str(tmp_path)) == []


class TestVerifyCliProfiles:
    def test_unknown_profile_exits_two(self, capsys):
        assert cli_main(["verify", "--fuzz", "1", "--profile", "zipf"]) == 2
        assert "unknown profile" in capsys.readouterr().err

    def test_fuzz_with_profile_runs_clean(self, capsys):
        code = cli_main(
            [
                "verify", "--invariant", "partition-complete",
                "--fuzz", "3", "--profile", "heavy-tail-cardinality",
                "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["fuzz"]["cases"] == 3
