"""Tests for the Section 5.1 flexible memo: sharing plans across queries.

The paper's motivating example: after optimizing Q1 = A ⋈ B ⋈ C, a
top-down optimizer starting Q2 = B ⋈ C ⋈ D on the same memo finds the BC
subplan already present and skips an entire subtree.
"""

import pytest

from repro.analysis.metrics import Metrics
from repro.catalog import Catalog, Query
from repro.enumerator import TopDownEnumerator
from repro.memo import GlobalPlanCache, MemoTable
from repro.partition import MinCutLazy
from repro.plans import validate_plan
from repro.spaces import PlanSpace


def make_chain_query(names: list[str], cards: dict[str, float], sel: float = 0.01) -> Query:
    cat = Catalog()
    for name in names:
        cat.add_relation(name, cards[name])
    for i in range(len(names) - 1):
        cat.add_predicate(i, i + 1, sel)
    return Query.from_catalog(cat)


CARDS = {"A": 1000.0, "B": 2000.0, "C": 4000.0, "D": 8000.0, "E": 500.0}


class TestCrossQueryReuse:
    def test_paper_example(self):
        """Q1 then Q2 with a shared cache: BC comes from the cache."""
        cache = GlobalPlanCache()
        q1 = make_chain_query(["A", "B", "C"], CARDS)
        q2 = make_chain_query(["B", "C", "D"], CARDS)

        TopDownEnumerator(q1, MinCutLazy(), memo=cache).optimize()

        metrics = Metrics()
        enum2 = TopDownEnumerator(q2, MinCutLazy(), memo=cache, metrics=metrics)
        plan2 = enum2.optimize()
        validate_plan(plan2, q2, PlanSpace.bushy_cp_free())
        # B, C, and BC are found in the cache: at least three hits.
        assert metrics.memo_hits >= 3

    def test_shared_results_identical_to_cold(self):
        cache = GlobalPlanCache()
        q1 = make_chain_query(["A", "B", "C"], CARDS)
        q2 = make_chain_query(["B", "C", "D"], CARDS)
        TopDownEnumerator(q1, MinCutLazy(), memo=cache).optimize()
        warm = TopDownEnumerator(q2, MinCutLazy(), memo=cache).optimize()
        cold = TopDownEnumerator(q2, MinCutLazy()).optimize()
        assert warm.cost == pytest.approx(cold.cost)
        assert warm.vertices == q2.graph.all_vertices

    def test_warm_cache_reduces_expansions(self):
        cache = GlobalPlanCache()
        q1 = make_chain_query(["A", "B", "C", "D"], CARDS)
        q2 = make_chain_query(["B", "C", "D", "E"], CARDS)

        cold_metrics = Metrics()
        TopDownEnumerator(q2, MinCutLazy(), metrics=cold_metrics).optimize()

        TopDownEnumerator(q1, MinCutLazy(), memo=cache).optimize()
        warm_metrics = Metrics()
        TopDownEnumerator(q2, MinCutLazy(), memo=cache, metrics=warm_metrics).optimize()
        assert warm_metrics.expressions_expanded < cold_metrics.expressions_expanded

    def test_different_statistics_not_conflated(self):
        """The canonical key includes cardinalities: a same-named relation
        with different stats must not reuse stale plans."""
        cache = GlobalPlanCache()
        q1 = make_chain_query(["A", "B", "C"], CARDS)
        TopDownEnumerator(q1, MinCutLazy(), memo=cache).optimize()

        altered = dict(CARDS, B=999_999.0)
        q2 = make_chain_query(["B", "C", "D"], altered)
        metrics = Metrics()
        plan = TopDownEnumerator(q2, MinCutLazy(), memo=cache, metrics=metrics).optimize()
        cold = TopDownEnumerator(q2, MinCutLazy()).optimize()
        assert plan.cost == pytest.approx(cold.cost)

    def test_different_selectivity_not_conflated(self):
        cache = GlobalPlanCache()
        q1 = make_chain_query(["A", "B", "C"], CARDS, sel=0.01)
        q2 = make_chain_query(["A", "B", "C"], CARDS, sel=0.5)
        TopDownEnumerator(q1, MinCutLazy(), memo=cache).optimize()
        plan = TopDownEnumerator(q2, MinCutLazy(), memo=cache).optimize()
        cold = TopDownEnumerator(q2, MinCutLazy()).optimize()
        assert plan.cost == pytest.approx(cold.cost)

    def test_eviction_tolerated(self):
        """A capacity-limited shared cache stays correct (Section 5.1's
        graceful degradation applies to the global cache too)."""
        cache = GlobalPlanCache(capacity=3)
        q1 = make_chain_query(["A", "B", "C", "D"], CARDS)
        q2 = make_chain_query(["B", "C", "D", "E"], CARDS)
        TopDownEnumerator(q1, MinCutLazy(), memo=cache).optimize()
        warm = TopDownEnumerator(q2, MinCutLazy(), memo=cache).optimize()
        cold = TopDownEnumerator(q2, MinCutLazy()).optimize()
        assert warm.cost == pytest.approx(cold.cost)


class TestConcurrentAccess:
    """The serve tier probes and populates one cache from worker threads.

    Before the GlobalPlanCache lock, concurrent stores under a bounded
    capacity raced the eviction path's OrderedDict mutations against
    recency-refreshing lookups; these tests hammer exactly that mix and
    assert the cache stays internally consistent and correct.
    """

    NAMES = list("ABCDE")

    def _query_for(self, worker: int, step: int) -> Query:
        # Rotate through overlapping 3-relation chains so threads collide
        # on canonical keys (shared hits) as well as on fresh stores.
        start = (worker + step) % (len(self.NAMES) - 2)
        return make_chain_query(self.NAMES[start : start + 3], CARDS)

    def test_threaded_store_and_get_consistency(self):
        import threading

        cache = GlobalPlanCache(capacity=8)
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def hammer(worker: int) -> None:
            try:
                barrier.wait(timeout=30)
                for step in range(25):
                    query = self._query_for(worker, step)
                    full = query.graph.all_vertices
                    TopDownEnumerator(
                        query, MinCutLazy(), memo=MemoTable(shared=cache)
                    ).optimize()
                    entry = cache.get(query, full, None)
                    if entry is not None and entry.has_plan:
                        plan = cache.plan_for_query(query, entry)
                        if plan is not None:
                            assert plan.vertices == full
            except BaseException as exc:  # surfaced on the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,), name=f"cache-hammer-{i}")
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(cache) <= 8  # capacity respected through the races
        summary = cache.summary()
        assert summary["occupancy"] == summary["plan_cells"]

    def test_threaded_results_identical_to_cold(self):
        """Warm answers under thread contention match cold optimization."""
        import threading

        cache = GlobalPlanCache()
        queries = [make_chain_query(self.NAMES[s : s + 3], CARDS) for s in range(3)]
        results: dict[int, list[float]] = {i: [] for i in range(len(queries))}
        barrier = threading.Barrier(3)
        errors: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                barrier.wait(timeout=30)
                for _ in range(10):
                    query = queries[index]
                    plan = TopDownEnumerator(
                        query, MinCutLazy(), memo=MemoTable(shared=cache)
                    ).optimize()
                    results[index].append(plan.cost)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        for index, query in enumerate(queries):
            cold = TopDownEnumerator(query, MinCutLazy()).optimize()
            assert results[index], "thread recorded no results"
            assert all(cost == pytest.approx(cold.cost) for cost in results[index])

    def test_clear_drops_name_maps(self):
        cache = GlobalPlanCache()
        q1 = make_chain_query(["A", "B", "C"], CARDS)
        TopDownEnumerator(q1, MinCutLazy(), memo=cache).optimize()
        assert cache._name_maps
        cache.clear()
        assert not cache._name_maps
        assert len(cache) == 0
