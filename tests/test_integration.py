"""Cross-cutting integration tests: every algorithm, every space, one
truth.

These are the repository's strongest correctness guarantees:

1. all algorithms searching the same space return plans of identical cost;
2. all returned plans are structurally valid for their space;
3. larger search spaces never yield worse optima;
4. the optimal enumeration algorithms (TBNmc, BBNccp) enumerate exactly
   the same number of join operators.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plans import validate_plan
from repro.registry import make_optimizer, parse_name
from repro.spaces import PlanSpace
from repro.workloads import chain, clique, cycle, random_connected_graph, star, wheel
from repro.workloads.weights import weighted_query

SPACE_ALGORITHMS = {
    PlanSpace.left_deep_cp_free(): [
        "TLNmc", "TLNnaive", "BLNsize", "TLNmcA", "TLNmcP", "TLNmcAP",
    ],
    PlanSpace.left_deep_with_cp(): [
        "TLCnaive", "BLCsize", "TLCnaiveP", "TLCnaiveA",
    ],
    PlanSpace.bushy_cp_free(): [
        "TBNmc", "TBNmcopt", "TBNnaive", "BBNsize", "BBNnaive", "BBNccp",
        "TBNmcA", "TBNmcP", "TBNmcAP",
    ],
    PlanSpace.bushy_with_cp(): [
        "TBCnaive", "BBCsize", "BBCnaive", "TBCnaiveP", "TBCnaiveA",
    ],
}


def optimize_all(query):
    """Run every algorithm; return {space: {name: cost}} with validation."""
    costs = {}
    for space, names in SPACE_ALGORITHMS.items():
        costs[space] = {}
        for name in names:
            plan = make_optimizer(name, query).optimize()
            validate_plan(plan, query, space)
            costs[space][name] = plan.cost
    return costs


def assert_consistent(costs):
    for space, by_name in costs.items():
        values = list(by_name.values())
        reference = values[0]
        for name, cost in by_name.items():
            assert cost == pytest.approx(reference), (space.describe(), name, by_name)
    # Space-inclusion ordering on the optima.
    ld_free = next(iter(costs[PlanSpace.left_deep_cp_free()].values()))
    ld_cp = next(iter(costs[PlanSpace.left_deep_with_cp()].values()))
    b_free = next(iter(costs[PlanSpace.bushy_cp_free()].values()))
    b_cp = next(iter(costs[PlanSpace.bushy_with_cp()].values()))
    eps = 1e-9
    assert ld_cp <= ld_free * (1 + eps) + eps
    assert b_free <= ld_free * (1 + eps) + eps
    assert b_cp <= min(ld_cp, b_free) * (1 + eps) + eps


class TestFixedTopologies:
    @pytest.mark.parametrize(
        "maker,n", [(chain, 6), (star, 6), (cycle, 6), (clique, 5), (wheel, 6)],
        ids=["chain", "star", "cycle", "clique", "wheel"],
    )
    def test_all_algorithms_agree(self, maker, n):
        query = weighted_query(maker(n), 12345)
        assert_consistent(optimize_all(query))


class TestRandomQueries:
    @given(
        seed=st.integers(0, 100_000),
        cyclicity=st.sampled_from([0.0, 0.3, 0.6]),
        n=st.integers(4, 7),
    )
    @settings(max_examples=12, deadline=None)
    def test_all_algorithms_agree(self, seed, cyclicity, n):
        query = weighted_query(random_connected_graph(n, cyclicity, seed), seed)
        assert_consistent(optimize_all(query))


class TestOptimalEnumeratorsMatch:
    """TBNmc and BBNccp must consider exactly the same join operators."""

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_counters_equal(self, seed):
        from repro.analysis.metrics import Metrics

        query = weighted_query(random_connected_graph(7, 0.4, seed), seed)
        top = Metrics()
        make_optimizer("TBNmc", query, metrics=top).optimize()
        bottom = Metrics()
        make_optimizer("BBNccp", query, metrics=bottom).optimize()
        assert top.logical_joins_enumerated == bottom.logical_joins_enumerated
        assert top.join_operators_costed == bottom.join_operators_costed


class TestExtremeStatistics:
    """Degenerate statistics must not break agreement."""

    def test_tiny_cardinalities(self):
        from repro.catalog import Query

        query = Query.uniform(cycle(5), cardinality=1.0, selectivity=1.0)
        assert_consistent(optimize_all(query))

    def test_huge_cardinalities(self):
        from repro.catalog import Query

        query = Query.uniform(star(5), cardinality=1e12, selectivity=1e-9)
        assert_consistent(optimize_all(query))

    def test_mixed_magnitudes(self):
        from repro.catalog import Catalog, Query

        cat = Catalog()
        for i, card in enumerate([1, 1e9, 30, 1e7, 500]):
            cat.add_relation(f"R{i}", card)
        for i in range(4):
            cat.add_predicate(i, i + 1, 10.0 ** -(i + 1))
        query = Query.from_catalog(cat)
        assert_consistent(optimize_all(query))
