"""Tests for the repo-aware static-analysis pass (``repro.lint``).

Each rule gets a positive fixture (the finding fires with the right name
and severity), a negative fixture (idiomatic code stays clean), and a
pragma-suppressed fixture.  Engine behaviour — pragma parsing, module-name
derivation, rule selection, exit codes — is covered separately, and the
suite ends with the gate this PR turns on: ``repro lint src/`` is clean
at HEAD, and (where mypy is available) the strict-typed core type-checks.
"""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    ALL_RULES,
    ERROR,
    LAYERS,
    WARNING,
    lint_paths,
    lint_source,
    module_name_for,
    render_json,
    render_rules,
    render_text,
    rule_by_name,
)
from repro.lint.engine import parse_pragmas


def findings(source, module="fixture", **kwargs):
    """Lint a dedented snippet and return the findings list."""
    return lint_source(
        textwrap.dedent(source), module=module, **kwargs
    ).findings


def rule_names(source, module="fixture", **kwargs):
    return [f.rule for f in findings(source, module=module, **kwargs)]


class TestUnseededRandom:
    def test_flags_bare_random(self):
        found = findings("import random\nr = random.Random()\n")
        assert [f.rule for f in found] == ["unseeded-random"]
        assert found[0].severity == ERROR
        assert found[0].line == 2

    def test_flags_module_level_functions(self):
        assert "unseeded-random" in rule_names(
            "import random\nx = random.random()\n"
        )
        assert "unseeded-random" in rule_names(
            "from random import shuffle\n"
        )

    def test_seeded_random_is_clean(self):
        assert rule_names("import random\nr = random.Random(42)\n") == []

    def test_seeding_module_is_exempt(self):
        source = "import random\nr = random.Random()\n"
        assert rule_names(source, module="repro.workloads.seeding") == []

    def test_pragma_suppresses(self):
        source = (
            "import random\n"
            "r = random.Random()  # lint: disable=unseeded-random -- test rig\n"
        )
        assert rule_names(source) == []


class TestSetIterationOrder:
    IN_SCOPE = "repro.parallel.worker"

    def test_flags_for_over_set_literal(self):
        found = findings("for x in {1, 2}:\n    x\n", module=self.IN_SCOPE)
        assert [f.rule for f in found] == ["set-iteration-order"]
        assert found[0].severity == ERROR

    def test_flags_list_of_set_call(self):
        assert "set-iteration-order" in rule_names(
            "xs = list(set(items))\n", module=self.IN_SCOPE
        )

    def test_flags_comprehension_over_set_algebra(self):
        assert "set-iteration-order" in rule_names(
            "ys = [f(x) for x in set(a) & set(b)]\n", module=self.IN_SCOPE
        )

    def test_sorted_set_is_clean(self):
        assert rule_names(
            "for x in sorted({1, 2}):\n    x\n", module=self.IN_SCOPE
        ) == []

    def test_out_of_scope_module_is_clean(self):
        assert rule_names(
            "for x in {1, 2}:\n    x\n", module="repro.plans.logical"
        ) == []

    def test_pragma_suppresses(self):
        source = (
            "for x in {1, 2}:  # lint: disable=set-iteration-order -- sum\n"
            "    x\n"
        )
        assert rule_names(source, module=self.IN_SCOPE) == []


class TestIdentityOrdering:
    def test_flags_id_sort_key(self):
        found = findings("xs.sort(key=lambda x: id(x))\n")
        assert [f.rule for f in found] == ["identity-ordering"]

    def test_flags_hash_in_sorted(self):
        assert "identity-ordering" in rule_names(
            "ys = sorted(xs, key=lambda x: hash(x))\n"
        )

    def test_attribute_key_is_clean(self):
        assert rule_names("ys = sorted(xs, key=lambda x: x.name)\n") == []


class TestBinPopcount:
    def test_flags_bin_count(self):
        found = findings('n = bin(mask).count("1")\n')
        assert [f.rule for f in found] == ["bin-popcount"]
        assert found[0].severity == ERROR

    def test_popcount_is_clean(self):
        assert rule_names(
            "from repro.core.bitset import popcount\nn = popcount(mask)\n"
        ) == []

    def test_pragma_suppresses(self):
        assert rule_names(
            'n = bin(mask).count("1")  # lint: disable=bin-popcount -- bench\n'
        ) == []


class TestBitsetMaterialization:
    IN_SCOPE = "repro.partition.mincut"

    def test_flags_set_of_iter_bits(self):
        found = findings(
            "s = set(iter_bits(mask))\n", module=self.IN_SCOPE
        )
        assert [f.rule for f in found] == ["bitset-materialization"]

    def test_flags_membership_via_set_of(self):
        assert "bitset-materialization" in rule_names(
            "ok = v in set_of(mask)\n", module=self.IN_SCOPE
        )

    def test_bitwise_test_is_clean(self):
        assert rule_names(
            "ok = bool(mask & (1 << v))\n", module=self.IN_SCOPE
        ) == []

    def test_out_of_scope_module_is_clean(self):
        assert rule_names(
            "s = set(iter_bits(mask))\n", module="repro.analysis.counting"
        ) == []

    def test_standalone_pragma_attaches_to_next_code_line(self):
        source = (
            "# lint: disable=bitset-materialization -- sanctioned boundary\n"
            "s = set(iter_bits(mask))\n"
        )
        assert rule_names(source, module=self.IN_SCOPE) == []


class TestPerBitLoop:
    IN_SCOPE = "repro.core.biconnection"

    def test_flags_range_probe_loop_as_warning(self):
        source = """\
        for v in range(n):
            if (mask >> v) & 1:
                work(v)
        """
        report = lint_source(textwrap.dedent(source), module=self.IN_SCOPE)
        assert [f.rule for f in report.findings] == ["per-bit-loop"]
        assert report.findings[0].severity == WARNING
        # Warnings never fail the run.
        assert report.ok
        assert report.exit_code == 0

    def test_iter_bits_loop_is_clean(self):
        assert rule_names(
            "for v in iter_bits(mask):\n    work(v)\n", module=self.IN_SCOPE
        ) == []


class TestHotPathPurity:
    IN_SCOPE = "repro.enumerator"

    def test_flags_unguarded_tracer_event(self):
        source = """\
        def step(self, tracer, subset):
            tracer.event("expand", subset)
        """
        found = findings(source, module=self.IN_SCOPE)
        assert [f.rule for f in found] == ["hotpath-purity"]
        assert found[0].severity == ERROR

    def test_flags_unguarded_fstring(self):
        source = """\
        def step(self, subset):
            label = f"subset={subset}"
            return label
        """
        assert "hotpath-purity" in rule_names(source, module=self.IN_SCOPE)

    def test_guarded_payload_is_clean(self):
        source = """\
        def step(self, tracer, subset):
            if tracer.enabled:
                tracer.event(f"subset={subset}")
        """
        assert rule_names(source, module=self.IN_SCOPE) == []

    def test_cold_functions_and_error_paths_are_exempt(self):
        source = """\
        def describe(self):
            return f"{self!r}"

        def step(self, subset):
            raise ValueError(f"bad subset {subset}")
        """
        assert rule_names(source, module=self.IN_SCOPE) == []

    def test_out_of_scope_module_is_clean(self):
        source = """\
        def step(self, tracer, subset):
            tracer.event("expand", subset)
        """
        assert rule_names(source, module="repro.obs.tracer") == []

    def test_flags_unguarded_profiler_enter(self):
        source = """\
        def step(self, subset):
            self.profiler.enter("memo.table")
            probe(subset)
            self.profiler.exit()
        """
        found = findings(source, module=self.IN_SCOPE)
        assert [f.rule for f in found] == ["hotpath-purity", "hotpath-purity"]
        assert all(f.severity == ERROR for f in found)
        assert "profiler" in found[0].message

    def test_flags_unguarded_profiler_count(self):
        source = """\
        def step(self, profiler, subset):
            profiler.count("memo.table", "probes")
        """
        assert "hotpath-purity" in rule_names(source, module=self.IN_SCOPE)

    def test_guarded_profiler_calls_are_clean(self):
        source = """\
        def step(self, subset):
            if self._profiling:
                self.profiler.enter("memo.table")
            probe(subset)
            if self.profiler.enabled:
                self.profiler.exit()
        """
        assert rule_names(source, module=self.IN_SCOPE) == []

    def test_profiler_module_itself_is_exempt(self):
        source = """\
        def step(self, profiler, subset):
            profiler.enter("memo.table")
        """
        assert rule_names(source, module="repro.obs.profile") == []


class TestMetricsField:
    def test_flags_undeclared_field_write(self):
        found = findings("metrics.memo_evictionz += 1\n")
        assert [f.rule for f in found] == ["metrics-field"]
        assert "memo_evictionz" in found[0].message

    def test_declared_fields_are_clean(self):
        assert rule_names(
            "metrics.memo_evictions += 1\n"
            "self.metrics.partitions_emitted += n\n"
        ) == []

    def test_assigning_the_metrics_object_is_clean(self):
        assert rule_names("self.metrics = metrics\n") == []


class TestInstrumentName:
    def test_flags_undeclared_literal(self):
        found = findings('c = registry.counter("bogus_instrument")\n')
        assert [f.rule for f in found] == ["instrument-name"]

    def test_declared_literal_and_constant_are_clean(self):
        assert rule_names(
            'c = registry.counter("memo_evictions")\n'
            "h = registry.histogram(MEMO_OCCUPANCY)\n"
        ) == []

    def test_registry_module_itself_is_exempt(self):
        assert rule_names(
            'c = registry.counter("anything_goes")\n',
            module="repro.obs.registry",
        ) == []


class TestImportLayering:
    def test_flags_module_level_upward_import(self):
        found = findings(
            "from repro.cli import main\n", module="repro.core.bitset"
        )
        assert [f.rule for f in found] == ["import-layering"]
        assert found[0].severity == ERROR
        assert "upward import" in found[0].message

    def test_lazy_upward_import_is_warning(self):
        source = """\
        def build():
            from repro.parallel.scheduler import ParallelEnumerator
            return ParallelEnumerator
        """
        found = findings(source, module="repro.registry")
        assert [f.rule for f in found] == ["import-layering"]
        assert found[0].severity == WARNING

    def test_downward_import_is_clean(self):
        assert rule_names(
            "from repro.core.bitset import popcount\n", module="repro.cli"
        ) == []

    def test_layer_map_is_a_dag_order(self):
        assert LAYERS["repro.core"] == 0
        assert LAYERS["repro.core"] < LAYERS["repro.partition"]
        assert LAYERS["repro.partition"] < LAYERS["repro.enumerator"]
        assert LAYERS["repro.enumerator"] < LAYERS["repro.parallel"]
        assert LAYERS["repro.conformance"] < LAYERS["repro.cli"]
        # The fast path subclasses the oracle enumerator and is built by
        # the registry: same rank as the former, below the latter.
        assert LAYERS["repro.fastpath"] == LAYERS["repro.enumerator"]
        assert LAYERS["repro.fastpath"] < LAYERS["repro.registry"]


class TestFastpathGuard:
    def test_flags_bare_numpy_import(self):
        found = findings("import numpy\n", module="repro.cost.io_model")
        assert [f.rule for f in found] == ["fastpath-guard"]
        assert found[0].severity == ERROR
        assert "numpy" in found[0].message

    def test_flags_from_import_and_submodules(self):
        assert "fastpath-guard" in rule_names(
            "from numpy import ndarray\n", module="repro.fastpath.batch"
        )
        assert "fastpath-guard" in rule_names(
            "import numpy.linalg\n", module="repro.analysis.counting"
        )
        assert "fastpath-guard" in rule_names(
            "from mypyc.build import mypycify\n", module="fixture"
        )

    def test_flags_lazy_function_scoped_import(self):
        # A deferred hard dependency still detonates on first call.
        source = """\
        def kernel():
            import numpy
            return numpy.ceil
        """
        assert "fastpath-guard" in rule_names(
            source, module="repro.fastpath.batch"
        )

    def test_detection_shim_is_exempt(self):
        source = """\
        def numpy_or_none():
            try:
                import numpy
            except ImportError:
                return None
            return numpy
        """
        assert rule_names(source, module="repro.fastpath.detect") == []

    def test_shim_consumers_are_clean(self):
        assert rule_names(
            "from repro.fastpath.detect import numpy_or_none\n"
            "np = numpy_or_none()\n",
            module="repro.fastpath.batch",
        ) == []

    def test_pragma_suppresses(self):
        assert rule_names(
            "from mypyc.build import mypycify"
            "  # lint: disable=fastpath-guard -- build-time only\n"
        ) == []


class TestEngine:
    def test_trailing_pragma_with_reason_keeps_rule_name_exact(self):
        """Regression: the `-- reason` suffix must not leak into the rule
        name (the pragma regex once swallowed it)."""
        pragmas = parse_pragmas(
            "x = 1  # lint: disable=bin-popcount -- justified\n"
        )
        assert pragmas.by_line == {1: frozenset({"bin-popcount"})}

    def test_pragma_accepts_rule_list(self):
        pragmas = parse_pragmas("x = 1  # lint: disable=rule-a, rule-b\n")
        assert pragmas.by_line[1] == frozenset({"rule-a", "rule-b"})

    def test_standalone_pragma_skips_blank_and_comment_lines(self):
        pragmas = parse_pragmas(
            "# lint: disable=rule-a -- spans the block below\n"
            "\n"
            "# ordinary comment\n"
            "x = 1\n"
        )
        assert pragmas.by_line == {4: frozenset({"rule-a"})}

    def test_disable_file_is_module_wide(self):
        pragmas = parse_pragmas("# lint: disable-file=rule-a\nx = 1\ny = 2\n")
        assert pragmas.suppresses("rule-a", 3)
        assert not pragmas.suppresses("rule-b", 3)

    def test_pragma_inside_string_literal_is_ignored(self):
        pragmas = parse_pragmas('s = "# lint: disable=rule-a"\n')
        assert pragmas.by_line == {}
        assert pragmas.file_wide == frozenset()

    def test_module_name_for_anchors_at_repro(self):
        assert module_name_for("src/repro/core/bitset.py") == "repro.core.bitset"
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"
        assert module_name_for("/tmp/fixtures/sample.py") == "sample"

    def test_unknown_rule_in_select_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", select=["no-such-rule"])

    def test_select_and_ignore_restrict_rules(self):
        source = 'import random\nr = random.Random()\nn = bin(r).count("1")\n'
        only = lint_source(source, select=["bin-popcount"])
        assert [f.rule for f in only.findings] == ["bin-popcount"]
        without = lint_source(source, ignore=["bin-popcount"])
        assert "bin-popcount" not in [f.rule for f in without.findings]

    def test_findings_sorted_by_location(self):
        source = (
            'n = bin(mask).count("1")\n'
            "import random\n"
            "r = random.Random()\n"
        )
        report = lint_source(source)
        assert [f.line for f in report.findings] == sorted(
            f.line for f in report.findings
        )

    def test_rule_registry_is_consistent(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(names) == len(set(names)) == 23
        assert sum(1 for name in names if name.startswith("flow-")) == 12
        for name in names:
            assert rule_by_name(name).name == name
        with pytest.raises(KeyError):
            rule_by_name("no-such-rule")

    def test_reporters_render_both_shapes(self):
        report = lint_source("import random\nr = random.Random()\n")
        text = render_text(report)
        assert "[error] unseeded-random" in text
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "unseeded-random"
        catalog = render_rules(ALL_RULES)
        assert "unseeded-random" in catalog and "import-layering" in catalog


class TestCli:
    BAD = "import random\nr = random.Random()\n"

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert cli_main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        assert cli_main(["lint", str(path)]) == 1
        assert "unseeded-random" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(self.BAD)
        assert cli_main(["lint", str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "unseeded-random"

    def test_pragma_quiets_the_cli_too(self, tmp_path, capsys):
        path = tmp_path / "waived.py"
        path.write_text(
            "import random\n"
            "r = random.Random()  # lint: disable=unseeded-random -- fixture\n"
        )
        assert cli_main(["lint", str(path)]) == 0
        capsys.readouterr()

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_no_paths_exits_two(self, capsys):
        assert cli_main(["lint"]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert cli_main(["lint", str(path), "--select", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unparseable_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def (:\n")
        assert cli_main(["lint", str(path)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out


class TestRepoGate:
    """The bar this PR raises: the tree itself passes its own analysis."""

    def test_src_tree_is_lint_clean(self):
        report = lint_paths(["src"])
        assert report.files_checked > 80
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"lint findings at HEAD:\n{rendered}"

    def test_mypy_strict_core_is_clean(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
