"""Tests for the search-space counting module, anchored on the paper's
own Table 2 numbers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counting import (
    count_connected_subgraphs,
    count_join_operators,
    count_minimal_cuts,
    ono_lohman_join_operators,
    ono_lohman_minimal_cuts,
)
from repro.spaces import PlanSpace
from repro.workloads import chain, clique, cycle, random_connected_graph, star

TOPOLOGIES = {
    "chain": chain,
    "star": star,
    "clique": clique,
    "cycle": cycle,
}

ALL_SPACES = [
    PlanSpace.left_deep_cp_free(),
    PlanSpace.left_deep_with_cp(),
    PlanSpace.bushy_cp_free(),
    PlanSpace.bushy_with_cp(),
]


class TestPaperAnchors:
    """Table 2's first rows for star queries at n=5: 36 / 64 / 75 / 180."""

    def test_star5_left_deep_cp_free(self):
        assert ono_lohman_join_operators("star", 5, PlanSpace.left_deep_cp_free()) == 36

    def test_star5_bushy_cp_free(self):
        assert ono_lohman_join_operators("star", 5, PlanSpace.bushy_cp_free()) == 64

    def test_star5_left_deep_with_cp(self):
        assert ono_lohman_join_operators("star", 5, PlanSpace.left_deep_with_cp()) == 75

    def test_star5_bushy_with_cp(self):
        assert ono_lohman_join_operators("star", 5, PlanSpace.bushy_with_cp()) == 180

    def test_with_cp_counts_topology_independent(self):
        """Table 2: with-CP spaces have identical sizes for all topologies."""
        for space in (PlanSpace.left_deep_with_cp(), PlanSpace.bushy_with_cp()):
            values = {
                ono_lohman_join_operators(t, 6, space) for t in TOPOLOGIES
            }
            assert len(values) == 1

    def test_known_growth(self):
        # Bushy with CPs: 3^n - 2^(n+1) + 1.
        assert ono_lohman_join_operators("chain", 10, PlanSpace.bushy_with_cp()) == (
            3**10 - 2**11 + 1
        )


class TestClosedFormsAgainstBruteForce:
    @pytest.mark.parametrize("topology", list(TOPOLOGIES))
    @pytest.mark.parametrize("space", ALL_SPACES, ids=lambda s: s.describe())
    def test_join_operator_counts(self, topology, space):
        sizes = range(3, 8) if topology == "cycle" else range(1, 8)
        for n in sizes:
            graph = TOPOLOGIES[topology](n)
            assert count_join_operators(graph, space) == ono_lohman_join_operators(
                topology, n, space
            ), (topology, n, space.describe())

    @pytest.mark.parametrize("topology", list(TOPOLOGIES))
    def test_minimal_cut_counts(self, topology):
        sizes = range(3, 9) if topology == "cycle" else range(1, 9)
        for n in sizes:
            graph = TOPOLOGIES[topology](n)
            assert count_minimal_cuts(graph) == ono_lohman_minimal_cuts(topology, n)

    def test_tree_alias(self):
        assert ono_lohman_minimal_cuts("tree", 9) == 8


class TestBruteForce:
    def test_connected_subgraph_counts(self):
        # Chain: intervals -> n(n+1)/2; star: hub sets + singletons.
        assert count_connected_subgraphs(chain(5)) == 15
        assert count_connected_subgraphs(star(5)) == 2**4 + 4
        assert count_connected_subgraphs(chain(5), min_size=2) == 10

    def test_acyclic_cut_equals_edge_count(self):
        """Section 3.3.1: for acyclic graphs |E| = number of cuts."""
        for seed in range(8):
            graph = random_connected_graph(9, 0.0, seed)
            assert count_minimal_cuts(graph) == graph.edge_count()

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_space_inclusion(self, seed):
        """CP-free spaces are subsets of their with-CP counterparts, and
        left-deep spaces are subsets of bushy ones."""
        graph = random_connected_graph(7, 0.4, seed)
        counts = {space: count_join_operators(graph, space) for space in ALL_SPACES}
        assert counts[PlanSpace.left_deep_cp_free()] <= counts[PlanSpace.left_deep_with_cp()]
        assert counts[PlanSpace.bushy_cp_free()] <= counts[PlanSpace.bushy_with_cp()]
        assert counts[PlanSpace.left_deep_cp_free()] <= counts[PlanSpace.bushy_cp_free()]
        assert counts[PlanSpace.left_deep_with_cp()] <= counts[PlanSpace.bushy_with_cp()]


class TestValidation:
    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            ono_lohman_join_operators("torus", 5, PlanSpace.bushy_cp_free())
        with pytest.raises(ValueError):
            ono_lohman_minimal_cuts("torus", 5)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            ono_lohman_join_operators("chain", 0, PlanSpace.bushy_cp_free())
        with pytest.raises(ValueError):
            ono_lohman_join_operators("cycle", 2, PlanSpace.bushy_cp_free())
        with pytest.raises(ValueError):
            ono_lohman_minimal_cuts("cycle", 2)
