"""Tests for the kernel-level profiler (repro.obs.profile).

Covers the NULL-object zero-overhead contract, the exclusive-time frame
arithmetic, the kernel taxonomy an instrumented enumerator produces, the
determinism guarantees, and the registry's guard against profiling
configurations the frame stack cannot attribute (parallel / bottom-up).
"""

import pytest

from repro.obs.profile import (
    KERNEL_COST,
    KERNEL_MEMO,
    KERNEL_SEARCH,
    NULL_PROFILER,
    NullProfiler,
    RecordingProfiler,
    profiled_iter,
    render_kernel_table,
)
from repro.plans import plan_cost
from repro.registry import make_optimizer
from repro.workloads import clique, star
from repro.workloads.weights import weighted_query


class TestNullProfiler:
    def test_disabled(self):
        assert NULL_PROFILER.enabled is False
        assert NullProfiler().enabled is False

    def test_methods_are_noops(self):
        profiler = NullProfiler()
        profiler.enter("k")
        profiler.count("k", "op")
        profiler.exit()  # no state, no error

    def test_default_optimizer_uses_null_profiler(self):
        optimizer = make_optimizer("TBNmc", weighted_query(star(6), 1))
        assert optimizer.profiler is NULL_PROFILER
        assert optimizer._profiling is False
        # The hot-path views collapse to the raw objects: no wrappers.
        assert optimizer._memo_hot is optimizer.memo
        assert optimizer._cost_hot is optimizer.cost_model


class TestExclusiveTime:
    def test_exclusive_excludes_nested_frames(self):
        profiler = RecordingProfiler()
        profiler.enter("outer")
        profiler.enter("inner")
        profiler.exit()
        profiler.exit()
        assert profiler.calls == {"outer": 1, "inner": 1}
        # outer exclusive + inner exclusive == outer inclusive, so the
        # sum over kernels equals the root frame's inclusive time.
        total = profiler.total_seconds()
        assert total >= profiler.seconds["inner"]
        assert profiler.seconds["outer"] >= 0.0

    def test_stack_paths(self):
        profiler = RecordingProfiler()
        profiler.enter("a")
        profiler.enter("b")
        profiler.exit()
        profiler.exit()
        profiler.enter("a")
        profiler.exit()
        assert set(profiler.stacks) == {("a",), ("a", "b")}

    def test_counts_aggregate(self):
        profiler = RecordingProfiler()
        profiler.count("k", "hits")
        profiler.count("k", "hits", 2)
        profiler.count("k", "misses")
        assert profiler.ops == {"k": {"hits": 3, "misses": 1}}

    def test_profiled_iter_bills_generator_body_only(self):
        profiler = RecordingProfiler()

        def generate():
            yield 1
            yield 2

        items = list(profiled_iter(profiler, "gen", generate(), op="items"))
        assert items == [1, 2]
        # Two yields plus the StopIteration probe = three frames.
        assert profiler.calls["gen"] == 3
        assert profiler.ops["gen"] == {"items": 2}


class TestInstrumentedRun:
    def _run(self, algorithm="TBNmc", n=8):
        query = weighted_query(clique(n), 5)
        profiler = RecordingProfiler()
        optimizer = make_optimizer(algorithm, query, profiler=profiler)
        plan = optimizer.optimize()
        return plan, profiler

    def test_kernel_taxonomy_present(self):
        _plan, profiler = self._run()
        kernels = set(profiler.kernels())
        assert KERNEL_SEARCH in kernels
        assert KERNEL_MEMO in kernels
        assert KERNEL_COST in kernels
        assert "partition.mincut" in kernels
        assert "partition.bcc_build" in kernels

    def test_memo_ops_counted(self):
        _plan, profiler = self._run()
        ops = profiler.ops[KERNEL_MEMO]
        assert ops["probes"] > 0
        assert ops["stores"] > 0

    def test_plan_cost_unchanged_by_profiling(self):
        query = weighted_query(clique(8), 5)
        bare = make_optimizer("TBNmc", query).optimize()
        profiled, _profiler = self._run()
        assert plan_cost(profiled) == plan_cost(bare)

    def test_deterministic_across_runs(self):
        _plan1, first = self._run()
        _plan2, second = self._run()
        assert first.deterministic_table() == second.deterministic_table()
        assert sorted(first.stacks) == sorted(second.stacks)

    def test_report_and_coverage(self):
        _plan, profiler = self._run()
        report = profiler.report(profiler.total_seconds())
        assert report["coverage_of_wall"] == pytest.approx(1.0)
        shares = [row["share"] for row in report["kernels"]]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)

    def test_collapsed_format(self):
        _plan, profiler = self._run()
        text = profiler.collapsed()
        lines = text.splitlines()
        assert lines == sorted(lines)
        for line in lines:
            path, _space, micros = line.rpartition(" ")
            assert path
            assert int(micros) >= 0
        # Nested kernels appear under the search root.
        assert any(line.startswith(f"{KERNEL_SEARCH};") for line in lines)

    def test_render_kernel_table(self):
        _plan, profiler = self._run()
        table = render_kernel_table(profiler)
        assert "kernel" in table and KERNEL_COST in table
        filtered = render_kernel_table(profiler, kernels=[KERNEL_MEMO])
        assert KERNEL_MEMO in filtered
        assert KERNEL_COST not in filtered
        assert render_kernel_table(
            RecordingProfiler()
        ) == "(no kernel frames recorded)"

    def test_naive_strategies_report_their_kernels(self):
        query = weighted_query(star(7), 2)
        for algorithm, kernel in (
            ("TBCnaive", "enum.subsets"),
            ("TLCnaive", "partition.peel"),
        ):
            profiler = RecordingProfiler()
            make_optimizer(algorithm, query, profiler=profiler).optimize()
            assert profiler.calls[kernel] > 0, algorithm


class TestRegistryGuards:
    def test_profiler_with_workers_rejected(self):
        query = weighted_query(clique(6), 1)
        with pytest.raises(ValueError, match="serial top-down"):
            make_optimizer(
                "TBNmc", query, workers=2, profiler=RecordingProfiler()
            )

    def test_profiler_with_bottom_up_rejected(self):
        query = weighted_query(clique(6), 1)
        with pytest.raises(ValueError, match="serial top-down"):
            make_optimizer("BBNccp", query, profiler=RecordingProfiler())
