"""Tests for the Section 4.3 weighted workload generation."""

import math
from statistics import mean

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import generate_weights, weighted_query


class TestStructure:
    def test_selectivities_in_range(self):
        q = weighted_query(star(10), 7)
        assert all(0.0 < s < 1.0 for s in q.selectivity.values())

    def test_every_edge_weighted(self):
        g = random_connected_graph(9, 0.4, 3)
        q = weighted_query(g, 3)
        assert set(q.selectivity) == {(e.u, e.v) for e in g.edges}

    def test_determinism(self):
        a = generate_weights(chain(8), 99)
        b = generate_weights(chain(8), 99)
        assert a.cardinality_exponents == b.cardinality_exponents
        assert a.query.selectivity == b.query.selectivity

    def test_cardinalities_positive(self):
        q = weighted_query(chain(12), 5)
        assert all(r.cardinality >= 1.0 for r in q.relations)

    def test_audit_fields(self):
        w = generate_weights(star(6), 11)
        assert len(w.cardinality_exponents) == 6
        assert math.isfinite(w.actual_result_exponent)

    def test_single_relation(self):
        w = generate_weights(chain(1), 0)
        assert w.query.selectivity == {}


class TestDistribution:
    def test_cardinality_exponent_distribution(self):
        """Exponents are ~N(5, 2) clipped at 0 (paper Section 4.3)."""
        exponents = []
        for seed in range(120):
            exponents.extend(generate_weights(chain(10), seed).cardinality_exponents)
        mu = mean(exponents)
        assert 4.4 < mu < 5.6
        # Paper: roughly 17% below 1k (exponent < 3), 17% above 10M (> 7).
        low = sum(1 for x in exponents if x < 3) / len(exponents)
        high = sum(1 for x in exponents if x > 7) / len(exponents)
        assert 0.08 < low < 0.28
        assert 0.08 < high < 0.28

    def test_result_exponent_calibration(self):
        """Final result cardinality is ~10^N(5, >2): inputs and outputs of
        joins have the same expected magnitude."""
        actuals = [
            generate_weights(chain(10), seed).actual_result_exponent
            for seed in range(120)
        ]
        mu = mean(actuals)
        assert 3.0 < mu < 7.0

    @given(st.integers(0, 2000))
    @settings(max_examples=40)
    def test_intermediate_cardinalities_finite(self, seed):
        q = weighted_query(random_connected_graph(8, 0.4, seed), seed)
        full = q.cardinality(q.graph.all_vertices)
        assert math.isfinite(full) and full >= 0.0
