"""Tests for biconnected components, articulation vertices, and the
biconnection tree — including the paper's Figure 1 worked example."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.biconnection import (
    articulation_vertices,
    biconnected_components,
    build_bcc_tree,
)
from repro.core.bitset import bit, iter_bits, mask_of, set_of
from repro.core.joingraph import JoinGraph
from repro.workloads import binary_tree, chain, clique, cycle, random_connected_graph, star, wheel

# The paper's Figure 1 graph: root t plus biconnected components
# {t,a}, {a,b}, and {a,c,d,e}.  Vertex numbering: t=0 a=1 b=2 c=3 d=4 e=5.
T, A, B, C, D, E = range(6)
FIGURE1 = JoinGraph(
    6,
    [(T, A), (A, B), (A, C), (A, D), (C, D), (C, E), (D, E)],
)


def to_networkx(graph: JoinGraph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.n))
    nxg.add_edges_from((e.u, e.v) for e in graph.edges)
    return nxg


class TestArticulation:
    def test_chain_interior(self):
        g = chain(5)
        assert articulation_vertices(g) == mask_of([1, 2, 3])

    def test_star_hub(self):
        g = star(6)
        assert articulation_vertices(g) == bit(0)

    def test_cycle_none(self):
        assert articulation_vertices(cycle(6)) == 0

    def test_clique_none(self):
        assert articulation_vertices(clique(5)) == 0

    def test_figure1(self):
        assert articulation_vertices(FIGURE1) == bit(A)

    def test_subset(self):
        g = chain(5)
        # Induced path 1-2-3: only 2 is articulation.
        assert articulation_vertices(g, mask_of([1, 2, 3])) == bit(2)

    @given(st.integers(0, 5000))
    @settings(max_examples=60)
    def test_matches_networkx(self, seed):
        g = random_connected_graph(9, 0.35, seed)
        expected = mask_of(nx.articulation_points(to_networkx(g)))
        assert articulation_vertices(g) == expected

    @given(
        st.integers(3, 8),
        st.sampled_from([0.0, 0.2, 0.4, 0.7]),
        st.integers(0, 5000),
    )
    @settings(max_examples=60)
    def test_matches_brute_force(self, n, cyclicity, seed):
        """Networkx-free oracle: v is articulation iff deleting v disconnects."""
        from repro.conformance import brute_force_articulation

        g = random_connected_graph(n, cyclicity, seed)
        assert articulation_vertices(g) == brute_force_articulation(
            g, g.all_vertices
        )

    @given(st.integers(0, 5000))
    @settings(max_examples=40)
    def test_subset_matches_brute_force(self, seed):
        """The oracle agrees on induced (connected) proper subsets too."""
        from repro.conformance import brute_force_articulation
        from repro.conformance.oracles import connected_subsets

        g = random_connected_graph(7, 0.4, seed)
        for subset in connected_subsets(g, min_size=3):
            assert articulation_vertices(g, subset) == brute_force_articulation(
                g, subset
            )


class TestBiconnectedComponents:
    def test_figure1_components(self):
        comps = {frozenset(set_of(m)) for m in biconnected_components(FIGURE1)}
        assert comps == {
            frozenset({T, A}),
            frozenset({A, B}),
            frozenset({A, C, D, E}),
        }

    def test_tree_components_are_edges(self):
        g = binary_tree(7)
        comps = biconnected_components(g)
        assert len(comps) == g.edge_count()
        assert all(m.bit_count() == 2 for m in comps)

    def test_cycle_single_component(self):
        comps = biconnected_components(cycle(6))
        assert comps == [cycle(6).all_vertices]

    @given(st.integers(0, 5000))
    @settings(max_examples=60)
    def test_matches_networkx(self, seed):
        g = random_connected_graph(9, 0.35, seed)
        ours = {frozenset(set_of(m)) for m in biconnected_components(g)}
        theirs = {frozenset(c) for c in nx.biconnected_components(to_networkx(g))}
        assert ours == theirs


class TestBiconnectionTree:
    def test_figure1_descendants_and_ancestors(self):
        tree = build_bcc_tree(FIGURE1, FIGURE1.all_vertices, T)
        assert tree.desc(A) == mask_of([A, B, C, D, E])
        assert tree.anc(A) == mask_of([A, T])
        assert tree.desc(B) == bit(B)
        assert tree.anc(B) == mask_of([A, B, T])
        assert tree.desc(C) == bit(C)
        assert tree.anc(C) == mask_of([A, C, T])

    def test_figure1_leaves(self):
        tree = build_bcc_tree(FIGURE1, FIGURE1.all_vertices, T)
        # Non-articulation vertices are the leaves; t's single child makes
        # the root a leaf of the biconnection structure too.
        assert tree.leaves() == mask_of([T, B, C, D, E])

    def test_root_must_be_in_subset(self):
        with pytest.raises(ValueError):
            build_bcc_tree(FIGURE1, mask_of([A, B]), T)

    def test_disconnected_subset_rejected(self):
        with pytest.raises(ValueError):
            build_bcc_tree(chain(5), mask_of([0, 1, 3, 4]), 0)

    def test_single_vertex_tree(self):
        tree = build_bcc_tree(chain(3), bit(1), 1)
        assert tree.desc(1) == bit(1)
        assert tree.anc(1) == bit(1)
        assert tree.components == []

    def test_descendant_partition_property(self):
        """Descendant sets of siblings are disjoint; children nest in parents."""
        g = random_connected_graph(10, 0.3, 7)
        tree = build_bcc_tree(g, g.all_vertices, 0)
        for v in range(g.n):
            for u in iter_bits(tree.anc(v) & ~bit(v)):
                assert tree.desc(v) & ~tree.desc(u) == 0

    def test_clip_on_reuse(self):
        tree = build_bcc_tree(FIGURE1, FIGURE1.all_vertices, T)
        survivors = FIGURE1.all_vertices & ~bit(B)
        assert tree.desc(A, within=survivors) == mask_of([A, C, D, E])
        assert tree.anc(C, within=survivors) == mask_of([A, C, T])


class TestUsability:
    """Algorithm 5 / Lemma 3.2 on the paper's own examples."""

    @pytest.fixture
    def tree(self):
        return build_bcc_tree(FIGURE1, FIGURE1.all_vertices, T)

    def test_delete_b_usable(self, tree):
        # Deleting b removes a whole biconnected component: still usable.
        assert tree.is_usable_for(FIGURE1.all_vertices & ~bit(B))

    def test_delete_c_not_usable(self, tree):
        # Deleting c splits {a,c,d,e} into {a,d} and {d,e}: not usable,
        # and the conservative test catches it (d, e are surviving children).
        assert not tree.is_usable_for(FIGURE1.all_vertices & ~bit(C))

    def test_delete_e_false_negative(self, tree):
        # Deleting e leaves the triangle {a,c,d} which could map into the
        # old set node, but Algorithm 5 cannot distinguish this from the
        # deletion of c: a documented false negative.
        assert not tree.is_usable_for(FIGURE1.all_vertices & ~bit(E))

    def test_delete_root_not_usable(self, tree):
        assert not tree.is_usable_for(FIGURE1.all_vertices & ~bit(T))

    def test_empty_subset_usable(self, tree):
        assert tree.is_usable_for(0)

    def test_identity_usable(self, tree):
        assert tree.is_usable_for(FIGURE1.all_vertices)

    def test_size3_tweak_triangle(self):
        # In a triangle component, deleting one child keeps the remainder
        # biconnected; the tweak avoids the false negative.
        g = JoinGraph(4, [(0, 1), (1, 2), (2, 3), (3, 1)])  # t=0, triangle 1-2-3
        tree = build_bcc_tree(g, g.all_vertices, 0)
        survivors = g.all_vertices & ~bit(2)
        assert not tree.is_usable_for(survivors)
        assert tree.is_usable_for(survivors, size3_tweak=True)

    def test_acyclic_always_usable(self):
        """On trees, deleting any leaf-subtree keeps the tree usable —
        the property that lets MinCutLazy build exactly one tree."""
        g = binary_tree(7)
        tree = build_bcc_tree(g, g.all_vertices, 0)
        # Remove the subtree rooted at vertex 1 (vertices 1, 3, 4).
        survivors = g.all_vertices & ~mask_of([1, 3, 4])
        assert tree.is_usable_for(survivors)
