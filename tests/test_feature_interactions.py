"""Cross-feature interaction matrix.

Each paper feature is tested in isolation elsewhere; optimizers in the
wild run them *together*.  These tests combine branch-and-bound modes,
capacity-limited memos (both eviction policies), alternative cost models,
the cross-query cache, and multi-phase search, asserting the one
invariant that must survive every combination: the returned plan cost is
the space optimum.
"""

import pytest

from repro.analysis.metrics import Metrics
from repro.cost import CostModel, CoutCostModel
from repro.enumerator import Bounding, TopDownEnumerator
from repro.memo import GlobalPlanCache, MemoTable
from repro.multiphase import optimize_multiphase
from repro.partition import MinCutLazy, MinCutLeftDeep
from repro.plans import validate_plan
from repro.spaces import PlanSpace
from repro.workloads import random_connected_graph, star
from repro.workloads.weights import weighted_query

BOUNDINGS = [
    Bounding.NONE,
    Bounding.ACCUMULATED,
    Bounding.PREDICTED,
    Bounding.ACCUMULATED | Bounding.PREDICTED,
]


@pytest.fixture(scope="module")
def query():
    return weighted_query(random_connected_graph(7, 0.3, 99), 99)


@pytest.fixture(scope="module")
def reference_cost(query):
    return TopDownEnumerator(query, MinCutLazy()).optimize().cost


class TestBoundingTimesMemoPolicy:
    @pytest.mark.parametrize("bounding", BOUNDINGS, ids=["none", "A", "P", "AP"])
    @pytest.mark.parametrize("policy", ["lru", "smallest"])
    @pytest.mark.parametrize("capacity_fraction", [1.0, 0.2, 0.0])
    def test_optimum_survives(
        self, query, reference_cost, bounding, policy, capacity_fraction
    ):
        dry = TopDownEnumerator(query, MinCutLazy())
        dry.optimize()
        capacity = round(capacity_fraction * dry.memo.populated_cells())
        metrics = Metrics()
        memo = MemoTable(capacity=capacity, metrics=metrics, policy=policy)
        plan = TopDownEnumerator(
            query, MinCutLazy(), bounding=bounding, memo=memo, metrics=metrics
        ).optimize()
        assert plan.cost == pytest.approx(reference_cost)
        validate_plan(plan, query, PlanSpace.bushy_cp_free())


class TestBoundingTimesCostModel:
    @pytest.mark.parametrize("bounding", BOUNDINGS, ids=["none", "A", "P", "AP"])
    @pytest.mark.parametrize("model_factory", [CostModel, CoutCostModel],
                             ids=["io", "cout"])
    def test_optimum_per_model(self, query, bounding, model_factory):
        model = model_factory()
        reference = TopDownEnumerator(query, MinCutLazy(), model).optimize()
        plan = TopDownEnumerator(
            query, MinCutLazy(), model, bounding=bounding
        ).optimize()
        assert plan.cost == pytest.approx(reference.cost)


class TestCacheTimesBounding:
    @pytest.mark.parametrize("bounding", BOUNDINGS, ids=["none", "A", "P", "AP"])
    def test_shared_cache_stays_correct(self, bounding):
        """A warm cross-query cache must not corrupt bounded searches."""
        cache = GlobalPlanCache()
        q1 = weighted_query(star(6), 7)
        TopDownEnumerator(q1, MinCutLazy(), memo=cache).optimize()
        # Same statistics, so the cache is warm for q2's subexpressions.
        q2 = weighted_query(star(6), 7)
        cold = TopDownEnumerator(q2, MinCutLazy()).optimize()
        warm = TopDownEnumerator(
            q2, MinCutLazy(), bounding=bounding, memo=cache
        ).optimize()
        assert warm.cost == pytest.approx(cold.cost)


class TestMultiphaseTimesMemoLimit:
    def test_two_phase_with_tight_memos(self):
        """Section 5.2 chaining with each phase under memory pressure is a
        realistic embedded-optimizer configuration."""
        from repro.registry import make_optimizer

        query = weighted_query(random_connected_graph(6, 0.0, 5), 5)
        # Phase 1 under a tight memo.
        phase1 = TopDownEnumerator(
            query, MinCutLeftDeep(), bounding=Bounding.PREDICTED,
            memo=MemoTable(capacity=6),
        ).optimize()
        # Phase 2 seeded, also tight.
        from repro.partition import NaiveBushyCP

        phase2 = TopDownEnumerator(
            query, NaiveBushyCP(), bounding=Bounding.PREDICTED,
            memo=MemoTable(capacity=10),
        ).optimize(initial_plan=phase1)
        reference = make_optimizer("TBCnaive", query).optimize()
        assert phase2.cost == pytest.approx(reference.cost)

    def test_multiphase_result_matches_unconstrained(self):
        query = weighted_query(random_connected_graph(6, 0.4, 11), 11)
        result = optimize_multiphase(query, ["TLNmcP", "TBNmcP", "TBCnaiveP"])
        from repro.registry import make_optimizer

        reference = make_optimizer("TBCnaive", query).optimize()
        assert result.plan.cost == pytest.approx(reference.cost)
        assert [p.algorithm for p in result.phases] == [
            "TLNmcP", "TBNmcP", "TBCnaiveP",
        ]
