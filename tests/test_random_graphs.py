"""Tests for the cyclicity-controlled random graph generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import random_connected_graph


class TestBasics:
    def test_single_vertex(self):
        g = random_connected_graph(1, 0.0, 1)
        assert g.n == 1 and g.edge_count() == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_connected_graph(0, 0.0, 1)

    def test_invalid_cyclicity(self):
        with pytest.raises(ValueError):
            random_connected_graph(5, 1.0, 1)
        with pytest.raises(ValueError):
            random_connected_graph(5, -0.1, 1)

    def test_determinism_from_int_seed(self):
        a = random_connected_graph(10, 0.4, 123)
        b = random_connected_graph(10, 0.4, 123)
        assert a == b

    def test_accepts_random_instance(self):
        rng = random.Random(5)
        g = random_connected_graph(8, 0.3, rng)
        assert g.n == 8

    def test_fresh_rng_without_seed(self):
        g = random_connected_graph(5, 0.0)
        assert g.n == 5 and g.is_connected()


class TestDistribution:
    @given(st.integers(0, 10_000), st.sampled_from([0.0, 0.2, 0.4, 0.7]))
    @settings(max_examples=80)
    def test_always_connected(self, seed, cyclicity):
        g = random_connected_graph(9, cyclicity, seed)
        assert g.is_connected()
        assert g.n == 9

    @given(st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_zero_cyclicity_gives_trees(self, seed):
        g = random_connected_graph(12, 0.0, seed)
        assert g.edge_count() == 11  # exactly a spanning tree

    def test_cyclicity_increases_edges(self):
        """Expected edge count grows with C ~ (n-1)/(1-C)."""
        n = 14
        means = {}
        for c in (0.0, 0.4):
            counts = [
                random_connected_graph(n, c, seed).edge_count()
                for seed in range(60)
            ]
            means[c] = sum(counts) / len(counts)
        assert means[0.0] == n - 1
        assert means[0.4] > means[0.0] * 1.25

    def test_edge_capacity_respected(self):
        # Small n with high C must not loop forever or exceed the clique.
        for seed in range(30):
            g = random_connected_graph(3, 0.9, seed)
            assert g.edge_count() <= 3
