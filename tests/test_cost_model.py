"""Tests for the I/O cost model and the predicted-cost lower bound."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Query
from repro.cost.io_model import CostModel, DEFAULT_BUFFER_PAGES, external_sort_cost
from repro.cost.lower_bounds import scan_lower_bound, subtree_lower_bound
from repro.workloads import chain, random_connected_graph, star
from repro.workloads.weights import weighted_query


@pytest.fixture
def model():
    return CostModel()


@pytest.fixture
def query():
    return Query.uniform(chain(4), cardinality=10_000, selectivity=0.001)


class TestSortCost:
    def test_in_memory(self):
        assert external_sort_cost(50, 102) == 100.0

    def test_external_single_merge(self):
        # 1000 pages, 102-page buffer: 10 runs, one merge pass.
        assert external_sort_cost(1000, 102) == 4000.0

    def test_monotone_in_pages(self):
        costs = [external_sort_cost(p, 102) for p in (10, 100, 1000, 100_000)]
        assert costs == sorted(costs)

    def test_buffer_validation(self):
        with pytest.raises(ValueError):
            CostModel(buffer_pages=2)


class TestScans:
    def test_scan_cost_is_pages(self, model, query):
        [scan] = model.scan_plans(query, 0b0001, None)
        assert scan.cost == query.relations[0].pages
        assert scan.cardinality == 10_000
        assert scan.op == "scan"
        assert scan.relation == "R0"

    def test_ordered_scan_unavailable(self, model, query):
        assert model.scan_plans(query, 0b0001, order=0) == []


class TestJoins:
    def test_three_methods(self, model):
        assert [m.op for m in model.JOIN_METHODS] == ["bnl", "hash", "smj"]

    def test_bnl_formula(self, model):
        # 100 outer pages fit in one buffer load (B-2 = 100).
        assert model.join_operator_cost(model.JOIN_METHODS[0], 100, 50) == 150.0
        # 101 pages need two loads.
        assert model.join_operator_cost(model.JOIN_METHODS[0], 101, 50) == 201.0

    def test_hash_formula(self, model):
        assert model.join_operator_cost(model.JOIN_METHODS[1], 10, 20) == 90.0

    def test_smj_includes_sorts(self, model):
        smj = model.JOIN_METHODS[2]
        expected = external_sort_cost(10, DEFAULT_BUFFER_PAGES) + external_sort_cost(
            20, DEFAULT_BUFFER_PAGES
        ) + 30
        assert model.join_operator_cost(smj, 10, 20) == expected

    def test_bnl_asymmetry(self, model):
        """Nested loops prefers the smaller input as the outer side."""
        small_outer = model.join_operator_cost(model.JOIN_METHODS[0], 100, 10_000)
        large_outer = model.join_operator_cost(model.JOIN_METHODS[0], 10_000, 100)
        assert small_outer != large_outer

    def test_build_join_accumulates_children(self, model, query):
        [left] = model.scan_plans(query, 0b0001, None)
        [right] = model.scan_plans(query, 0b0010, None)
        for method in model.JOIN_METHODS:
            plan = model.build_join(query, method, left, right)
            operator = model.join_operator_cost(
                method, query.pages(0b0001), query.pages(0b0010)
            )
            assert plan.cost == pytest.approx(left.cost + right.cost + operator)
            assert plan.vertices == 0b0011
            assert plan.cardinality == pytest.approx(query.cardinality(0b0011))

    def test_smj_output_order(self, model, query):
        smj = model.JOIN_METHODS[2]
        assert model.join_output_order(query, smj, 0b0001, 0b0010) == 0
        assert model.join_output_order(query, smj, 0b0010, 0b0001) == 1
        # Unordered methods produce no order.
        assert model.join_output_order(query, model.JOIN_METHODS[0], 1, 2) is None

    def test_sort_enforcer(self, model, query):
        [scan] = model.scan_plans(query, 0b0001, None)
        sorted_plan = model.build_sort(query, scan, order=0)
        assert sorted_plan.order == 0
        assert sorted_plan.op == "sort"
        assert sorted_plan.cost > scan.cost


class TestLowerBound:
    def test_base_relations_free(self, model, query):
        assert model.lower_bound(query, 0b0001, 0b0010) == 0.0
        assert scan_lower_bound(query, 0b0001) == 0.0

    def test_intermediates_pay_pages(self, model, query):
        bound = model.lower_bound(query, 0b0011, 0b0100)
        assert bound == pytest.approx(query.pages(0b0011))
        assert subtree_lower_bound(query, 0b0011, 0b1100) == pytest.approx(
            query.pages(0b0011) + query.pages(0b1100)
        )

    @given(st.integers(0, 3000))
    @settings(max_examples=30, deadline=None)
    def test_conservative_for_every_method(self, seed):
        """The Section 4.2 bound never exceeds any join operator's cost."""
        graph = random_connected_graph(6, 0.3, seed)
        query = weighted_query(graph, seed)
        model = CostModel()
        full = graph.all_vertices
        from repro.core.bitset import iter_subsets

        for left in iter_subsets(full, proper=True):
            right = full ^ left
            bound = model.lower_bound(query, left, right)
            for method in model.JOIN_METHODS:
                cost = model.join_operator_cost(
                    method, query.pages(left), query.pages(right)
                )
                assert bound <= cost + 1e-9

    def test_bound_is_finite(self, model):
        q = weighted_query(star(8), 2)
        assert math.isfinite(model.lower_bound(q, 0b0110, 0b1001))
