"""Search-space counting: closed forms and brute-force oracles.

Ono & Lohman (VLDB 1990) quantify the number of join operators an optimal
enumeration must consider for each plan space and join-graph shape; the
paper uses those lower bounds as its optimality yardstick and reports the
sizes in Table 2.  Conventions follow the paper: ``A ⋈ B`` and ``B ⋈ A``
are counted separately (Table 2 footnote), so for example the bushy
with-CP space over ``n`` relations contains ``3^n - 2^(n+1) + 1`` join
operators and the left-deep with-CP space ``n * 2^(n-1) - n``.

Closed forms here reproduce Table 2's own anchors (star n=5: 36 / 64 / 75 /
180); the brute-force counters are exponential-time oracles used by the
test suite to validate both the closed forms and the live algorithm
counters on arbitrary graphs.
"""

from __future__ import annotations

from repro.core.bitset import iter_bits, iter_subsets
from repro.core.joingraph import JoinGraph
from repro.spaces import PlanSpace

__all__ = [
    "count_connected_subgraphs",
    "count_join_operators",
    "count_minimal_cuts",
    "ono_lohman_connected_subgraphs",
    "ono_lohman_join_operators",
    "ono_lohman_minimal_cuts",
]


def count_connected_subgraphs(graph: JoinGraph, min_size: int = 1) -> int:
    """Count vertex subsets of size >= ``min_size`` inducing connected graphs."""
    total = 0
    for subset in iter_subsets(graph.all_vertices):
        if subset.bit_count() >= min_size and graph.is_connected(subset):
            total += 1
    return total


def count_minimal_cuts(graph: JoinGraph, subset: int | None = None) -> int:
    """Count unordered minimal cuts of ``G|_subset`` by brute force."""
    if subset is None:
        subset = graph.all_vertices
    count = 0
    for left in iter_subsets(subset, proper=True):
        right = subset ^ left
        if left < right and graph.is_connected(left) and graph.is_connected(right):
            count += 1
    return count


def count_join_operators(graph: JoinGraph, space: PlanSpace) -> int:
    """Brute-force count of join operators in ``space`` over ``graph``.

    A join operator is an ordered pair ``(V_L, V_R)`` of disjoint non-empty
    sets together with their union ``S``; left-deep spaces require
    ``|V_R| = 1``, CP-free spaces require ``S``, ``V_L`` and ``V_R`` all
    connected.  Exponential — use only for validation at small ``n``.
    """
    cp_free = not space.allows_cartesian_products
    total = 0
    for s in iter_subsets(graph.all_vertices):
        if s.bit_count() < 2:
            continue
        if cp_free and not graph.is_connected(s):
            continue
        if space.is_left_deep:
            for v in iter_bits(s):
                rest = s ^ (1 << v)
                if cp_free and not graph.is_connected(rest):
                    continue
                total += 1
        else:
            for left in iter_subsets(s, proper=True):
                right = s ^ left
                if cp_free and not (
                    graph.is_connected(left) and graph.is_connected(right)
                ):
                    continue
                total += 1
    return total


def ono_lohman_join_operators(topology: str, n: int, space: PlanSpace) -> int:
    """Closed-form join-operator counts for canonical topologies.

    Supported topologies: ``chain``, ``star``, ``clique``, ``cycle``.
    With-CP spaces depend only on ``n``; CP-free forms are per-topology.
    Raises ``ValueError`` for unsupported combinations.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if topology not in {"chain", "star", "clique", "cycle"}:
        raise ValueError(f"unknown topology {topology!r}")
    if topology == "cycle" and n < 3:
        raise ValueError("cycle needs n >= 3")

    if space.allows_cartesian_products:
        if space.is_left_deep:
            return n * 2 ** (n - 1) - n
        return 3**n - 2 ** (n + 1) + 1

    if space.is_left_deep:
        if topology == "chain":
            return n * (n - 1)
        if topology == "star":
            return 0 if n == 1 else (n - 1) * (2 ** (n - 2) + 1)
        if topology == "clique":
            return n * 2 ** (n - 1) - n
        # cycle: every arc of length 2..n-1 has its 2 endpoints removable;
        # the full cycle has all n vertices removable.
        return 2 * (n - 2) * n + n if n >= 3 else 0

    # Bushy CP-free.
    if topology == "chain":
        return (n**3 - n) // 3
    if topology == "star":
        return 0 if n == 1 else (n - 1) * 2 ** (n - 1)
    if topology == "clique":
        return 3**n - 2 ** (n + 1) + 1
    # cycle: each of the n*(k-1) arcs of length k in 2..n-1 splits at k-1
    # interior points; the full cycle splits into any of the n(n-1)/2
    # complementary arc pairs.  Ordered: n(n-1)(n-2) + n(n-1) = n(n-1)^2.
    return n * (n - 1) ** 2


def ono_lohman_connected_subgraphs(topology: str, n: int) -> int:
    """Closed-form connected-subgraph (csg) counts for canonical topologies.

    The csg count is the number of memoized expressions an exhaustive
    top-down bushy CP-free enumeration populates (Section 3.1), and the
    #csg half of the csg-cmp characterization of DPccp's search space:

    * ``chain``: every arc, ``n (n + 1) / 2``;
    * ``star``: any hub-containing subset plus the spoke singletons,
      ``2^(n-1) + n - 1``;
    * ``cycle``: ``n`` arcs of each length ``1 .. n-1`` plus the full
      cycle, ``n (n - 1) + 1``;
    * ``clique``: every non-empty subset, ``2^n - 1``.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if topology == "chain":
        return n * (n + 1) // 2
    if topology == "star":
        return 2 ** (n - 1) + n - 1
    if topology == "clique":
        return 2**n - 1
    if topology == "cycle":
        if n < 3:
            raise ValueError("cycle needs n >= 3")
        return n * (n - 1) + 1
    raise ValueError(f"unknown topology {topology!r}")


def ono_lohman_minimal_cuts(topology: str, n: int) -> int:
    """Closed-form unordered minimal-cut counts for canonical topologies.

    For any acyclic graph the count equals ``|E| = n - 1`` (Section 3.3.1),
    so ``chain`` and ``star`` share a formula.  Cliques have every
    non-trivial bipartition as a cut; cycles cut at any pair of edges.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if topology in {"chain", "star", "tree"}:
        return max(0, n - 1)
    if topology == "clique":
        return 2 ** (n - 1) - 1
    if topology == "cycle":
        if n < 3:
            raise ValueError("cycle needs n >= 3")
        return n * (n - 1) // 2
    raise ValueError(f"unknown topology {topology!r}")
