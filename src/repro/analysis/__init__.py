"""Analysis utilities: instrumentation counters and search-space counting."""

from repro.analysis.metrics import Metrics
from repro.analysis.counting import (
    count_connected_subgraphs,
    count_join_operators,
    count_minimal_cuts,
    ono_lohman_join_operators,
    ono_lohman_minimal_cuts,
)

__all__ = [
    "Metrics",
    "count_connected_subgraphs",
    "count_join_operators",
    "count_minimal_cuts",
    "ono_lohman_join_operators",
    "ono_lohman_minimal_cuts",
]
