"""Machine-independent instrumentation counters.

The paper's Java prototype reports CPU time; a pure-Python reproduction
cannot match absolute timings, so every algorithm here additionally counts
the operations the paper's complexity analysis talks about.  The storage
experiments of Section 4.3.1 and the Columbia comparison of Section 4.3.2
are reproduced directly from these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Counters accumulated during one optimization / partitioning run."""

    #: Ordered partitions emitted by the Partition function.
    partitions_emitted: int = 0
    #: Join operators created and costed (physical operators, all methods).
    join_operators_costed: int = 0
    #: Logical join operators enumerated (one per partition per expression).
    logical_joins_enumerated: int = 0
    #: Connectivity tests performed (naive / optimistic strategies).
    connectivity_tests: int = 0
    #: Connectivity tests that failed (wasted work).
    failed_connectivity_tests: int = 0
    #: Biconnection trees built (MinCutEager/MinCutLazy).
    bcc_trees_built: int = 0
    #: Usability tests run (MinCutLazy).
    usability_tests: int = 0
    #: Usability tests that allowed reuse of the parent tree.
    usability_hits: int = 0
    #: Memo lookups and hits.
    memo_lookups: int = 0
    memo_hits: int = 0
    #: Memo lookups answered by a stored lower bound (Algorithm 7 line 4).
    memo_bound_hits: int = 0
    #: CalcBestJoin invocations (expression expansions).
    expressions_expanded: int = 0
    #: CalcBestJoin invocations on an expression expanded before
    #: (the re-enumeration pathology of Section 4.3.2).
    expressions_reexpanded: int = 0
    #: Subtrees abandoned by accumulated-cost budget exhaustion.
    budget_failures: int = 0
    #: Branches skipped by the predicted-cost lower-bound test.
    predicted_prunes: int = 0
    #: Cells evicted from a bounded memo (Section 5.1).
    memo_evictions: int = 0
    #: Evicted cells demoted into a cold tier instead of dropped.
    memo_demotions: int = 0
    #: Memo lookups answered by promoting a cold-tier entry.
    memo_cold_hits: int = 0
    #: Memo lookups answered read-through from a shared cross-query cache.
    memo_shared_hits: int = 0
    #: Peak number of populated memo cells (plans + lower bounds).
    peak_memo_cells: int = 0
    #: Plans stored in the memo at end of run.
    final_memo_plans: int = 0
    #: Lower bounds stored in the memo at end of run.
    final_memo_bounds: int = 0
    #: Subproblem tasks dispatched to parallel workers (repro.parallel).
    parallel_tasks: int = 0
    #: Worker memo entries folded into the parent memo (repro.parallel).
    parallel_entries_merged: int = 0
    #: Memo-missed expression computations charged against an anytime budget.
    anytime_nodes_spent: int = 0
    #: Anytime searches interrupted by budget exhaustion (repro.anytime).
    anytime_interrupts: int = 0
    #: Expressions given ranked (top-k) memo cells by ``optimize_topk``.
    topk_expressions_ranked: int = 0
    #: Join candidates fed to the lazy k-best frontier across all cells.
    topk_candidates_ranked: int = 0

    _expanded_sets: set[tuple[int, object]] = field(
        default_factory=set, repr=False, compare=False
    )

    #: Fields that are run-wide gauges rather than additive counters.
    GAUGE_FIELDS = ("peak_memo_cells", "final_memo_plans", "final_memo_bounds")

    def note_expansion(self, key: tuple[int, object]) -> None:
        """Record a CalcBestJoin invocation for ``key = (vertex set, order)``."""
        self.expressions_expanded += 1
        if key in self._expanded_sets:
            self.expressions_reexpanded += 1
        else:
            self._expanded_sets.add(key)

    @property
    def unique_expressions_expanded(self) -> int:
        """Number of distinct logical expressions expanded so far."""
        return len(self._expanded_sets)

    def as_dict(self) -> dict[str, int]:
        """Counter values as a plain dict (private bookkeeping excluded)."""
        result = {name: getattr(self, name) for name in _COUNTER_FIELDS}
        result["unique_expressions_expanded"] = self.unique_expressions_expanded
        return result

    def to_dict(self) -> dict[str, int]:
        """Alias of :meth:`as_dict`, used by the JSON exporters."""
        return self.as_dict()

    def snapshot(self) -> dict[str, int]:
        """Cheap point-in-time copy of every additive counter.

        Paired with :meth:`diff` by the span tracer to attribute counter
        activity to individual recursion steps.  Gauges
        (``peak_memo_cells``, ``final_memo_plans``, ``final_memo_bounds``)
        are excluded: they are not additive, so per-span deltas would be
        meaningless.
        """
        return {name: getattr(self, name) for name in _ADDITIVE_FIELDS}

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Nonzero per-counter deltas since ``before`` (a :meth:`snapshot`)."""
        result: dict[str, int] = {}
        for name in _ADDITIVE_FIELDS:
            delta = getattr(self, name) - before.get(name, 0)
            if delta:
                result[name] = delta
        return result

    def merge(self, other: "Metrics") -> None:
        """Accumulate ``other`` into ``self`` (used by multi-phase runs)."""
        for f in fields(self):
            if f.name.startswith("_"):
                continue
            if f.name == "peak_memo_cells":
                self.peak_memo_cells = max(self.peak_memo_cells, other.peak_memo_cells)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        self._expanded_sets |= other._expanded_sets


#: Public counter field names, resolved once (snapshot/diff are hot).
_COUNTER_FIELDS = tuple(
    f.name for f in fields(Metrics) if not f.name.startswith("_")
)
_ADDITIVE_FIELDS = tuple(
    name for name in _COUNTER_FIELDS if name not in Metrics.GAUGE_FIELDS
)
