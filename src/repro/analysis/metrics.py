"""Machine-independent instrumentation counters.

The paper's Java prototype reports CPU time; a pure-Python reproduction
cannot match absolute timings, so every algorithm here additionally counts
the operations the paper's complexity analysis talks about.  The storage
experiments of Section 4.3.1 and the Columbia comparison of Section 4.3.2
are reproduced directly from these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Counters accumulated during one optimization / partitioning run."""

    #: Ordered partitions emitted by the Partition function.
    partitions_emitted: int = 0
    #: Join operators created and costed (physical operators, all methods).
    join_operators_costed: int = 0
    #: Logical join operators enumerated (one per partition per expression).
    logical_joins_enumerated: int = 0
    #: Connectivity tests performed (naive / optimistic strategies).
    connectivity_tests: int = 0
    #: Connectivity tests that failed (wasted work).
    failed_connectivity_tests: int = 0
    #: Biconnection trees built (MinCutEager/MinCutLazy).
    bcc_trees_built: int = 0
    #: Usability tests run (MinCutLazy).
    usability_tests: int = 0
    #: Usability tests that allowed reuse of the parent tree.
    usability_hits: int = 0
    #: Memo lookups and hits.
    memo_lookups: int = 0
    memo_hits: int = 0
    #: Memo lookups answered by a stored lower bound (Algorithm 7 line 4).
    memo_bound_hits: int = 0
    #: CalcBestJoin invocations (expression expansions).
    expressions_expanded: int = 0
    #: CalcBestJoin invocations on an expression expanded before
    #: (the re-enumeration pathology of Section 4.3.2).
    expressions_reexpanded: int = 0
    #: Subtrees abandoned by accumulated-cost budget exhaustion.
    budget_failures: int = 0
    #: Branches skipped by the predicted-cost lower-bound test.
    predicted_prunes: int = 0
    #: Cells evicted from a bounded memo (Section 5.1).
    memo_evictions: int = 0
    #: Peak number of populated memo cells (plans + lower bounds).
    peak_memo_cells: int = 0
    #: Plans stored in the memo at end of run.
    final_memo_plans: int = 0
    #: Lower bounds stored in the memo at end of run.
    final_memo_bounds: int = 0

    _expanded_sets: set[tuple[int, object]] = field(
        default_factory=set, repr=False, compare=False
    )

    def note_expansion(self, key: tuple[int, object]) -> None:
        """Record a CalcBestJoin invocation for ``key = (vertex set, order)``."""
        self.expressions_expanded += 1
        if key in self._expanded_sets:
            self.expressions_reexpanded += 1
        else:
            self._expanded_sets.add(key)

    @property
    def unique_expressions_expanded(self) -> int:
        """Number of distinct logical expressions expanded so far."""
        return len(self._expanded_sets)

    def as_dict(self) -> dict[str, int]:
        """Counter values as a plain dict (private bookkeeping excluded)."""
        result = {}
        for f in fields(self):
            if f.name.startswith("_"):
                continue
            result[f.name] = getattr(self, f.name)
        result["unique_expressions_expanded"] = self.unique_expressions_expanded
        return result

    def merge(self, other: "Metrics") -> None:
        """Accumulate ``other`` into ``self`` (used by multi-phase runs)."""
        for f in fields(self):
            if f.name.startswith("_"):
                continue
            if f.name == "peak_memo_cells":
                self.peak_memo_cells = max(self.peak_memo_cells, other.peak_memo_cells)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        self._expanded_sets |= other._expanded_sets
