"""A tuple-at-a-time execution engine for physical plan trees.

Executes the three physical join operators with genuinely different
mechanics — block-nested-loop probing, hash build/probe, and sort-merge
with group cross-products — plus scans and the sort enforcer.  All three
joins implement the same logical semantics (equi-join on every predicate
crossing the two inputs; a cross product when none does), so every plan
an optimizer produces for a query must execute to the same result set.
"""

from __future__ import annotations

from itertools import product

from repro.exec.datagen import SyntheticDatabase
from repro.plans.physical import Plan

__all__ = ["ExecutionEngine", "execute_plan"]


class ExecutionEngine:
    """Executes plans against one :class:`SyntheticDatabase`."""

    def __init__(self, database: SyntheticDatabase) -> None:
        self.database = database
        self.query = database.query

    # -- public API --------------------------------------------------------

    def execute(self, plan: Plan) -> list[dict]:
        """Run ``plan`` and return its output rows."""
        handler = {
            "scan": self._run_scan,
            "iscan": self._run_index_scan,
            "sort": self._run_sort,
            "bnl": self._run_block_nested_loop,
            "hash": self._run_hash_join,
            "smj": self._run_sort_merge_join,
        }.get(plan.op)
        if handler is None:
            raise ValueError(f"unknown physical operator {plan.op!r}")
        return handler(plan)

    def result_signature(self, plan: Plan) -> frozenset:
        """The result as a set of base-row combinations.

        Two plans for the same query are semantically equivalent iff their
        signatures are equal — the invariant the test suite checks across
        every enumeration algorithm.
        """
        return frozenset(row["_rids"] for row in self.execute(plan))

    # -- operators ------------------------------------------------------------

    def _run_scan(self, plan: Plan) -> list[dict]:
        vertex = plan.vertices.bit_length() - 1
        return list(self.database.tables[vertex])

    def _run_index_scan(self, plan: Plan) -> list[dict]:
        rows = self._run_scan(plan)
        column = self._order_column(plan.order, plan.vertices)
        if column is None:
            return rows
        return sorted(rows, key=lambda r: r[column])

    def _run_sort(self, plan: Plan) -> list[dict]:
        rows = self.execute(plan.children[0])
        column = self._order_column(plan.order, plan.vertices)
        if column is None:
            return sorted(rows, key=lambda r: sorted(r["_rids"]))
        return sorted(rows, key=lambda r: r[column])

    def _run_block_nested_loop(self, plan: Plan) -> list[dict]:
        left_rows = self.execute(plan.children[0])
        right_rows = self.execute(plan.children[1])
        columns = self._crossing_columns(plan)
        output = []
        for left in left_rows:  # outer
            for right in right_rows:  # inner, re-scanned per outer row
                if all(left[c] == right[c] for c in columns):
                    output.append(self._merge(left, right))
        return output

    def _run_hash_join(self, plan: Plan) -> list[dict]:
        left_rows = self.execute(plan.children[0])
        right_rows = self.execute(plan.children[1])
        columns = self._crossing_columns(plan)
        buckets: dict[tuple, list[dict]] = {}
        for row in left_rows:  # build on the left input
            buckets.setdefault(tuple(row[c] for c in columns), []).append(row)
        output = []
        for right in right_rows:  # probe with the right input
            for left in buckets.get(tuple(right[c] for c in columns), ()):
                output.append(self._merge(left, right))
        return output

    def _run_sort_merge_join(self, plan: Plan) -> list[dict]:
        left_rows = self.execute(plan.children[0])
        right_rows = self.execute(plan.children[1])
        columns = self._crossing_columns(plan)
        if not columns:
            # Pure cross product: merge-join semantics degenerate.
            return [self._merge(l, r) for l, r in product(left_rows, right_rows)]

        def key(row):
            return tuple(row[c] for c in columns)

        left_sorted = sorted(left_rows, key=key)
        right_sorted = sorted(right_rows, key=key)
        output = []
        i = j = 0
        while i < len(left_sorted) and j < len(right_sorted):
            left_key, right_key = key(left_sorted[i]), key(right_sorted[j])
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                i_end = i
                while i_end < len(left_sorted) and key(left_sorted[i_end]) == left_key:
                    i_end += 1
                j_end = j
                while j_end < len(right_sorted) and key(right_sorted[j_end]) == left_key:
                    j_end += 1
                for left in left_sorted[i:i_end]:
                    for right in right_sorted[j:j_end]:
                        output.append(self._merge(left, right))
                i, j = i_end, j_end
        return output

    # -- helpers ---------------------------------------------------------------

    def _crossing_columns(self, plan: Plan) -> list[str]:
        """Key columns of every predicate crossing the join's inputs."""
        left = plan.children[0].vertices
        right = plan.children[1].vertices
        columns = []
        for (u, v) in self.query.selectivity:
            u_left = left >> u & 1
            v_left = left >> v & 1
            u_right = right >> u & 1
            v_right = right >> v & 1
            if (u_left and v_right) or (u_right and v_left):
                columns.append(SyntheticDatabase.key_column(u, v))
        return sorted(columns)

    def _order_column(self, order: int | None, vertices: int) -> str | None:
        """Column realizing an order token (sorted on relation ``order``)."""
        if order is None:
            return None
        for (u, v) in sorted(self.query.selectivity):
            if order in (u, v) and vertices >> u & 1 and vertices >> v & 1:
                return SyntheticDatabase.key_column(u, v)
        for (u, v) in sorted(self.query.selectivity):
            if order in (u, v):
                return SyntheticDatabase.key_column(u, v)
        return None

    @staticmethod
    def _merge(left: dict, right: dict) -> dict:
        merged = dict(left)
        merged.update(right)
        merged["_rids"] = left["_rids"] | right["_rids"]
        return merged


def execute_plan(plan: Plan, database: SyntheticDatabase) -> list[dict]:
    """One-shot convenience wrapper around :class:`ExecutionEngine`."""
    return ExecutionEngine(database).execute(plan)
