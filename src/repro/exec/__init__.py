"""Plan execution: synthetic data and a tuple-at-a-time engine.

The paper stops at plan *costs*; a downstream user also wants to run the
plans.  This subpackage generates synthetic tables whose join behaviour
matches the catalog's statistics (each predicate's selectivity is realized
as a shared key domain of size ``~1/selectivity``) and executes physical
plan trees with real block-nested-loop, hash, and sort-merge joins.

Its second job is validation: every plan the optimizers produce for the
same query must yield the *same result set* when executed — an
end-to-end invariant the test suite checks across algorithms, spaces, and
plan shapes.
"""

from repro.exec.datagen import SyntheticDatabase, generate_database
from repro.exec.engine import ExecutionEngine, execute_plan

__all__ = [
    "SyntheticDatabase",
    "generate_database",
    "ExecutionEngine",
    "execute_plan",
]
