"""Synthetic table generation matching a query's statistics.

Each relation becomes a table of row tuples.  For every join predicate
``(u, v)`` with selectivity ``s`` the two relations share a key column
whose values are drawn uniformly from a domain of size ``round(1/s)``;
under independence the expected fraction of matching pairs is then ``s``,
so executed result sizes track the optimizer's cardinality estimates.

Row counts are the catalog cardinalities scaled down by ``max_rows``
(executing 5e7-tuple fact tables in pure Python is not the point); the
scaling preserves *relative* sizes, which is what plan-shape comparisons
need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.query import Query
from repro.workloads.seeding import coerce_rng

__all__ = ["SyntheticDatabase", "generate_database"]


@dataclass(frozen=True)
class SyntheticDatabase:
    """Generated tables for one query.

    ``tables[v]`` is a list of rows; each row is a dict mapping column
    names to values.  Every row carries ``"_rids"``, a frozenset of
    (vertex, index) provenance ids, so executed results can be compared as
    sets of base-row combinations regardless of plan shape.
    ``key_column(u, v)`` names the shared join column of edge ``(u, v)``.
    """

    query: Query
    tables: tuple[tuple[dict, ...], ...]
    domains: dict[tuple[int, int], int]

    @staticmethod
    def key_column(u: int, v: int) -> str:
        """Name of the shared join-key column of edge ``(u, v)``."""
        a, b = (u, v) if u < v else (v, u)
        return f"k_{a}_{b}"

    def row_count(self, v: int) -> int:
        """Number of generated rows in relation ``v``."""
        return len(self.tables[v])


def generate_database(
    query: Query,
    rng: random.Random | int | None = None,
    max_rows: int = 64,
    min_rows: int = 2,
    max_domain: int = 10_000,
) -> SyntheticDatabase:
    """Generate tables whose join selectivities approximate the catalog's.

    Cardinalities are scaled so the largest relation has ``max_rows`` rows
    (and every relation has at least ``min_rows``).  Key domains are capped
    at ``max_domain`` so extremely selective predicates still produce a few
    matches at demo row counts.
    """
    rng = coerce_rng(rng)
    if max_rows < min_rows:
        raise ValueError("max_rows must be >= min_rows")

    largest = max(r.cardinality for r in query.relations)
    scale = max_rows / largest if largest > 0 else 1.0

    row_counts = [
        max(min_rows, min(max_rows, round(r.cardinality * scale)))
        for r in query.relations
    ]

    domains: dict[tuple[int, int], int] = {}
    for (u, v), selectivity in query.selectivity.items():
        domains[(u, v)] = min(max_domain, max(1, round(1.0 / selectivity)))

    tables = []
    for vertex in range(query.n):
        rows = []
        incident = [edge for edge in domains if vertex in edge]
        count = row_counts[vertex]
        for index in range(count):
            row = {"_rids": frozenset({(vertex, index)})}
            for edge in incident:
                domain = domains[edge]
                if count >= domain:
                    # Primary-key-like side: cover the whole domain
                    # round-robin (still uniform, so the realized match
                    # probability stays 1/domain), guaranteeing that small
                    # dimension tables are joinable.
                    value = index % domain
                else:
                    value = rng.randrange(domain)
                row[SyntheticDatabase.key_column(*edge)] = value
            rows.append(row)
        tables.append(tuple(rows))

    return SyntheticDatabase(query=query, tables=tuple(tables), domains=domains)
