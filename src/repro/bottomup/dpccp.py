"""DPccp: connected-subgraph complement pair enumeration (BBNccp).

Moerkotte & Neumann (VLDB 2006): the optimal *bottom-up* algorithm for
bushy CP-free plans, which the paper's top-down TBNMC is designed to
match.  The enumeration grows connected subgraphs (csg) from each vertex
using breadth-limited neighbourhood expansion, and for each csg grows the
connected complements (cmp) it can join with, emitting every
csg-cmp-pair exactly once and in an order where both sides' optimal
plans are already in the table.

Notation follows the original: ``B_i`` is the mask of vertices with index
``<= i``; ``N(S)`` the neighbourhood of ``S``.
"""

from __future__ import annotations

from repro.analysis.metrics import Metrics
from repro.bottomup.base import BottomUpOptimizer
from repro.catalog.query import Query
from repro.core.bitset import iter_bits, iter_subsets
from repro.cost.io_model import CostModel
from repro.spaces import PlanSpace

__all__ = ["DPccp"]


class DPccp(BottomUpOptimizer):
    """Optimal bottom-up enumeration of bushy CP-free join trees."""

    space = PlanSpace.bushy_cp_free()

    def __init__(
        self,
        query: Query,
        cost_model: CostModel | None = None,
        *,
        metrics: Metrics | None = None,
        tracer=None,
        registry=None,
    ) -> None:
        super().__init__(
            query, cost_model, metrics=metrics, tracer=tracer, registry=registry
        )

    def _run(self) -> None:
        graph = self.query.graph
        n = graph.n
        for i in range(n - 1, -1, -1):
            start = 1 << i
            forbidden = (1 << (i + 1)) - 1  # B_i = vertices numbered <= i
            self._emit_csg(start)
            self._enumerate_csg_rec(start, forbidden)

    # -- csg enumeration ---------------------------------------------------------

    def _enumerate_csg_rec(self, subgraph: int, forbidden: int) -> None:
        """Extend ``subgraph`` by subsets of its non-forbidden neighbourhood."""
        graph = self.query.graph
        neighbourhood = graph.neighbors_of_set(subgraph) & ~forbidden
        if neighbourhood == 0:
            return
        for extension in iter_subsets(neighbourhood):
            self._emit_csg(subgraph | extension)
        blocked = forbidden | neighbourhood
        for extension in iter_subsets(neighbourhood):
            self._enumerate_csg_rec(subgraph | extension, blocked)

    def _emit_csg(self, csg: int) -> None:
        """A connected subgraph was enumerated: pair it with complements."""
        if csg & (csg - 1):
            # Non-singleton csgs appear here after all of their connected
            # strict subsets, so all complement pairs below have plans.
            pass
        self._enumerate_cmp(csg)

    # -- cmp enumeration -----------------------------------------------------------

    def _enumerate_cmp(self, csg: int) -> None:
        """Enumerate connected complements of ``csg`` and cost the joins."""
        graph = self.query.graph
        min_vertex = (csg & -csg).bit_length() - 1
        forbidden = ((1 << (min_vertex + 1)) - 1) | csg
        neighbourhood = graph.neighbors_of_set(csg) & ~forbidden
        if neighbourhood == 0:
            return
        for v in sorted(iter_bits(neighbourhood)):
            cmp_start = 1 << v
            self._emit_ccp(csg, cmp_start)
            below_v = (1 << (v + 1)) - 1
            self._enumerate_cmp_rec(
                csg, cmp_start, forbidden | (below_v & neighbourhood)
            )

    def _enumerate_cmp_rec(self, csg: int, cmp: int, forbidden: int) -> None:
        graph = self.query.graph
        neighbourhood = graph.neighbors_of_set(cmp) & ~forbidden & ~csg
        if neighbourhood == 0:
            return
        for extension in iter_subsets(neighbourhood):
            extended = cmp | extension
            if graph.connects(csg, extended):
                self._emit_ccp(csg, extended)
        blocked = forbidden | neighbourhood
        for extension in iter_subsets(neighbourhood):
            self._enumerate_cmp_rec(csg, cmp | extension, blocked)

    def _emit_ccp(self, left: int, right: int) -> None:
        """Cost a csg-cmp pair in both join orders (the paper counts both)."""
        self.metrics.partitions_emitted += 2
        self._consider_join(left, right)
        self._consider_join(right, left)
