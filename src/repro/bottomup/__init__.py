"""Bottom-up join enumeration baselines.

Implements the bottom-up side of the paper's Table 1:

* size-driven compositional dynamic programming (System-R generalized to
  bushy trees — ``DPsize``; the paper's BLNsize / BLCsize / BBNsize /
  BBCsize);
* subset-driven partitioning dynamic programming (Vance & Maier —
  ``DPsub``; BBNnaive / BBCnaive);
* connected-subgraph complement pairs (Moerkotte & Neumann — ``DPccp``;
  BBNccp), the bottom-up algorithm whose optimality the paper's top-down
  TBNMC matches.
"""

from repro.bottomup.base import BottomUpOptimizer
from repro.bottomup.size_driven import DPsize
from repro.bottomup.subset_driven import DPsub
from repro.bottomup.dpccp import DPccp

__all__ = ["BottomUpOptimizer", "DPsize", "DPsub", "DPccp"]
