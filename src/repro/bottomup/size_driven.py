"""Size-driven compositional dynamic programming (DPsize).

Section 2.1: System-R's strategy generalized to bushy trees.  Expressions
are optimized strictly by increasing size; for each target size the
algorithm pairs every optimized expression of size ``s1`` with every
optimized expression of size ``s - s1`` and discards pairs that overlap
(and, in CP-free spaces, pairs not joined by a predicate).  The attempted
compositions of overlapping sets are the well-known inefficiency of this
method [Vance & Maier]; for CP-free spaces the generate-and-test against
disconnected pairs makes it worse [Moerkotte & Neumann].
"""

from __future__ import annotations

from repro.analysis.metrics import Metrics
from repro.bottomup.base import BottomUpOptimizer
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.spaces import PlanSpace

__all__ = ["DPsize"]


class DPsize(BottomUpOptimizer):
    """Size-driven DP for any of the four plan spaces.

    ``space`` picks the paper's BLNsize / BLCsize / BBNsize / BBCsize.
    """

    def __init__(
        self,
        query: Query,
        space: PlanSpace = PlanSpace.bushy_cp_free(),
        cost_model: CostModel | None = None,
        *,
        metrics: Metrics | None = None,
        tracer=None,
        registry=None,
    ) -> None:
        super().__init__(
            query, cost_model, metrics=metrics, tracer=tracer, registry=registry
        )
        self.space = space

    def _run(self) -> None:
        graph = self.query.graph
        n = graph.n
        cp_free = not self.space.allows_cartesian_products
        left_deep = self.space.is_left_deep
        metrics = self.metrics

        by_size: list[list[int]] = [[] for _ in range(n + 1)]
        for v in range(n):
            by_size[1].append(1 << v)

        for size in range(2, n + 1):
            if left_deep:
                split_sizes = [size - 1]  # right side is always a singleton
            else:
                split_sizes = range(1, size)
            new_masks: list[int] = []
            for left_size in split_sizes:
                right_size = size - left_size
                for left in by_size[left_size]:
                    for right in by_size[right_size]:
                        metrics.partitions_emitted += 1
                        if left & right:
                            continue  # overlapping sets: wasted composition
                        if cp_free:
                            metrics.connectivity_tests += 1
                            if not graph.connects(left, right):
                                metrics.failed_connectivity_tests += 1
                                continue
                        combined = left | right
                        if combined not in self.plans:
                            new_masks.append(combined)
                        self._consider_join(left, right)
            # Deduplicate: several pairs produce the same combined mask.
            by_size[size] = sorted(set(new_masks))
