"""Subset-driven partitioning dynamic programming (DPsub, Vance & Maier).

Section 2.2: enumeration is driven by the target set ``V`` (in an order
where all subsets precede their supersets — increasing numeric mask order
suffices), which is then partitioned into every choice of ``(V1, V2)``.
For CP-free spaces the subset generation is naive — oblivious to the
query graph — so it generates large numbers of cartesian-product splits
that are all discarded, the inefficiency the paper's Figure 9 exhibits
for BBNnaive.
"""

from __future__ import annotations

from repro.analysis.metrics import Metrics
from repro.bottomup.base import BottomUpOptimizer
from repro.catalog.query import Query
from repro.core.bitset import iter_subsets
from repro.cost.io_model import CostModel
from repro.spaces import PlanSpace

__all__ = ["DPsub"]


class DPsub(BottomUpOptimizer):
    """Subset-driven DP for bushy spaces (the paper's BBNnaive / BBCnaive)."""

    def __init__(
        self,
        query: Query,
        space: PlanSpace = PlanSpace.bushy_cp_free(),
        cost_model: CostModel | None = None,
        *,
        metrics: Metrics | None = None,
        tracer=None,
        registry=None,
    ) -> None:
        if space.is_left_deep:
            raise ValueError(
                "DPsub is a bushy-space algorithm (Table 1 has no left-deep row)"
            )
        super().__init__(
            query, cost_model, metrics=metrics, tracer=tracer, registry=registry
        )
        self.space = space

    def _run(self) -> None:
        graph = self.query.graph
        cp_free = not self.space.allows_cartesian_products
        metrics = self.metrics
        all_vertices = graph.all_vertices

        for target in range(3, all_vertices + 1):
            if target & (target - 1) == 0 or target & ~all_vertices:
                continue  # singleton or out of range
            for left in iter_subsets(target, proper=True):
                right = target ^ left
                metrics.partitions_emitted += 1
                if cp_free:
                    left_plan = self.plans.get(left)
                    right_plan = self.plans.get(right)
                    # A missing plan means the side is disconnected; the
                    # pair is one of the discarded cartesian products.
                    metrics.connectivity_tests += 1
                    if left_plan is None or right_plan is None:
                        metrics.failed_connectivity_tests += 1
                        continue
                    if not graph.connects(left, right):
                        metrics.failed_connectivity_tests += 1
                        continue
                self._consider_join(left, right)
