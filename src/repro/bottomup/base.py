"""Shared machinery for the bottom-up dynamic-programming optimizers."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.obs.registry import TIME_BETWEEN_JOINS, MetricsRegistry
from repro.obs.timing import clock
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.plans.physical import Plan
from repro.spaces import PlanSpace

__all__ = ["BottomUpOptimizer"]


class BottomUpOptimizer(ABC):
    """Base class: a plan table keyed by vertex mask, filled bottom-up.

    Unlike the top-down enumerator, bottom-up dynamic programming writes
    blindly and later performs guaranteed reads (Section 5.1), so the plan
    table here is a plain dict with no eviction support.  Interesting
    orders are not implemented for the bottom-up baselines — exactly as in
    the paper's experimental apparatus, which compares pure enumeration.

    Observability mirrors the top-down enumerator where the paradigm
    allows: there is no recursion to span, so a tracer records one root
    span per :meth:`optimize` call (with full counter deltas), and a
    registry receives the same time-between-joins histogram, keeping the
    paper's optimality metric comparable across paradigms.
    """

    space: PlanSpace

    def __init__(
        self,
        query: Query,
        cost_model: CostModel | None = None,
        *,
        metrics: Metrics | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.query = query
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.metrics = metrics if metrics is not None else Metrics()
        self.plans: dict[int, Plan] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_metrics(self.metrics)
        self.registry = registry
        self._h_join_gap = (
            None if registry is None else registry.histogram(TIME_BETWEEN_JOINS)
        )
        self._last_join_at: float | None = None

    def optimize(self, order: int | None = None) -> Plan:
        """Return the optimal plan for the whole query."""
        if order is not None:
            raise NotImplementedError(
                "interesting orders are a top-down feature in this reproduction"
            )
        self.plans.clear()
        goal = self.query.graph.all_vertices
        tracing = self.tracer.enabled
        if tracing:
            self.tracer.begin(goal, None, "optimize", strategy=type(self).__name__)
        try:
            self._seed_scans()
            self._run()
        finally:
            if tracing:
                found = self.plans.get(goal)
                self.tracer.end(
                    cost=None if found is None else found.cost,
                    failed=found is None,
                )
        try:
            plan = self.plans[goal]
        except KeyError:
            raise RuntimeError("bottom-up search produced no complete plan") from None
        self.metrics.final_memo_plans = len(self.plans)
        self.metrics.peak_memo_cells = max(
            self.metrics.peak_memo_cells, len(self.plans)
        )
        return plan

    def _seed_scans(self) -> None:
        """Populate the table with the cheapest scan for every relation."""
        for v in range(self.query.n):
            subset = 1 << v
            best = None
            for scan in self.cost_model.scan_plans(self.query, subset, None):
                if best is None or scan.cost < best.cost:
                    best = scan
            assert best is not None, "cost model must provide a scan"
            self.plans[subset] = best

    def _consider_join(self, left: int, right: int) -> None:
        """Cost every join method for ``(left, right)`` and keep the best.

        Both masks must already have plans in the table.
        """
        left_plan = self.plans[left]
        right_plan = self.plans[right]
        combined = left | right
        incumbent = self.plans.get(combined)
        metrics = self.metrics
        metrics.logical_joins_enumerated += 1
        for method in self.cost_model.JOIN_METHODS:
            plan = self.cost_model.build_join(
                self.query, method, left_plan, right_plan
            )
            metrics.join_operators_costed += 1
            if self._h_join_gap is not None:
                # First observation is a zero gap so that
                # histogram.count == join_operators_costed (see the
                # top-down enumerator's _note_join_costed).
                now = clock()
                if self._last_join_at is not None:
                    self._h_join_gap.observe((now - self._last_join_at) * 1e6)
                else:
                    self._h_join_gap.observe(0.0)
                self._last_join_at = now
            if incumbent is None or plan.cost < incumbent.cost:
                incumbent = plan
        self.plans[combined] = incumbent

    @abstractmethod
    def _run(self) -> None:
        """Fill the plan table for all non-singleton expressions."""
