"""Eviction policies for capacity-bounded memo tables.

The paper's experiments evict by recency (``lru``); Section 5.1 suggests
weighting eviction by the logical description instead (``smallest``).
The cost-aware policies go further: ``cost`` scores every cell
GreedyDual-style — a monotonically rising global *inflation* value plus
the cell's recompute weight — so cheap-to-recompute cells age out first
while expensive cells survive unless untouched for a long time;
``profile`` runs the same mechanism on offline weights from a prior
run's trace (:class:`~repro.cache.costing.CostProfile`).

A policy never owns the cells: the :class:`~repro.memo.MemoTable` keeps
its ``OrderedDict`` and per-key weights, and the policy is consulted on
store/access/evict.  All victim selection is deterministic (ties break
toward the oldest cell), so bounded-memo runs reproduce exactly.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, Callable, Hashable

__all__ = [
    "EvictionPolicy",
    "LRUPolicy",
    "SmallestPolicy",
    "CostPolicy",
    "ProfilePolicy",
    "POLICY_NAMES",
    "make_policy",
]

#: Every selectable policy name, in documentation order.
POLICY_NAMES = ("lru", "smallest", "cost", "profile")


class EvictionPolicy:
    """Victim-selection strategy consulted by :class:`~repro.memo.MemoTable`.

    ``uses_weights`` tells the table whether to maintain per-cell
    recompute weights (measured seconds, profile entries, or the logical
    proxy) — recency-only policies skip that bookkeeping entirely.
    """

    name: str = "?"
    uses_weights: bool = False
    _weight_of: Callable[[Hashable], float]

    def bind(self, weight_of: Callable[[Hashable], float]) -> None:
        """Attach the table's per-key weight accessor."""
        self._weight_of = weight_of

    def on_store(self, cells: OrderedDict[Hashable, Any], key: Hashable) -> None:
        """A cell was inserted (already present in ``cells``)."""

    def touch(self, cells: OrderedDict[Hashable, Any], key: Hashable) -> None:
        """A *plan* cell was served from the hot tier."""

    def on_remove(self, key: Hashable) -> None:
        """A cell left the hot tier (eviction or clear)."""

    def choose_victim(self, cells: OrderedDict[Hashable, Any]) -> Hashable:
        """Pick the cell to evict; ``cells`` is non-empty."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all per-key state (table cleared)."""


class LRUPolicy(EvictionPolicy):
    """The paper's baseline: evict the least-recently-used cell."""

    name = "lru"

    def on_store(self, cells: OrderedDict[Hashable, Any], key: Hashable) -> None:
        cells.move_to_end(key)

    def touch(self, cells: OrderedDict[Hashable, Any], key: Hashable) -> None:
        cells.move_to_end(key)

    def choose_victim(self, cells: OrderedDict[Hashable, Any]) -> Hashable:
        return next(iter(cells))


class SmallestPolicy(EvictionPolicy):
    """Section 5.1's suggestion: evict the smallest expression first.

    Small expressions are the cheapest to recompute; the weight is read
    straight off the key (popcount of the subset mask, ties toward the
    numerically smallest mask), so no per-cell bookkeeping is needed.
    """

    name = "smallest"

    @staticmethod
    def _key_weight(key: Hashable) -> tuple[int, int]:
        if isinstance(key, tuple) and key and isinstance(key[0], int):
            return (key[0].bit_count(), key[0])
        return (0, 0)

    def choose_victim(self, cells: OrderedDict[Hashable, Any]) -> Hashable:
        return min(cells, key=self._key_weight)


class CostPolicy(EvictionPolicy):
    """GreedyDual benefit/weight eviction (cost-aware, recency-aged).

    Classic GreedyDual: each cell's score is ``inflation + weight`` at
    store/access time, where ``weight`` is the cell's recompute cost and
    ``inflation`` is bumped to the victim's score on every eviction.
    Cells with small recompute cost are cheap losses and go first;
    expensive cells persist until the inflation has grown past their
    weight — i.e. until enough cheap evictions happened since they were
    last useful.  Ties break toward the oldest cell, keeping victim
    choice deterministic.
    """

    name = "cost"
    uses_weights = True

    def __init__(self) -> None:
        self._scores: dict[Hashable, float] = {}
        self._inflation = 0.0

    def on_store(self, cells: OrderedDict[Hashable, Any], key: Hashable) -> None:
        self._scores[key] = self._inflation + self._weight_of(key)

    def touch(self, cells: OrderedDict[Hashable, Any], key: Hashable) -> None:
        self._scores[key] = self._inflation + self._weight_of(key)

    def on_remove(self, key: Hashable) -> None:
        self._scores.pop(key, None)

    def choose_victim(self, cells: OrderedDict[Hashable, Any]) -> Hashable:
        scores = self._scores
        victim: Hashable = None
        lowest = math.inf
        for key in cells:  # insertion order => deterministic tie-break
            score = scores.get(key, 0.0)
            if score < lowest:
                victim = key
                lowest = score
        self._inflation = lowest
        return victim

    def reset(self) -> None:
        self._scores.clear()
        self._inflation = 0.0


class ProfilePolicy(CostPolicy):
    """GreedyDual over offline profile weights.

    Identical mechanism to :class:`CostPolicy`; the difference is the
    weight source resolved by the table — a
    :class:`~repro.cache.costing.CostProfile` from a prior traced run,
    falling back to the logical proxy for expressions the trace never
    visited (e.g. a profile recorded on a different seed).
    """

    name = "profile"


_POLICY_CLASSES = {
    cls.name: cls for cls in (LRUPolicy, SmallestPolicy, CostPolicy, ProfilePolicy)
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate the named eviction policy."""
    try:
        cls = _POLICY_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; use one of {POLICY_NAMES}"
        ) from None
    return cls()
