"""The cold storage tier: demoted memo cells in wire format.

Figures 21-30 treat eviction as a total loss — the cell is recomputed
from scratch on the next request.  The cold tier makes eviction a
*demotion* instead: the victim's plan is kept as the compact nested
tuples of :meth:`~repro.plans.physical.Plan.to_wire` (no per-node object
headers, no class references — the same format PR 2 ships between
worker processes), and the table consults it before recomputing.  A hit
promotes the entry back into the hot dict and counts the recompute work
it avoided.

The tier has its own capacity with plain FIFO-LRU turnover — by the
time a cell reaches the cold tier its policy score has already lost the
argument once, so a second scored competition buys little.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from repro.plans.physical import PlanWire

__all__ = ["ColdEntry", "ColdTier"]


class ColdEntry:
    """One demoted cell: wire-format plan or bound, plus its weight."""

    __slots__ = ("plan_wire", "lower_bound", "weight")

    def __init__(
        self,
        plan_wire: Optional[PlanWire],
        lower_bound: Optional[float],
        weight: float,
    ) -> None:
        self.plan_wire = plan_wire
        self.lower_bound = lower_bound
        self.weight = weight


class ColdTier:
    """Capacity-bounded second tier keyed like the hot tier.

    ``capacity=None`` means unbounded (every eviction is preserved);
    ``capacity=0`` is rejected — use no cold tier at all instead.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(
                f"cold tier capacity must be >= 1 or None, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, ColdEntry] = OrderedDict()
        #: Entries dropped by this tier's own capacity bound.
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def put(
        self,
        key: Hashable,
        plan_wire: Optional[PlanWire],
        lower_bound: Optional[float],
        weight: float,
    ) -> None:
        """Demote one cell, displacing the oldest cold entry if full."""
        entries = self._entries
        if key in entries:
            del entries[key]
        elif self.capacity is not None and len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = ColdEntry(plan_wire, lower_bound, weight)

    def take(self, key: Hashable) -> Optional[ColdEntry]:
        """Remove and return the entry for ``key`` (promotion), if any."""
        return self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
