"""Cost-aware memoization subsystem (Section 5.1 extended).

The paper treats the memo of top-down partitioning search as a *cache*:
entries may be dropped under memory pressure and simply recomputed on
demand.  Its experiments (Figures 21-30) use recency (LRU) as the
eviction signal, and Section 5.1 sketches weighting eviction "by the
logical description".  This package carries that idea to its conclusion:
every cell is priced by what it would cost to *recompute*, and eviction,
demotion, and cross-query reuse all trade against that price.

Components
----------
:mod:`repro.cache.costing`
    Per-cell recompute-cost accounting: a logical proxy (subset size x
    internal edges x a partition-count factor) that is always available,
    refined by measured exclusive work when a
    :class:`~repro.obs.tracer.RecordingTracer` is attached, or replaced
    wholesale by a :class:`CostProfile` saved from a prior run's trace
    (the ``repro profile-memo`` CLI step).

:mod:`repro.cache.policies`
    Pluggable eviction policies behind one interface: the paper's
    baseline ``lru`` and ``smallest`` plus the cost-aware ``cost``
    (GreedyDual: score = global inflation + recompute weight) and
    ``profile`` (GreedyDual driven by offline profile weights).

:mod:`repro.cache.coldtier`
    A compact second storage tier of wire-format entries
    (:meth:`~repro.plans.physical.Plan.to_wire`): eviction from the hot
    dict *demotes* instead of discards, and the cold tier is consulted
    before recomputing.

:mod:`repro.cache.stats`
    Hit/miss/eviction/demotion accounting surfaced through
    ``repro optimize --json`` as the ``memo`` block.

:class:`~repro.memo.MemoTable` is the facade over all of this; see
``docs/memory.md`` for the user-level story.
"""

from repro.cache.coldtier import ColdTier
from repro.cache.costing import CostProfile, logical_cost_proxy
from repro.cache.policies import (
    POLICY_NAMES,
    CostPolicy,
    EvictionPolicy,
    LRUPolicy,
    ProfilePolicy,
    SmallestPolicy,
    make_policy,
)
from repro.cache.stats import CacheStats

__all__ = [
    "CacheStats",
    "ColdTier",
    "CostPolicy",
    "CostProfile",
    "EvictionPolicy",
    "LRUPolicy",
    "POLICY_NAMES",
    "ProfilePolicy",
    "SmallestPolicy",
    "logical_cost_proxy",
    "make_policy",
]
