"""Cache-level accounting for one memo table.

:class:`~repro.analysis.metrics.Metrics` counts what the *search* did
(lookups, hits, evictions) so parallel workers can merge counters; this
dataclass counts what the *cache* did, including the tiers the search
never sees (demotions into the cold tier, cold/shared read-through hits,
and the recompute cost those hits avoided).  One instance lives on each
:class:`~repro.memo.MemoTable` and is surfaced as the ``memo`` block of
``repro optimize --json``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Counters for one memo table's cache behaviour.

    ``recompute_cost_saved`` accumulates the recompute weight (see
    :func:`repro.cache.costing.logical_cost_proxy`; microsecond-scale
    when measured/profiled weights are in play) of every cell served
    from the cold tier or the shared cross-query cache — work the
    enumerator did *not* redo.
    """

    #: Lookups answered by the hot tier (plan or lower-bound cell).
    hits: int = 0
    #: Lookups answered by no tier (the expression must be computed).
    misses: int = 0
    #: Cells removed from the hot tier by the eviction policy.
    evictions: int = 0
    #: Evicted cells demoted into the cold tier instead of dropped.
    demotions: int = 0
    #: Lookups answered by promoting a cold-tier entry.
    cold_hits: int = 0
    #: Lookups answered read-through from the shared cross-query cache.
    shared_hits: int = 0
    #: Cold-tier entries dropped by the cold tier's own capacity bound.
    cold_evictions: int = 0
    #: Summed recompute weight of cold/shared hits (work avoided).
    recompute_cost_saved: float = 0.0

    def to_dict(self) -> dict[str, int | float]:
        """Plain-dict view for the ``memo`` JSON block."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "demotions": self.demotions,
            "cold_hits": self.cold_hits,
            "shared_hits": self.shared_hits,
            "cold_evictions": self.cold_evictions,
            "recompute_cost_saved": self.recompute_cost_saved,
        }

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another table's stats (batch/parallel summaries)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.demotions += other.demotions
        self.cold_hits += other.cold_hits
        self.shared_hits += other.shared_hits
        self.cold_evictions += other.cold_evictions
        self.recompute_cost_saved += other.recompute_cost_saved
