"""Recompute-cost accounting for memo cells.

Two sources of truth, in increasing fidelity:

* :func:`logical_cost_proxy` — always available, computed from the
  logical description alone (Section 5.1 suggests exactly this kind of
  weighting): subset size x internal join edges x a partition-count
  factor.  Deterministic, so eviction decisions driven by it are
  reproducible run-to-run.
* :class:`CostProfile` — per-expression *exclusive* work lifted from a
  recorded span trace (PR 1's :class:`~repro.obs.tracer.RecordingTracer`
  attributes every counter and wall clock to the expression that spent
  it, descendants subtracted out).  Saved by ``repro profile-memo`` and
  loaded into a ``profile``-policy memo for the next run, this replaces
  the proxy with what recomputing the cell actually cost last time.

Profiles default to the ``work`` metric — the summed exclusive operation
counters (partitions emitted, join operators costed, connectivity
probes, ...) — because it is machine-independent and deterministic; the
``time`` metric uses exclusive wall microseconds for cases where the
real clock is what matters.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Any, Iterable, Optional, Union

if TYPE_CHECKING:
    from repro.catalog.query import Query
    from repro.obs.tracer import RecordingTracer

__all__ = ["CostProfile", "logical_cost_proxy", "profile_key"]

#: Profile weight metrics: deterministic counter work vs. wall time.
METRICS = ("work", "time")


def logical_cost_proxy(
    query: "Query", subset: int, order: Optional[int] = None
) -> float:
    """Logical-description proxy for the cost of recomputing a cell.

    ``size * (1 + internal edges) * (1 + size)``: one factor for the
    vertices the partition strategy must touch, one for the join edges
    that generate partitions (the strategy's partition count grows with
    internal connectivity), and one more ``size`` factor because
    recomputing a large expression cascades into recomputing its
    (likely also evicted) descendants.  Requesting an interesting order
    adds the sort-enforcer detour on top (+1).

    Monotone in both subset size and density, which is all eviction
    needs: the ranking, not the absolute scale, decides victims.
    """
    size = subset.bit_count()
    if size <= 1:
        return 1.0
    edges = 0
    for e in query.graph.edges:
        if e.mask & subset == e.mask:
            edges += 1
    weight = float(size * (1 + edges) * (1 + size))
    if order is not None:
        weight += 1.0
    return weight


def profile_key(subset: int, order: Optional[int]) -> str:
    """JSON-safe key for one ``(subset, order)`` expression."""
    return f"{subset}:{'-' if order is None else order}"


def _parse_profile_key(key: str) -> tuple[int, Optional[int]]:
    subset_text, _, order_text = key.partition(":")
    order = None if order_text in ("-", "") else int(order_text)
    return int(subset_text), order


class CostProfile:
    """Offline per-expression recompute weights for the ``profile`` policy.

    A thin mapping ``(subset, order) -> weight`` with JSON persistence.
    Weights are *summed* over all spans covering the same expression
    (under eviction an expression is recomputed several times; its total
    exclusive work is precisely the price paid for not caching it).
    """

    def __init__(
        self,
        weights: Optional[dict[tuple[int, Optional[int]], float]] = None,
        *,
        metric: str = "work",
    ) -> None:
        if metric not in METRICS:
            raise ValueError(f"unknown profile metric {metric!r}; use one of {METRICS}")
        self.metric = metric
        self._weights: dict[tuple[int, Optional[int]], float] = dict(weights or {})

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, key: tuple[int, Optional[int]]) -> bool:
        return key in self._weights

    def lookup(self, subset: int, order: Optional[int] = None) -> Optional[float]:
        """Profiled weight for an expression, or None if never traced."""
        return self._weights.get((subset, order))

    def add(self, subset: int, order: Optional[int], weight: float) -> None:
        """Accumulate ``weight`` onto one expression's entry."""
        key = (subset, order)
        self._weights[key] = self._weights.get(key, 0.0) + weight

    # -- building from traces ---------------------------------------------------

    @classmethod
    def from_tracer(
        cls, tracer: "RecordingTracer", *, metric: str = "work"
    ) -> "CostProfile":
        """Build a profile from an in-process :class:`RecordingTracer`.

        ``work``: the span's exclusive counter deltas summed (already
        descendant-subtracted by the tracer).  ``time``: the span's wall
        time minus its children's (exclusive microseconds).
        """
        profile = cls(metric=metric)
        for span in tracer.spans():
            if metric == "work":
                weight = float(sum(span.counters.values()))
            else:
                child_time = sum(child.elapsed for child in span.children)
                weight = max(0.0, span.elapsed - child_time) * 1e6
            if weight > 0:
                profile.add(span.subset, span.order, weight)
        return profile

    @classmethod
    def from_trace_records(
        cls, records: Iterable[dict[str, Any]], *, metric: str = "work"
    ) -> "CostProfile":
        """Build a profile from JSONL span dicts (``repro --trace-out``)."""
        rows = list(records)
        profile = cls(metric=metric)
        if metric == "time":
            elapsed_by_id = {row["span_id"]: row.get("elapsed_us", 0.0) for row in rows}
            for row in rows:
                child_time = sum(
                    elapsed_by_id.get(child, 0.0) for child in row.get("children", ())
                )
                weight = max(0.0, row.get("elapsed_us", 0.0) - child_time)
                if weight > 0:
                    profile.add(row["subset"], row.get("order"), weight)
        else:
            for row in rows:
                weight = float(sum(row.get("counters", {}).values()))
                if weight > 0:
                    profile.add(row["subset"], row.get("order"), weight)
        return profile

    @classmethod
    def from_trace_file(cls, path: str, *, metric: str = "work") -> "CostProfile":
        """Build a profile from a span-trace JSONL file."""
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        return cls.from_trace_records(records, metric=metric)

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (``repro profile-memo`` output)."""
        return {
            "version": 1,
            "metric": self.metric,
            "weights": {
                profile_key(subset, order): weight
                for (subset, order), weight in sorted(
                    self._weights.items(), key=lambda item: (item[0][0], str(item[0][1]))
                )
            },
        }

    def save(self, destination: Union[str, IO[str]]) -> None:
        """Write the profile as JSON to a path or open file."""
        payload = json.dumps(self.to_dict(), indent=2)
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
        else:
            destination.write(payload + "\n")

    @classmethod
    def load(cls, source: Union[str, IO[str]]) -> "CostProfile":
        """Read a profile written by :meth:`save`."""
        if isinstance(source, str):
            with open(source, encoding="utf-8") as handle:
                payload = json.load(handle)
        else:
            payload = json.load(source)
        weights = {
            _parse_profile_key(key): float(weight)
            for key, weight in payload.get("weights", {}).items()
        }
        return cls(weights, metric=payload.get("metric", "work"))
