"""Bitset primitives over plain Python integers.

The paper's analysis (Section 3.1) assumes a "bitmap model of computation"
in which vertex sets are encoded as machine words so that containment,
union, intersection, and difference are constant-time bitwise instructions.
Python integers are arbitrary-precision, so the same encoding works for any
query size; for the query sizes of interest (well under 100 relations) each
mask fits in one or two machine words and the constant-time assumption holds
in practice.

Throughout the package a *vertex set* is an ``int`` whose bit ``i`` is set
iff vertex ``i`` is a member.  These helpers are deliberately tiny, free
functions — hot loops inline the bitwise expressions directly and use these
only at API boundaries and in tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bit",
    "bits_between",
    "first_bit",
    "is_singleton",
    "is_subset",
    "iter_bits",
    "iter_subsets",
    "lowest_bit",
    "mask_of",
    "popcount",
    "set_of",
]


def bit(i: int) -> int:
    """Return the singleton mask ``{i}``."""
    return 1 << i


def mask_of(vertices: Iterable[int]) -> int:
    """Build a mask from an iterable of vertex indices."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


def set_of(mask: int) -> frozenset[int]:
    """Return the members of ``mask`` as a frozenset of indices."""
    # lint: disable=bitset-materialization -- this *is* the sanctioned
    # mask -> set boundary; everything else should call it, not inline it.
    return frozenset(iter_bits(mask))


def popcount(mask: int) -> int:
    """Return ``|mask|`` (number of set bits)."""
    return mask.bit_count()


def is_subset(a: int, b: int) -> bool:
    """Return True iff ``a ⊆ b``."""
    return a & ~b == 0


def is_singleton(mask: int) -> bool:
    """Return True iff ``mask`` contains exactly one vertex."""
    return mask != 0 and mask & (mask - 1) == 0


def lowest_bit(mask: int) -> int:
    """Return the mask of the lowest set bit of ``mask`` (0 if empty)."""
    return mask & -mask


def first_bit(mask: int) -> int:
    """Return the index of the lowest set bit.

    Raises ``ValueError`` on the empty mask.
    """
    if mask == 0:
        raise ValueError("empty mask has no first bit")
    return (mask & -mask).bit_length() - 1


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the vertex indices of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_between(lo: int, hi: int) -> int:
    """Return the mask with bits ``lo .. hi-1`` set (``hi`` exclusive)."""
    if hi <= lo:
        return 0
    return ((1 << (hi - lo)) - 1) << lo


def iter_subsets(mask: int, *, proper: bool = False) -> Iterator[int]:
    """Yield all non-empty subsets of ``mask`` in increasing numeric order.

    With ``proper=True`` the full set ``mask`` itself is excluded.  Uses the
    standard ``(s - mask) & mask`` enumeration, which visits each of the
    ``2^|mask| - 1`` non-empty subsets exactly once in Theta(1) per subset.
    """
    if mask == 0:
        return
    sub = mask & -mask  # smallest non-empty subset numerically
    while True:
        if sub == mask:
            if not proper:
                yield sub
            return
        yield sub
        sub = (sub - mask) & mask
