"""Core substrates: bitsets, join graphs, and biconnection trees.

These modules implement the "bitmap model of computation" of Section 3.1 of
the paper: vertex sets are machine integers, and set containment, union,
intersection, and difference are single bitwise operations.
"""

from repro.core.bitset import (
    bit,
    bits_between,
    first_bit,
    iter_bits,
    iter_subsets,
    is_singleton,
    is_subset,
    lowest_bit,
    mask_of,
    popcount,
    set_of,
)
from repro.core.joingraph import Edge, JoinGraph
from repro.core.biconnection import (
    BiconnectionTree,
    articulation_vertices,
    biconnected_components,
    build_bcc_tree,
    is_usable,
)

__all__ = [
    "bit",
    "bits_between",
    "first_bit",
    "iter_bits",
    "iter_subsets",
    "is_singleton",
    "is_subset",
    "lowest_bit",
    "mask_of",
    "popcount",
    "set_of",
    "Edge",
    "JoinGraph",
    "BiconnectionTree",
    "articulation_vertices",
    "biconnected_components",
    "build_bcc_tree",
    "is_usable",
]
