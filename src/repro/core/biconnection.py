"""Biconnected components, articulation vertices, and biconnection trees.

Implements the graph-theoretic substrate of Section 3.3 of the paper:

* articulation vertices and biconnected components via the classic
  Hopcroft/Tarjan depth-first search (Aho, Hopcroft & Ullman), written
  iteratively so deep graphs never hit Python's recursion limit;
* the *biconnection tree* of Algorithm 3 (``BuildBccTree``): a tree whose
  vertex nodes are the vertices of ``G`` and whose set nodes are the
  biconnected components, rooted at a distinguished vertex ``t``;
* the conservative usability test of Algorithm 5 / Lemma 3.2, which decides
  in time proportional to the number of deleted vertices whether a tree
  built for ``G|_{V1}`` may be reused for a connected ``G|_{V2}``,
  ``V2 ⊆ V1``, without rebuilding.

The tree precomputes, for every vertex ``v``, the descendant set
``D_T(v)`` (``v`` plus all vertex nodes in the subtree rooted at ``v``) and
the ancestor set ``A_T(v)`` (the vertex nodes on the path ``t ~> v``),
both as bitmaps; ``MinCutLazy`` reads them in constant time and clips them
with the current vertex set when reusing a stale tree (Section 3.3.1).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.bitset import bit, iter_bits, popcount
from repro.core.joingraph import JoinGraph

__all__ = [
    "BccNode",
    "BiconnectionTree",
    "articulation_vertices",
    "biconnected_components",
    "build_bcc_tree",
    "is_usable",
]


@dataclass(frozen=True)
class BccNode:
    """A set node of the biconnection tree (one biconnected component).

    ``members`` is the component's vertex mask, ``top`` the member closest
    to the root (its parent vertex node), and ``children`` the mask
    ``members \\ {top}`` of its child vertex nodes.
    """

    members: int
    top: int

    @property
    def children(self) -> int:
        """Mask of the component's child vertex nodes (members minus top)."""
        return self.members & ~bit(self.top)

    @property
    def size(self) -> int:
        """Number of vertices in the component."""
        return popcount(self.members)


class BiconnectionTree:
    """Biconnection tree for a connected induced subgraph, rooted at ``t``.

    Attributes
    ----------
    vertices:
        Mask of the vertex set ``V1`` the tree was built for.
    root:
        The distinguished vertex ``t``.
    components:
        The set nodes, in the (bottom-up) order the DFS emitted them.
    parent_component:
        ``parent_component[v]`` is the index into :attr:`components` of the
        set node whose child ``v`` is, or ``None`` for the root and for
        vertices outside :attr:`vertices`.
    descendants / ancestors:
        ``D_T(v)`` / ``A_T(v)`` bitmaps, indexed by vertex.
    """

    __slots__ = (
        "vertices",
        "root",
        "components",
        "parent_component",
        "descendants",
        "ancestors",
        "articulation",
    )

    def __init__(
        self,
        vertices: int,
        root: int,
        components: list[BccNode],
        parent_component: list[int | None],
        descendants: list[int],
        ancestors: list[int],
        articulation: int,
    ) -> None:
        self.vertices = vertices
        self.root = root
        self.components = components
        self.parent_component = parent_component
        self.descendants = descendants
        self.ancestors = ancestors
        self.articulation = articulation

    def desc(self, v: int, within: int | None = None) -> int:
        """Return ``D_T(v)``, optionally clipped to a current vertex set.

        Clipping implements the lazy reuse rule of Section 3.3.1:
        ``D_T2(v) = D_T1(v) ∩ V2`` when the tree is usable for ``G|_{V2}``.
        """
        d = self.descendants[v]
        return d if within is None else d & within

    def anc(self, v: int, within: int | None = None) -> int:
        """Return ``A_T(v)``, optionally clipped to a current vertex set."""
        a = self.ancestors[v]
        return a if within is None else a & within

    def leaves(self) -> int:
        """Return the mask of leaf vertex nodes (the non-articulation vertices)."""
        mask = 0
        for v in iter_bits(self.vertices):
            if self.descendants[v] == bit(v) and v != self.root:
                mask |= bit(v)
        # The root is a leaf of the biconnection structure when it is not an
        # articulation vertex (it heads a single component).
        if not self.articulation >> self.root & 1:
            mask |= bit(self.root)
        return mask

    def is_usable_for(self, subset: int, *, size3_tweak: bool = False) -> bool:
        """Algorithm 5: conservative usability test for ``G|_subset``.

        Precondition (Definition 3.1): ``subset ⊆ vertices`` and both induce
        connected subgraphs.  ``size3_tweak`` applies the footnote-2
        refinement that avoids false negatives for components of size three
        (triangles remain biconnected after deleting one child).
        """
        if subset == 0:
            return True
        if not subset >> self.root & 1:
            return False
        deleted = self.vertices & ~subset
        for v in iter_bits(deleted):
            comp_idx = self.parent_component[v]
            if comp_idx is None:
                return False
            comp = self.components[comp_idx]
            surviving_children = comp.children & ~deleted
            if surviving_children:
                if size3_tweak and comp.size == 3 and popcount(surviving_children) == 1:
                    continue
                return False
        return True


def _dfs_biconnected(
    neighbors: list[int], subset: int, root: int
) -> tuple[list[BccNode], int, list[int]]:
    """Iterative Hopcroft–Tarjan DFS over ``G|_subset`` from ``root``.

    Returns ``(components, articulation_mask, dfs_order)`` where
    ``dfs_order`` lists the visited vertices in discovery order.  Only the
    connected component of ``root`` within ``subset`` is visited.
    """
    dfnum: dict[int, int] = {root: 0}
    low: dict[int, int] = {root: 0}
    counter = 1
    edge_stack: list[tuple[int, int]] = []
    components: list[BccNode] = []
    articulation = 0
    root_children = 0
    order = [root]

    # Each frame is [vertex, parent, remaining-neighbour mask]; the mask acts
    # as a resumable iterator over the adjacency bitmap.
    frames: list[list[int]] = [[root, -1, neighbors[root] & subset]]
    while frames:
        frame = frames[-1]
        v, parent, remaining = frame
        descended = False
        while remaining:
            low_bit = remaining & -remaining
            remaining ^= low_bit
            frame[2] = remaining
            w = low_bit.bit_length() - 1
            if w not in dfnum:
                edge_stack.append((v, w))
                dfnum[w] = low[w] = counter
                counter += 1
                order.append(w)
                frames.append([w, v, neighbors[w] & subset])
                descended = True
                break
            if w != parent and dfnum[w] < dfnum[v]:
                edge_stack.append((v, w))
                if dfnum[w] < low[v]:
                    low[v] = dfnum[w]
        if descended:
            continue
        frames.pop()
        if not frames:
            break
        u = frames[-1][0]
        if low[v] < low[u]:
            low[u] = low[v]
        if low[v] >= dfnum[u]:
            members = 0
            while True:
                a, b = edge_stack.pop()
                members |= bit(a) | bit(b)
                if (a, b) == (u, v):
                    break
            components.append(BccNode(members=members, top=u))
            if u == root:
                root_children += 1
            else:
                articulation |= bit(u)
    if root_children >= 2:
        articulation |= bit(root)
    return components, articulation, order


def biconnected_components(
    graph: JoinGraph, subset: int | None = None
) -> list[int]:
    """Return the biconnected components of ``G|_subset`` as vertex masks.

    ``graph`` is a :class:`~repro.core.joingraph.JoinGraph`.  ``subset`` must
    induce a connected subgraph with at least one vertex.  A single isolated
    vertex has no biconnected components.
    """
    if subset is None:
        subset = graph.all_vertices
    root = (subset & -subset).bit_length() - 1
    components, _, _ = _dfs_biconnected(graph.neighbors, subset, root)
    return [c.members for c in components]


def articulation_vertices(graph: JoinGraph, subset: int | None = None) -> int:
    """Return the articulation vertices of connected ``G|_subset`` as a mask."""
    if subset is None:
        subset = graph.all_vertices
    root = (subset & -subset).bit_length() - 1
    _, articulation, _ = _dfs_biconnected(graph.neighbors, subset, root)
    return articulation


def build_bcc_tree(graph: JoinGraph, subset: int, t: int) -> BiconnectionTree:
    """Algorithm 3: build the biconnection tree for connected ``G|_subset``.

    ``t`` designates the root vertex node.  Runs in ``O(|E|)`` and, as the
    paper notes at the end of Section 3.3.1, precomputes ``D_T`` and ``A_T``
    for every vertex in the same pass so that :class:`MinCutLazy` can read
    them in constant time.
    """
    if not subset >> t & 1:
        raise ValueError(f"root {t} not contained in subset {subset:#x}")
    components, articulation, order = _dfs_biconnected(graph.neighbors, subset, t)
    n = max(subset.bit_length(), 1)
    parent_component: list[int | None] = [None] * n
    child_components: list[list[int]] = [[] for _ in range(n)]
    for idx, comp in enumerate(components):
        child_components[comp.top].append(idx)
        for m in iter_bits(comp.children):
            if parent_component[m] is None:
                parent_component[m] = idx

    visited = 0
    for v in order:
        visited |= bit(v)
    if visited != subset:
        raise ValueError("subset does not induce a connected subgraph")

    # Descendant masks: accumulate bottom-up in reverse discovery order.
    descendants = [0] * n
    for v in reversed(order):
        d = bit(v)
        for idx in child_components[v]:
            comp = components[idx]
            for m in iter_bits(comp.children):
                d |= descendants[m]
        descendants[v] = d

    # Ancestor masks: accumulate top-down in discovery order.
    ancestors = [0] * n
    ancestors[t] = bit(t)
    for v in order:
        if v == t:
            continue
        parent_idx = parent_component[v]
        if parent_idx is None:  # unreachable: every non-root has a parent
            raise AssertionError(f"vertex {v} has no parent component")
        comp = components[parent_idx]
        ancestors[v] = ancestors[comp.top] | bit(v)

    return BiconnectionTree(
        vertices=subset,
        root=t,
        components=components,
        parent_component=parent_component,
        descendants=descendants,
        ancestors=ancestors,
        articulation=articulation,
    )


def sum_of_masks(masks: Iterable[int]) -> int:
    """Union an iterable of masks (helper shared with tests)."""
    total = 0
    for m in masks:
        total |= m
    return total


def is_usable(tree: BiconnectionTree, subset: int, *, size3_tweak: bool = False) -> bool:
    """Module-level alias of :meth:`BiconnectionTree.is_usable_for`."""
    return tree.is_usable_for(subset, size3_tweak=size3_tweak)
