"""Join graph encoded as an array of adjacency bitmaps.

A query is represented as a connected graph ``G = (V, E)`` whose vertices
are the relations to be joined and whose edges are join predicates
(Section 2 of the paper).  Following Section 3.1 we encode ``G`` as one
adjacency bitmap per vertex, so that the induced subgraph ``G|_{V'}`` is
materialized lazily by intersecting ``V'`` with each adjacency bitmap on
demand, and connectivity of a vertex subset is testable in ``O(|V|)`` word
operations with a bitmap-frontier search.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.bitset import bit, mask_of, popcount


@dataclass(frozen=True, order=True)
class Edge:
    """An undirected join edge between vertex indices ``u < v``."""

    u: int
    v: int

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop at vertex {self.u}")
        if self.u > self.v:
            # Normalize so that Edge(2, 1) == Edge(1, 2).
            u, v = self.v, self.u
            object.__setattr__(self, "u", u)
            object.__setattr__(self, "v", v)

    @property
    def mask(self) -> int:
        """Mask containing both endpoints."""
        return bit(self.u) | bit(self.v)


class JoinGraph:
    """Undirected join graph over vertices ``0 .. n-1``.

    Attributes
    ----------
    n:
        Number of vertices.
    all_vertices:
        Mask ``(1 << n) - 1`` of the full vertex set.
    neighbors:
        ``neighbors[v]`` is the adjacency bitmap of vertex ``v``.
    edges:
        The normalized, deduplicated edge list in sorted order.
    """

    __slots__ = ("n", "all_vertices", "neighbors", "edges", "_edge_set",
                 "_nbr_union_cache")

    def __init__(self, n: int, edges: Sequence[Edge | tuple[int, int]]) -> None:
        if n <= 0:
            raise ValueError(f"graph needs at least one vertex, got n={n}")
        normalized = sorted({e if isinstance(e, Edge) else Edge(*e) for e in edges})
        for e in normalized:
            if not 0 <= e.u < n and 0 <= e.v < n:
                raise ValueError(f"edge {e} out of range for n={n}")
            if e.v >= n:
                raise ValueError(f"edge {e} out of range for n={n}")
        self.n = n
        self.all_vertices = (1 << n) - 1
        adjacency = [0] * n
        for e in normalized:
            adjacency[e.u] |= bit(e.v)
            adjacency[e.v] |= bit(e.u)
        self.neighbors = adjacency
        self.edges = tuple(normalized)
        self._edge_set = frozenset(normalized)
        # subset -> union of its adjacency bitmaps (before clipping); the
        # partition strategies recompute neighbourhoods of the same subsets
        # throughout the search, so memoizing the union pays for itself.
        self._nbr_union_cache: dict[int, int] = {}

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_edge_list(cls, edges: Sequence[tuple[int, int]]) -> "JoinGraph":
        """Build a graph sized to the largest vertex index mentioned."""
        if not edges:
            raise ValueError("cannot infer size from an empty edge list")
        n = 1 + max(max(u, v) for u, v in edges)
        return cls(n, edges)

    # -- basic queries ---------------------------------------------------------

    def __repr__(self) -> str:
        return f"JoinGraph(n={self.n}, edges={[tuple((e.u, e.v)) for e in self.edges]})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinGraph):
            return NotImplemented
        return self.n == other.n and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.n, self.edges))

    def has_edge(self, u: int, v: int) -> bool:
        """Return True iff there is a join predicate between ``u`` and ``v``."""
        return self.neighbors[u] >> v & 1 == 1

    def degree(self, v: int) -> int:
        """Number of join predicates incident to ``v``."""
        return popcount(self.neighbors[v])

    def edge_count(self) -> int:
        """Total number of join predicates."""
        return len(self.edges)

    def neighbors_of_set(self, subset: int, *, within: int | None = None) -> int:
        """Return ``N(subset)``: vertices adjacent to ``subset`` but outside it.

        With ``within`` given, the neighbourhood is computed in the induced
        subgraph ``G|_within`` (both ``subset`` and the result are clipped).
        """
        cache = self._nbr_union_cache
        union = cache.get(subset)
        if union is None:
            union = 0
            neighbors = self.neighbors
            bits = subset
            while bits:
                low = bits & -bits
                union |= neighbors[low.bit_length() - 1]
                bits ^= low
            if len(cache) >= 1 << 16:
                cache.clear()
            cache[subset] = union
        result = union & ~subset
        if within is not None:
            result &= within
        return result

    def edges_within(self, subset: int) -> Iterator[Edge]:
        """Yield the edges of the induced subgraph ``G|_subset``."""
        for e in self.edges:
            if e.mask & subset == e.mask:
                yield e

    def edge_count_within(self, subset: int) -> int:
        """Number of edges internal to ``subset``."""
        return sum(1 for _ in self.edges_within(subset))

    def connects(self, left: int, right: int) -> bool:
        """Return True iff some edge joins the disjoint sets ``left``/``right``."""
        neighbors = self.neighbors
        bits = left
        while bits:
            low = bits & -bits
            if neighbors[low.bit_length() - 1] & right:
                return True
            bits ^= low
        return False

    # -- connectivity ----------------------------------------------------------

    def reachable_from(self, start: int, subset: int) -> int:
        """Return the vertices of ``subset`` reachable from ``start``.

        ``start`` must be a singleton mask contained in ``subset``.  Uses a
        bitmap frontier expansion: each round unions the adjacency bitmaps of
        newly reached vertices, so the loop runs at most ``|subset|`` times.
        """
        # Connectivity probes dominate the naive strategies' runtime
        # (Section 4.1), so the inner loop is a hand-rolled lowest-bit
        # walk over local bindings rather than an iter_bits generator.
        neighbors = self.neighbors
        reached = start
        frontier = start
        while frontier:
            expansion = 0
            bits = frontier
            while bits:
                low = bits & -bits
                expansion |= neighbors[low.bit_length() - 1]
                bits ^= low
            frontier = expansion & subset & ~reached
            reached |= frontier
        return reached

    def is_connected(self, subset: int | None = None) -> bool:
        """Return True iff ``G|_subset`` is connected (default: whole graph).

        The empty set is considered disconnected; singletons are connected.
        """
        if subset is None:
            subset = self.all_vertices
        if subset == 0:
            return False
        start = subset & -subset
        return self.reachable_from(start, subset) == subset

    def connected_components(self, subset: int | None = None) -> list[int]:
        """Return the masks of the connected components of ``G|_subset``."""
        if subset is None:
            subset = self.all_vertices
        components: list[int] = []
        reachable_from = self.reachable_from
        remaining = subset
        while remaining:
            start = remaining & -remaining
            component = reachable_from(start, remaining)
            components.append(component)
            remaining &= ~component
        return components

    def is_connected_subset(self, subset: int) -> bool:
        """Alias used by partition strategies; see :meth:`is_connected`."""
        return self.is_connected(subset)

    # -- convenience -----------------------------------------------------------

    def vertex_masks(self) -> Iterator[int]:
        """Yield the singleton mask of every vertex."""
        for v in range(self.n):
            yield bit(v)

    def relabelled(self, permutation: Sequence[int]) -> "JoinGraph":
        """Return an isomorphic graph with vertex ``v`` renamed ``permutation[v]``."""
        if sorted(permutation) != list(range(self.n)):
            raise ValueError("permutation must be a bijection on range(n)")
        edges = [(permutation[e.u], permutation[e.v]) for e in self.edges]
        return JoinGraph(self.n, edges)

    def subset_mask(self, vertices: Iterable[int]) -> int:
        """Build a vertex-set mask from vertex indices (thin alias of mask_of)."""
        return mask_of(vertices)
