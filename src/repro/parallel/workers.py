"""Process-pool worker runtime for parallel partition search.

One driver process owns ``N`` long-lived worker processes, each holding a
private :class:`~repro.memo.MemoTable` and a serial
:class:`~repro.enumerator.TopDownEnumerator` over the *same* query (a
subproblem is just a vertex-subset mask, so no induced-subgraph reindexing
is needed).  Communication is one duplex pipe per worker with a strict
request/reply protocol, so task→worker assignment is fully deterministic —
worker ``i`` always receives shard ``i`` — which is what makes merged
results reproducible run-to-run.

At init a worker optionally absorbs a *seed* — wire entries projected
from a cross-query :class:`~repro.memo.GlobalPlanCache` (Section 5.1's
``Q1``/``Q2`` reuse) — so plans already optimized by earlier queries in a
workload batch are never recomputed, in any process.  Per round, a worker

1. absorbs memo entries computed by *other* workers in earlier rounds
   (compact wire tuples, see :meth:`~repro.memo.MemoTable.export_entries`),
2. solves its assigned subsets (level policy) or cut pairs (subtree
   policy, optionally under a shared accumulated-cost bound), and
3. ships back exactly the memo entries it newly produced.

On ``finish`` the worker returns its :class:`~repro.analysis.metrics.Metrics`
and optional :class:`~repro.obs.registry.MetricsRegistry`, and writes its
span trace to a per-worker JSONL file when tracing was requested.

Everything sent across the pipe is plain data (masks, floats, wire
tuples), so the runtime works under both ``fork`` and ``spawn`` start
methods; the worker entry point is a module-level function for
spawn-safety.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.enumerator import Bounding, TopDownEnumerator
from repro.memo import MemoTable
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import RecordingTracer

__all__ = ["WorkerTask", "WorkerResult", "WorkerPool", "preferred_start_method"]


def preferred_start_method() -> str:
    """``fork`` where available (cheap, shares the parent image), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass
class WorkerTask:
    """One round of work for one worker.

    ``absorb`` carries memo entries from other workers' previous rounds;
    ``subsets`` are level-policy expressions to solve; ``pairs`` are
    subtree-policy cuts, each solved side-by-side and (under accumulated
    bounding) used to tighten the shared global bound.
    """

    absorb: list = field(default_factory=list)
    subsets: list[int] = field(default_factory=list)
    pairs: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class WorkerResult:
    """Final state shipped back by a worker on ``finish``."""

    worker: int
    metrics: Metrics
    registry: Optional[MetricsRegistry]
    span_count: Optional[int]
    trace_path: Optional[str]


class _WorkerState:
    """Worker-process side: the enumerator and its export bookkeeping."""

    def __init__(self, init: dict[str, Any], shared_bound) -> None:
        from repro.registry import make_optimizer

        self.query: Query = init["query"]
        self.policy: str = init["policy"]
        self.shared_bound = shared_bound
        self.metrics = Metrics()
        self.registry = MetricsRegistry() if init["want_registry"] else None
        self.trace_path: Optional[str] = init["trace_path"]
        self.tracer = RecordingTracer() if self.trace_path else None
        self.enumerator = make_optimizer(
            init["algorithm"],
            self.query,
            init["cost_model"],
            memo=MemoTable(),
            metrics=self.metrics,
            tracer=self.tracer,
            registry=self.registry,
        )
        if not isinstance(self.enumerator, TopDownEnumerator):
            raise TypeError("parallel workers require a top-down algorithm")
        self.accumulated = Bounding.ACCUMULATED in self.enumerator.bounding
        if self.policy == "level":
            # Budgets cannot flow down a level-synchronous schedule; the
            # finishing pass re-applies accumulated bounding at the root.
            self.enumerator.bounding &= ~Bounding.ACCUMULATED
            self.accumulated = False
        self._sent_keys: set = set()
        seed = init.get("seed") or ()
        if seed:
            self.enumerator.memo.import_entries(self.query, seed)
            # The driver already has these; never ship them back.
            self._sent_keys.update((subset, order) for subset, order, _, _ in seed)

    def _budget(self) -> Optional[float]:
        if not (self.accumulated and self.shared_bound is not None):
            return None
        return self.shared_bound.get()

    def run(self, task_payload: dict[str, Any]) -> list:
        memo = self.enumerator.memo
        absorbed = task_payload.get("absorb", ())
        if absorbed:
            memo.import_entries(self.query, absorbed)
            self._sent_keys.update(
                (subset, order) for subset, order, _, _ in absorbed
            )
        for subset in task_payload.get("subsets", ()):
            self.enumerator.compute_best(subset)
        cost_model: CostModel = self.enumerator.cost_model
        for left, right in task_payload.get("pairs", ()):
            budget = self._budget()
            left_plan = self.enumerator.compute_best(left, budget=budget)
            if left_plan is None:
                continue
            right_plan = self.enumerator.compute_best(right, budget=budget)
            if right_plan is None:
                continue
            if self.accumulated and self.shared_bound is not None:
                children = left_plan.cost + right_plan.cost
                for method in cost_model.JOIN_METHODS:
                    operator = cost_model.operator_cost(
                        self.query, method, left, right
                    )
                    self.shared_bound.tighten(children + operator)
        fresh = memo.export_entries(exclude=self._sent_keys)
        self._sent_keys.update((subset, order) for subset, order, _, _ in fresh)
        return fresh

    def finish(self) -> dict[str, Any]:
        span_count = None
        if self.tracer is not None and self.trace_path is not None:
            from repro.obs.exporters import write_jsonl

            span_count = write_jsonl(self.tracer, self.trace_path)
        return {
            "metrics": self.metrics,
            "registry": self.registry,
            "span_count": span_count,
        }


def worker_main(conn, worker_index: int, shared_bound) -> None:
    """Entry point of a worker process: init, serve rounds, finish."""
    state: Optional[_WorkerState] = None
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            try:
                if kind == "init":
                    state = _WorkerState(message[1], shared_bound)
                    conn.send(("ok", None))
                elif kind == "run":
                    conn.send(("ok", state.run(message[1])))
                elif kind == "finish":
                    conn.send(("done", state.finish() if state else None))
                    break
                else:
                    conn.send(("error", f"unknown message kind {kind!r}"))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class WorkerPool:
    """Driver-side handle on ``N`` worker processes (context manager).

    The pool is cheap relative to enumeration under the ``fork`` start
    method; under ``spawn`` each worker pays an interpreter start, which
    the scheduler amortizes by keeping workers alive for the whole run.
    """

    def __init__(
        self,
        query: Query,
        algorithm: str,
        workers: int,
        *,
        policy: str = "level",
        cost_model: CostModel | None = None,
        want_registry: bool = False,
        shared_bound=None,
        trace_dir: str | None = None,
        start_method: str | None = None,
        seed: list | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._context = multiprocessing.get_context(
            start_method or preferred_start_method()
        )
        self._connections = []
        self._processes = []
        self._finished = False
        for index in range(workers):
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=worker_main,
                args=(child_conn, index, shared_bound),
                daemon=True,
                name=f"repro-parallel-{index}",
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        trace_paths = []
        for index in range(workers):
            path = None
            if trace_dir is not None:
                path = f"{trace_dir}/worker-{index}.jsonl"
            trace_paths.append(path)
        self._trace_paths = trace_paths
        init = {
            "query": query,
            "algorithm": algorithm,
            "cost_model": cost_model,
            "policy": policy,
            "want_registry": want_registry,
            "seed": list(seed) if seed else [],
        }
        for index, conn in enumerate(self._connections):
            conn.send(("init", {**init, "trace_path": trace_paths[index]}))
        for index, conn in enumerate(self._connections):
            self._expect_ok(index, conn.recv())

    def _expect_ok(self, index: int, reply) -> Any:
        kind, payload = reply
        if kind == "error":
            self.terminate()
            raise RuntimeError(f"parallel worker {index} failed:\n{payload}")
        return payload

    def run_round(self, tasks: list[WorkerTask]) -> list[list]:
        """Dispatch one task per worker; return per-worker new wire entries.

        All sends complete before any receive, so workers run their tasks
        concurrently; replies are gathered in worker order, keeping the
        downstream merge deterministic.
        """
        if len(tasks) != self.workers:
            raise ValueError(f"expected {self.workers} tasks, got {len(tasks)}")
        for conn, task in zip(self._connections, tasks):
            conn.send(
                ("run", {"absorb": task.absorb, "subsets": task.subsets,
                         "pairs": task.pairs})
            )
        return [
            self._expect_ok(index, conn.recv())
            for index, conn in enumerate(self._connections)
        ]

    def finish(self) -> list[WorkerResult]:
        """Collect final metrics/registries/traces and stop the workers."""
        if self._finished:
            return []
        self._finished = True
        for conn in self._connections:
            conn.send(("finish",))
        results = []
        for index, conn in enumerate(self._connections):
            kind, payload = conn.recv()
            if kind == "error":
                self.terminate()
                raise RuntimeError(f"parallel worker {index} failed:\n{payload}")
            results.append(
                WorkerResult(
                    worker=index,
                    metrics=payload["metrics"],
                    registry=payload["registry"],
                    span_count=payload["span_count"],
                    trace_path=self._trace_paths[index],
                )
            )
        self._join()
        return results

    def _join(self) -> None:
        for conn in self._connections:
            conn.close()
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()

    def terminate(self) -> None:
        """Hard-stop every worker (error paths)."""
        self._finished = True
        for conn in self._connections:
            try:
                conn.close()
            except OSError:
                pass
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()
        else:
            self.terminate()
