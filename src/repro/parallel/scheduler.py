"""Task sizing, bound broadcasting, and the parallel enumerator facade.

:class:`ParallelEnumerator` is a drop-in replacement for the serial
:class:`~repro.enumerator.TopDownEnumerator` front end: same constructor
shape (query, algorithm, cost model, memo/metrics/tracer/registry), same
``optimize(order, initial_plan=...)`` method, same result — bit-identical
best plan and cost — but the memoization work is spread over a
:class:`~repro.parallel.workers.WorkerPool`.

Two fork policies:

``level`` (default, work-conserving)
    Dispatch the level frontiers of :func:`~repro.parallel.fork.level_frontiers`
    round by round: every worker solves a deterministic LPT shard of each
    size class, absorbing the previous levels' entries from its peers, so
    each expression in the serial memoization set is computed exactly once
    globally.  Under exhaustive enumeration the merged operation counts
    equal the serial run's.  Accumulated-cost bounding is deferred to the
    finishing pass (budgets cannot flow down a level schedule); predicted
    bounding, being expression-local, runs inside the workers unchanged.

``subtree``
    Dispatch the deduplicated top-level minimal cuts of
    :func:`~repro.parallel.fork.partition_frontier`: each worker solves
    whole plan subtrees independently and — under accumulated-cost
    bounding — combines each cut's two sides into full-plan candidates to
    tighten a :class:`SharedBound`, broadcasting the global upper bound so
    branch-and-bound prunes across process boundaries.  No barriers, but
    sub-subsets shared between cuts are recomputed per worker.

Either way, a serial finishing pass over the merged (seeded) memo runs the
requested bounding at the root, so the returned plan is exactly what the
serial enumerator produces: stored subplans are optimal per expression,
iteration order is deterministic, and improvements are strict, so
tie-breaking cannot diverge.
"""

from __future__ import annotations

import math
import multiprocessing
import os

from repro.analysis.metrics import Metrics
from repro.anytime import AnytimeReport, Budget
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.enumerator import Bounding
from repro.memo import GlobalPlanCache, MemoTable
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.plans.physical import Plan

from repro.parallel.fork import (
    balance_shards,
    default_weight,
    level_frontiers,
    partition_frontier,
)
from repro.parallel.merge import merge_entries, merge_worker_results
from repro.parallel.workers import WorkerPool, WorkerTask, preferred_start_method

__all__ = ["SharedBound", "ParallelEnumerator", "POLICIES"]

POLICIES = ("auto", "level", "subtree")

#: Below this many relations the pool costs more than it saves; run serial.
_MIN_PARALLEL_VERTICES = 4


class SharedBound:
    """A global plan-cost upper bound shared across worker processes.

    One double in shared memory, monotonically non-increasing under
    :meth:`tighten`.  Workers read it as the budget for accumulated-cost
    searches and lower it whenever a full-plan candidate beats it — the
    cross-process form of Section 4's branch-and-bound.
    """

    def __init__(self, context=None, initial: float = math.inf) -> None:
        if context is None:
            context = multiprocessing.get_context(preferred_start_method())
        self._value = context.Value("d", initial)

    def get(self) -> float:
        with self._value.get_lock():
            return self._value.value

    def tighten(self, cost: float) -> bool:
        """Lower the bound to ``cost`` if it improves it; report success."""
        with self._value.get_lock():
            if cost < self._value.value:
                self._value.value = cost
                return True
            return False


class ParallelEnumerator:
    """Top-down partition search parallelized over worker processes.

    ``algorithm`` names any registered top-down algorithm (Table 1 name,
    bounded variant, or alias) — the worker count is *not* part of the
    name here; pass it as ``workers`` (the registry's ``name@N`` grammar
    resolves to this constructor).
    """

    def __init__(
        self,
        query: Query,
        algorithm: str,
        workers: int,
        *,
        policy: str = "auto",
        cost_model: CostModel | None = None,
        memo: MemoTable | None = None,
        metrics: Metrics | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        trace_dir: str | None = None,
        start_method: str | None = None,
        global_cache: GlobalPlanCache | None = None,
        budget: Budget | None = None,
    ) -> None:
        from repro.registry import parse_name, resolve_alias

        if "@" in algorithm:
            raise ValueError(
                "pass the worker count via the `workers` argument, "
                f"not an @N suffix: {algorithm!r}"
            )
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if policy not in POLICIES:
            raise ValueError(f"unknown fork policy {policy!r}; use one of {POLICIES}")
        spec = parse_name(algorithm)
        if not spec.top_down:
            raise ValueError(
                f"{algorithm!r} is bottom-up: parallel partition search "
                "requires a top-down algorithm"
            )
        self.query = query
        self.algorithm = resolve_alias(algorithm)
        self.workers = workers
        self.policy = policy
        self._spec = spec
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.metrics = metrics if metrics is not None else Metrics()
        self.global_cache = global_cache
        if memo is None:
            # Driver memo writes through to the cross-query cache, so
            # every plan merged from workers lands there automatically.
            memo = MemoTable(metrics=self.metrics, shared=global_cache)
        elif global_cache is not None and memo.shared is None:
            memo.shared = global_cache
        self.memo = memo
        self.tracer = tracer
        self.registry = registry
        self.trace_dir = trace_dir
        self.start_method = start_method
        #: Default anytime budget applied by :meth:`optimize` (the
        #: registry's ``?budget`` suffix); bounds the serial finishing
        #: pass — the level rounds run unbudgeted in worker processes.
        self.default_budget = budget
        #: Gap-bound report of the last budgeted :meth:`optimize`.
        self.anytime: AnytimeReport | None = None
        #: Per-worker results of the last :meth:`optimize` (metrics,
        #: registries, span counts) — inspection and tests.
        self.worker_results = []

    @property
    def space(self):
        return self._spec.space

    def _serial(self):
        """The finishing-pass enumerator: requested bounding, shared memo."""
        from repro.registry import make_optimizer

        return make_optimizer(
            self.algorithm,
            self.query,
            self.cost_model,
            memo=self.memo,
            metrics=self.metrics,
            tracer=self.tracer,
            registry=self.registry,
        )

    def optimize(
        self,
        order: int | None = None,
        *,
        initial_plan: Plan | None = None,
        budget: Budget | None = None,
    ) -> Plan:
        """Return the optimal plan, identical to the serial algorithm's.

        ``budget`` (or the constructor's default) bounds the serial
        finishing pass over the merged memo — with warm worker entries it
        is mostly memo hits, so the budget cuts only the residual search;
        :attr:`anytime` carries the finishing enumerator's gap report.
        """
        if budget is None:
            budget = self.default_budget
        graph = self.query.graph
        policy = "level" if self.policy == "auto" else self.policy
        if graph.n >= _MIN_PARALLEL_VERTICES:
            if self.trace_dir is not None:
                os.makedirs(self.trace_dir, exist_ok=True)
            if policy == "level":
                self._run_level()
            else:
                self._run_subtree(initial_plan)
        finishing = self._serial()
        plan = finishing.optimize(order, initial_plan=initial_plan, budget=budget)
        self.anytime = finishing.anytime
        return plan

    # -- policies -------------------------------------------------------------

    def _pool(self, policy: str, shared_bound: SharedBound | None) -> WorkerPool:
        seed = None
        if self.global_cache is not None:
            # Plans earlier queries already optimized, projected into this
            # query's numbering — every worker starts with them memoized.
            seed = self.global_cache.export_for_query(self.query)
        return WorkerPool(
            self.query,
            self.algorithm,
            self.workers,
            policy=policy,
            cost_model=self.cost_model,
            want_registry=self.registry is not None,
            shared_bound=shared_bound,
            trace_dir=self.trace_dir,
            start_method=self.start_method,
            seed=seed,
        )

    def _run_level(self) -> None:
        """Work-conserving level-synchronous schedule."""
        graph = self.query.graph
        levels = level_frontiers(graph, self._spec.space)
        pool = self._pool("level", None)
        try:
            pending: list[list] = [[] for _ in range(self.workers)]
            for level in levels:
                shards = balance_shards(
                    level, self.workers, lambda s: default_weight(graph, s)
                )
                tasks = [
                    WorkerTask(absorb=pending[i], subsets=shards[i])
                    for i in range(self.workers)
                ]
                replies = pool.run_round(tasks)
                pending = [[] for _ in range(self.workers)]
                for source, entries in enumerate(replies):
                    self.metrics.parallel_entries_merged += merge_entries(
                        self.memo, self.query, [entries]
                    )
                    if entries:
                        for target in range(self.workers):
                            if target != source:
                                pending[target].extend(entries)
                self.metrics.parallel_tasks += len(level)
            self.worker_results = pool.finish()
        except BaseException:
            pool.terminate()
            raise
        merge_worker_results(self.metrics, self.registry, self.worker_results)

    def _run_subtree(self, initial_plan: Plan | None) -> None:
        """Independent top-level cut subtrees with a broadcast bound."""
        from repro.registry import _partition_for

        graph = self.query.graph
        pairs = partition_frontier(graph, _partition_for(self._spec))
        accumulated = Bounding.ACCUMULATED in self._spec.bounding
        shared_bound = None
        if accumulated:
            shared_bound = SharedBound(
                multiprocessing.get_context(
                    self.start_method or preferred_start_method()
                )
            )
            if initial_plan is not None:
                shared_bound.tighten(initial_plan.cost)
        pool = self._pool("subtree", shared_bound)
        try:
            shards = balance_shards(
                pairs,
                self.workers,
                lambda pair: default_weight(graph, pair[0])
                + default_weight(graph, pair[1]),
            )
            tasks = [WorkerTask(pairs=shards[i]) for i in range(self.workers)]
            replies = pool.run_round(tasks)
            self.metrics.parallel_entries_merged += merge_entries(
                self.memo, self.query, replies
            )
            self.metrics.parallel_tasks += len(pairs)
            self.worker_results = pool.finish()
        except BaseException:
            pool.terminate()
            raise
        merge_worker_results(self.metrics, self.registry, self.worker_results)
