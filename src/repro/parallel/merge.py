"""Deterministic folding of worker results into the parent's state.

Workers reply in worker-index order (the pool gathers pipe replies
sequentially), and every fold here iterates replies in that same order, so
a parallel run is a pure function of (query, algorithm, worker count,
policy): the merged memo, metrics, and registry are identical run-to-run.

The memo conflict policy lives in :meth:`repro.memo.MemoTable.import_entries`
— an existing plan always wins (plans stored by the top-down search are
optimal for their expression, so any duplicate is equal-cost and the
first-writer rule merely pins tie-breaking to worker order), and lower
bounds keep the maximum, since every worker's bound is sound.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.memo import MemoTable
from repro.obs.registry import MetricsRegistry

from repro.parallel.workers import WorkerResult

__all__ = ["merge_entries", "merge_worker_results"]


def merge_entries(
    memo: MemoTable, query: Query, entry_lists: Iterable[Sequence]
) -> int:
    """Fold per-worker wire-entry lists into ``memo``; return entries kept.

    ``entry_lists`` must be in worker order.  The count excludes entries
    dropped by the conflict policy (already-present plans), so it is the
    number of cells this merge actually contributed.
    """
    imported = 0
    for entries in entry_lists:
        if entries:
            imported += memo.import_entries(query, entries)
    return imported


def merge_worker_results(
    metrics: Metrics,
    registry: MetricsRegistry | None,
    results: Sequence[WorkerResult],
) -> None:
    """Fold every worker's counters and instruments into the parent's.

    Additive counters sum (so e.g. ``join_operators_costed`` over all
    workers plus the parent equals the serial total under exhaustive
    enumeration); gauges like ``peak_memo_cells`` take the maximum; raw
    histogram observations concatenate, keeping merged percentiles exact.
    """
    for result in results:
        metrics.merge(result.metrics)
        if registry is not None and result.registry is not None:
            registry.merge(result.registry)
