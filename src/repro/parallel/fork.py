"""Fork-point selection for parallel partition search.

The top-down recursion of Algorithm 1 decomposes into independent
subproblems two ways, and this module computes both kinds of frontier:

* **Level frontiers** (:func:`level_frontiers`) — every expression the
  serial search memoizes, grouped by size.  Any connected subset of a
  connected query graph is reachable by top-down partitioning (peel a
  spanning-tree leaf outside the target at each step), so for CP-free
  spaces the frontier at size ``k`` is exactly the connected ``k``-subsets
  and for spaces with cartesian products it is all ``k``-subsets.  Solving
  level ``k`` requires only levels ``< k``, so each level is an
  embarrassingly parallel batch and every expression is computed exactly
  once globally — the work-conserving policy.
* **Partition frontiers** (:func:`partition_frontier`) — the minimal cuts
  the strategy emits at the top of the partition tree.  Each cut is an
  independent pair of subproblems whose solutions combine into a full
  query plan, which is what lets workers tighten a shared cost bound
  (Section 4's accumulated-cost bounding, made cross-process).  Workers
  duplicate shared sub-subsets in this mode; it trades total work for
  zero synchronization barriers.

Shard balancing is deterministic LPT (longest processing time first) over
either a static weight — exponential in subset size, scaled by internal
edge count, a proxy for the partition-enumeration cost — or measured
per-subtree wall times from a recorded span trace (:func:`trace_weights`),
closing the loop with the ``repro.obs`` tracer.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from repro.core.bitset import popcount
from repro.core.joingraph import JoinGraph
from repro.spaces import PlanSpace

__all__ = [
    "balance_shards",
    "connected_subsets",
    "default_weight",
    "level_frontiers",
    "partition_frontier",
    "trace_weights",
]


def connected_subsets(graph: JoinGraph, max_size: int | None = None) -> list[int]:
    """All masks of connected induced subgraphs, smallest-first.

    Breadth-first growth by neighbour extension: a connected subset of
    size ``k + 1`` is some connected ``k``-subset plus a neighbour, so the
    enumeration touches each connected subset once per generating parent
    (deduplicated by a seen-set) instead of scanning all ``2^n`` masks —
    linear in the output size for sparse graphs like chains.
    """
    limit = graph.n if max_size is None else min(max_size, graph.n)
    frontier = [1 << v for v in range(graph.n)]
    seen = set(frontier)
    out = list(frontier)
    size = 1
    while frontier and size < limit:
        nxt = []
        for subset in frontier:
            neighbours = graph.neighbors_of_set(subset)
            while neighbours:
                low = neighbours & -neighbours
                neighbours ^= low
                grown = subset | low
                if grown not in seen:
                    seen.add(grown)
                    nxt.append(grown)
        nxt.sort()
        out.extend(nxt)
        frontier = nxt
        size += 1
    return out


def level_frontiers(graph: JoinGraph, space: PlanSpace) -> list[list[int]]:
    """Proper-subset expressions of the search, grouped by size.

    Returns ``levels[0] .. levels[n-2]`` holding the masks of size
    ``1 .. n-1`` (the root expression is left to the finishing pass).
    CP-free spaces memoize connected subsets only; spaces with cartesian
    products reach every non-empty subset.
    """
    n = graph.n
    levels: list[list[int]] = [[] for _ in range(n - 1)] if n > 1 else []
    if n <= 1:
        return levels
    if space.allows_cartesian_products:
        for mask in range(1, graph.all_vertices):
            levels[popcount(mask) - 1].append(mask)
    else:
        for mask in connected_subsets(graph, max_size=n - 1):
            levels[popcount(mask) - 1].append(mask)
    return levels


def partition_frontier(
    graph: JoinGraph, strategy, subset: int | None = None
) -> list[tuple[int, int]]:
    """Deduplicated top-level cuts of ``subset`` (default: the full query).

    The strategy emits both orientations of each cut; workers solve both
    sides regardless, so only the first orientation of each unordered cut
    is kept (in emission order, which is deterministic per strategy).
    """
    from repro.analysis.metrics import Metrics

    if subset is None:
        subset = graph.all_vertices
    cuts: list[tuple[int, int]] = []
    seen: set[frozenset[int]] = set()
    for left, right in strategy.partitions(graph, subset, Metrics()):
        key = frozenset((left, right))
        if key in seen:
            continue
        seen.add(key)
        cuts.append((left, right))
    return cuts


def default_weight(graph: JoinGraph, subset: int) -> float:
    """Static cost estimate for solving ``subset``: ~partition count.

    Exponential in subset size, scaled by the internal edge count so that
    dense subsets of a random graph outweigh sparse ones of the same size.
    Only relative magnitudes matter (LPT input).
    """
    size = popcount(subset)
    return float(1 + graph.edge_count_within(subset)) * float(1 << min(size, 40))


def trace_weights(spans: Iterable) -> dict[int, float]:
    """Per-subset inclusive wall times from a recorded span trace.

    Accepts an iterable of :class:`~repro.obs.tracer.Span` (or a
    :class:`~repro.obs.tracer.RecordingTracer`, via its ``spans()``
    method).  Feeding a previous run's trace back into
    :func:`balance_shards` is the trace-guided fork-point selection mode:
    measured subtree times replace the static estimate.
    """
    if hasattr(spans, "spans"):
        spans = spans.spans()
    weights: dict[int, float] = {}
    for span in spans:
        weights[span.subset] = max(weights.get(span.subset, 0.0), span.elapsed)
    return weights


def balance_shards(
    items: list,
    shard_count: int,
    weight: Callable[[object], float],
) -> list[list]:
    """Deterministic LPT assignment of ``items`` into ``shard_count`` bins.

    Items are sorted heaviest-first (ties by item, so the assignment is a
    pure function of the inputs) and each is placed on the least-loaded
    shard (ties by shard index).  Within each shard the original relative
    order is restored so workers process subsets smallest-mask-first.
    """
    if shard_count < 1:
        raise ValueError(f"need at least one shard, got {shard_count}")
    order = {item: i for i, item in enumerate(items)}
    ranked = sorted(items, key=lambda item: (-weight(item), order[item]))
    heap = [(0.0, shard) for shard in range(shard_count)]
    heapq.heapify(heap)
    shards: list[list] = [[] for _ in range(shard_count)]
    for item in ranked:
        load, shard = heapq.heappop(heap)
        shards[shard].append(item)
        heapq.heappush(heap, (load + weight(item), shard))
    for shard_items in shards:
        shard_items.sort(key=lambda item: order[item])
    return shards
