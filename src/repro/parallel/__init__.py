"""Parallel top-down partition search (multi-process).

The serial enumerator's subproblems — vertex-subset expressions of the
partition search — are independent given their sub-subproblems, which
makes the memoized recursion of Algorithm 1 parallelizable at two grains:
level frontiers (every expression of one size, exactly-once work) and
partition-tree subtrees (top-level minimal cuts, bound-broadcast
branch-and-bound).  See :mod:`repro.parallel.scheduler` for the policy
semantics and :doc:`docs/parallel` for the design discussion.

Entry points: ``repro optimize --workers N`` on the CLI, the ``name@N``
algorithm grammar (``TBNmc@4``, ``mincutlazy@2``) in the registry, or
:class:`ParallelEnumerator` directly.
"""

from repro.parallel.fork import (
    balance_shards,
    connected_subsets,
    default_weight,
    level_frontiers,
    partition_frontier,
    trace_weights,
)
from repro.parallel.merge import merge_entries, merge_worker_results
from repro.parallel.scheduler import POLICIES, ParallelEnumerator, SharedBound
from repro.parallel.workers import (
    WorkerPool,
    WorkerResult,
    WorkerTask,
    preferred_start_method,
)

__all__ = [
    "POLICIES",
    "ParallelEnumerator",
    "SharedBound",
    "WorkerPool",
    "WorkerResult",
    "WorkerTask",
    "balance_shards",
    "connected_subsets",
    "default_weight",
    "level_frontiers",
    "merge_entries",
    "merge_worker_results",
    "partition_frontier",
    "preferred_start_method",
    "trace_weights",
]
