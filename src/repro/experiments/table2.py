"""Table 2: absolute cost of enumerating various search spaces.

For each of the four plan spaces, over star / random-acyclic /
random-cyclic queries of growing size, reports the number of join
operators in the space and the CPU seconds of (a) exhaustive optimal
top-down enumeration, (b) predicted-cost bounding, and — for the spaces
with cartesian products — (c) the two-phase strategies of Section 5.2
that seed the large-space search with the CP-free optimum.

Paper shapes: pruning is far more effective in spaces with CPs (many
terrible plans are easy to discard); the exhaustive two-phase first stage
is nearly free except for left-deep stars; with pruning the first phase
pays for itself (~20 % faster second phase at larger sizes).
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.metrics import Metrics
from repro.experiments.common import ExperimentResult, graph_maker, seed_for, time_call
from repro.multiphase import optimize_multiphase
from repro.registry import make_optimizer
from repro.workloads.weights import weighted_query

__all__ = ["run_table2", "SPACE_GROUPS"]

#: (group label, join-op counting algorithm, rows of the group)
SPACE_GROUPS = (
    ("Left-Deep CP-free", "TLNmc", ["TLNmc", "TLNmcP"]),
    ("Bushy CP-free", "TBNmc", ["TBNmc", "TBNmcP"]),
    (
        "Left-Deep with CPs",
        "TLCnaive",
        ["TLCnaive", "TLCnaiveP", "TLNmc+TLCnaive", "TLNmcP+TLCnaiveP"],
    ),
    (
        "Bushy with CPs",
        "TBCnaive",
        ["TBCnaive", "TBCnaiveP", "TBNmc+TBCnaive", "TBNmcP+TBCnaiveP"],
    ),
)

TOPOLOGIES = ("star", "random-acyclic", "random-cyclic")


def _run_algorithm(name: str, query) -> tuple[float, Metrics]:
    """Run a registry algorithm or a '+'-joined two-phase combination."""
    if "+" in name:
        phases = name.split("+")
        elapsed, result = time_call(lambda: optimize_multiphase(query, phases))
        return elapsed, result.total_metrics
    metrics = Metrics()
    optimizer = make_optimizer(name, query, metrics=metrics)
    elapsed, _ = time_call(optimizer.optimize)
    return elapsed, metrics


def run_table2(scale: str = "small") -> ExperimentResult:
    """Regenerate Table 2 (sizes scaled for pure Python; see notes)."""
    sizes = [5, 8] if scale == "small" else [5, 8, 10]
    seeds = 2 if scale == "small" else 3
    columns = ["space", "algorithm"]
    for topology in TOPOLOGIES:
        for n in sizes:
            columns.append(f"{topology}:{n}")
    result = ExperimentResult(
        "table2", "Absolute Cost of Enumerating Various Search Spaces", columns
    )

    for group, counter_algorithm, algorithms in SPACE_GROUPS:
        ops_row = {"space": group, "algorithm": "(join ops)"}
        time_rows = [{"space": group, "algorithm": a} for a in algorithms]
        for topology in TOPOLOGIES:
            make = graph_maker(topology)
            randomized = topology.startswith("random")
            for n in sizes:
                seed_list = range(seeds) if randomized else [0]
                queries = [
                    weighted_query(
                        make(n, seed_for(n, s)), seed_for(n, s, 977)
                    )
                    for s in seed_list
                ]
                cell = f"{topology}:{n}"
                op_counts = []
                timings: dict[str, list[float]] = {a: [] for a in algorithms}
                for query in queries:
                    for algorithm in algorithms:
                        elapsed, metrics = _run_algorithm(algorithm, query)
                        timings[algorithm].append(elapsed)
                        if algorithm == counter_algorithm:
                            op_counts.append(metrics.logical_joins_enumerated)
                ops_row[cell] = mean(op_counts)
                for row, algorithm in zip(time_rows, algorithms):
                    row[cell] = mean(timings[algorithm])
        result.add_row(**ops_row)
        for row in time_rows:
            result.add_row(**row)

    result.notes.append(
        "times in seconds; sizes scaled down from the paper's 5/10/15/20 "
        "(pure Python cannot exhaust 3^20 join operators)"
    )
    result.notes.append(
        "expect: P pruning strongest in CP spaces; exhaustive two-phase "
        "adds only the (small) first-phase cost; P two-phase beats "
        "single-phase P at the larger sizes for non-star topologies"
    )
    return result
