"""Figures 21–30: the CPU/storage trade-off of memory-bounded memo tables.

Section 5.1: the four left-deep algorithms (TLNMC and its A/P/AP bounded
variants) are re-run with an LRU-evicting memo capped at 100 %, 25 %,
10 %, 5 %, 1 %, and 0 % of the cells that exhaustive enumeration of the
same star query populates.  Figures 21–24 group the series by algorithm
(execution time vs. storage, normalized by unbounded TLNMC); Figures
25–30 regroup the same data by storage threshold (each algorithm
normalized by exhaustive TLNMC at that threshold).

Paper shapes: storage reduction costs exponentially more recomputation;
predicted-cost bounding gains on exhaustive down to ~10 % and then
flattens; accumulated-cost bounding improves steadily as storage shrinks
because the interference between budgets and memoization fades, until at
0 % it dominates everything (Figure 30).
"""

from __future__ import annotations

from functools import lru_cache
from statistics import mean

from repro.analysis.metrics import Metrics
from repro.experiments.common import ExperimentResult, seed_for, time_call
from repro.memo import MemoTable
from repro.registry import make_optimizer
from repro.workloads.topologies import star
from repro.workloads.weights import weighted_query

__all__ = ["run_fig21_24_tradeoff", "run_fig25_30_by_threshold"]

THRESHOLDS = (1.0, 0.25, 0.10, 0.05, 0.01, 0.0)
_SUFFIXES = ("", "A", "P", "AP")
BASE = "TLNmc"


def required_cells(n: int, seed: int) -> int:
    """Memo cells populated by exhaustive TLNMC on one weighted star query.

    The paper precomputes this from Ono & Lohman's formulas; a dry run
    gives the identical number and works for any topology.
    """
    query = weighted_query(star(n), seed)
    optimizer = make_optimizer(BASE, query)
    optimizer.optimize()
    return optimizer.memo.populated_cells()


@lru_cache(maxsize=4)
def _measure_grid(scale: str):
    """Time every (algorithm, n, threshold, seed) cell once.

    Returns ``(sizes, samples)`` with
    ``samples[(suffix, n, threshold)] = mean milliseconds``.
    """
    # Low thresholds recompute exponentially by design, so the grid stays
    # deliberately small (the 0 % point on a 10-relation star already
    # takes minutes per seed in pure Python).
    sizes = [6, 8] if scale == "small" else [6, 8, 9]
    seeds = 3 if scale == "small" else 5
    samples: dict[tuple[str, int, float], float] = {}
    for n in sizes:
        for suffix in _SUFFIXES:
            for threshold in THRESHOLDS:
                times = []
                for s in range(seeds):
                    seed = seed_for(n, s, 31)
                    query = weighted_query(star(n), seed)
                    capacity = round(threshold * required_cells(n, seed))
                    metrics = Metrics()
                    memo = MemoTable(capacity=capacity, metrics=metrics)
                    optimizer = make_optimizer(
                        BASE + suffix, query, memo=memo, metrics=metrics
                    )
                    elapsed, _ = time_call(optimizer.optimize)
                    times.append(elapsed * 1e3)
                samples[(suffix, n, threshold)] = mean(times)
    return sizes, samples


def run_fig21_24_tradeoff(scale: str = "small") -> ExperimentResult:
    """Figures 21–24: one series per algorithm, normalized by TLNMC@100%."""
    sizes, samples = _measure_grid(scale)
    columns = ["algorithm", "n"] + [f"{int(t * 100)}%" for t in THRESHOLDS]
    result = ExperimentResult(
        "fig21-24", "CPU-Storage Trade-off (normalized by unbounded TLNMC)", columns
    )
    for suffix in _SUFFIXES:
        label = BASE + suffix
        for n in sizes:
            base_ms = samples[("", n, 1.0)]
            row = {"algorithm": label, "n": n}
            for threshold in THRESHOLDS:
                row[f"{int(threshold * 100)}%"] = (
                    samples[(suffix, n, threshold)] / base_ms
                )
            result.add_row(**row)
    result.notes.append(
        "expect: every algorithm's cost grows as storage shrinks; the "
        "growth is steepest for exhaustive TLNMC"
    )
    return result


def run_fig25_30_by_threshold(scale: str = "small") -> ExperimentResult:
    """Figures 25–30: same data regrouped by threshold.

    Each algorithm is normalized by exhaustive TLNMC *at the same
    threshold*, reproducing the per-figure comparisons.
    """
    sizes, samples = _measure_grid(scale)
    columns = ["threshold", "n", "exh_ms", "A_rel", "P_rel", "AP_rel"]
    result = ExperimentResult(
        "fig25-30", "Star Queries by Storage Threshold", columns
    )
    for threshold in THRESHOLDS:
        for n in sizes:
            base_ms = samples[("", n, threshold)]
            result.add_row(
                threshold=f"{int(threshold * 100)}%",
                n=n,
                exh_ms=base_ms,
                A_rel=samples[("A", n, threshold)] / base_ms,
                P_rel=samples[("P", n, threshold)] / base_ms,
                AP_rel=samples[("AP", n, threshold)] / base_ms,
            )
    result.notes.append(
        "expect: at 100% P wins and A suffers budget/memo interference; "
        "as storage shrinks A improves steadily and dominates at 0-1%"
    )
    return result
