"""Figures 21–30: the CPU/storage trade-off of memory-bounded memo tables.

Section 5.1: the four left-deep algorithms (TLNMC and its A/P/AP bounded
variants) are re-run with an LRU-evicting memo capped at 100 %, 25 %,
10 %, 5 %, 1 %, and 0 % of the cells that exhaustive enumeration of the
same star query populates.  Figures 21–24 group the series by algorithm
(execution time vs. storage, normalized by unbounded TLNMC); Figures
25–30 regroup the same data by storage threshold (each algorithm
normalized by exhaustive TLNMC at that threshold).

Paper shapes: storage reduction costs exponentially more recomputation;
predicted-cost bounding gains on exhaustive down to ~10 % and then
flattens; accumulated-cost bounding improves steadily as storage shrinks
because the interference between budgets and memoization fades, until at
0 % it dominates everything (Figure 30).
"""

from __future__ import annotations

from functools import lru_cache
from statistics import mean

from repro.analysis.metrics import Metrics
from repro.cache.costing import CostProfile
from repro.catalog.query import Query
from repro.experiments.common import ExperimentResult, graph_maker, seed_for, time_call
from repro.memo import GlobalPlanCache, MemoTable
from repro.obs.tracer import RecordingTracer
from repro.registry import make_optimizer
from repro.workloads.topologies import chain, star
from repro.workloads.weights import weighted_query

__all__ = [
    "run_fig21_24_tradeoff",
    "run_fig25_30_by_threshold",
    "run_memory_policies",
    "run_shared_cache",
]

THRESHOLDS = (1.0, 0.25, 0.10, 0.05, 0.01, 0.0)
_SUFFIXES = ("", "A", "P", "AP")
BASE = "TLNmc"


def required_cells(n: int, seed: int) -> int:
    """Memo cells populated by exhaustive TLNMC on one weighted star query.

    The paper precomputes this from Ono & Lohman's formulas; a dry run
    gives the identical number and works for any topology.
    """
    query = weighted_query(star(n), seed)
    optimizer = make_optimizer(BASE, query)
    optimizer.optimize()
    return optimizer.memo.populated_cells()


@lru_cache(maxsize=4)
def _measure_grid(scale: str):
    """Time every (algorithm, n, threshold, seed) cell once.

    Returns ``(sizes, samples)`` with
    ``samples[(suffix, n, threshold)] = mean milliseconds``.
    """
    # Low thresholds recompute exponentially by design, so the grid stays
    # deliberately small (the 0 % point on a 10-relation star already
    # takes minutes per seed in pure Python).
    sizes = [6, 8] if scale == "small" else [6, 8, 9]
    seeds = 3 if scale == "small" else 5
    samples: dict[tuple[str, int, float], float] = {}
    for n in sizes:
        for suffix in _SUFFIXES:
            for threshold in THRESHOLDS:
                times = []
                for s in range(seeds):
                    seed = seed_for(n, s, 31)
                    query = weighted_query(star(n), seed)
                    capacity = round(threshold * required_cells(n, seed))
                    metrics = Metrics()
                    memo = MemoTable(capacity=capacity, metrics=metrics)
                    optimizer = make_optimizer(
                        BASE + suffix, query, memo=memo, metrics=metrics
                    )
                    elapsed, _ = time_call(optimizer.optimize)
                    times.append(elapsed * 1e3)
                samples[(suffix, n, threshold)] = mean(times)
    return sizes, samples


def run_fig21_24_tradeoff(scale: str = "small") -> ExperimentResult:
    """Figures 21–24: one series per algorithm, normalized by TLNMC@100%."""
    sizes, samples = _measure_grid(scale)
    columns = ["algorithm", "n"] + [f"{int(t * 100)}%" for t in THRESHOLDS]
    result = ExperimentResult(
        "fig21-24", "CPU-Storage Trade-off (normalized by unbounded TLNMC)", columns
    )
    for suffix in _SUFFIXES:
        label = BASE + suffix
        for n in sizes:
            base_ms = samples[("", n, 1.0)]
            row = {"algorithm": label, "n": n}
            for threshold in THRESHOLDS:
                row[f"{int(threshold * 100)}%"] = (
                    samples[(suffix, n, threshold)] / base_ms
                )
            result.add_row(**row)
    result.notes.append(
        "expect: every algorithm's cost grows as storage shrinks; the "
        "growth is steepest for exhaustive TLNMC"
    )
    return result


def run_fig25_30_by_threshold(scale: str = "small") -> ExperimentResult:
    """Figures 25–30: same data regrouped by threshold.

    Each algorithm is normalized by exhaustive TLNMC *at the same
    threshold*, reproducing the per-figure comparisons.
    """
    sizes, samples = _measure_grid(scale)
    columns = ["threshold", "n", "exh_ms", "A_rel", "P_rel", "AP_rel"]
    result = ExperimentResult(
        "fig25-30", "Star Queries by Storage Threshold", columns
    )
    for threshold in THRESHOLDS:
        for n in sizes:
            base_ms = samples[("", n, threshold)]
            result.add_row(
                threshold=f"{int(threshold * 100)}%",
                n=n,
                exh_ms=base_ms,
                A_rel=samples[("A", n, threshold)] / base_ms,
                P_rel=samples[("P", n, threshold)] / base_ms,
                AP_rel=samples[("AP", n, threshold)] / base_ms,
            )
    result.notes.append(
        "expect: at 100% P wins and A suffers budget/memo interference; "
        "as storage shrinks A improves steadily and dominates at 0-1%"
    )
    return result


#: Algorithm the policy-extension experiments run (the paper's flagship).
POLICY_BASE = "TBNmc"

#: Workload cells of the eviction-policy extension and the policies each
#: runs.  ``smallest`` is excluded from clique-10: evicting small
#: (cheap) expressions first is pathological on dense graphs and takes
#: minutes there without adding information.
_POLICY_CELLS_SMALL = (
    ("star", 8, ("lru", "smallest", "cost", "profile")),
    ("clique", 8, ("lru", "smallest", "cost", "profile")),
)
_POLICY_CELLS_PAPER = _POLICY_CELLS_SMALL + (
    ("clique", 10, ("lru", "cost", "profile")),
    ("chain", 12, ("lru", "smallest", "cost", "profile")),
    ("cycle", 10, ("lru", "smallest", "cost", "profile")),
)


def run_memory_policies(scale: str = "small") -> ExperimentResult:
    """Eviction-policy extension: cost-aware caching at half capacity.

    Every cell caps the memo at 50 % of the cells unbounded enumeration
    populates and compares the eviction policies on *recomputed* join
    operators (operators costed beyond the unbounded run's — pure
    eviction overhead).  The ``profile`` policy consumes a
    :class:`~repro.cache.costing.CostProfile` distilled from a traced
    unbounded run of the same query (the ``repro profile-memo`` flow);
    ``cost+cold`` is the cost policy with a cold demotion tier of the
    same size as the hot one, where eviction stops being a loss at all.
    """
    result = ExperimentResult(
        "memory-policies",
        f"Eviction Policies at 50% Capacity ({POLICY_BASE})",
        ["topology", "n", "cells", "capacity", "policy", "joins_costed",
         "recomputed", "evictions", "demotions", "cold_hits", "ms", "optimal"],
    )
    cells = _POLICY_CELLS_SMALL if scale == "small" else _POLICY_CELLS_PAPER
    for topology, n, policies in cells:
        seed = seed_for(n, 0, 47)
        query = weighted_query(graph_maker(topology)(n, seed), seed)
        tracer = RecordingTracer()
        base_metrics = Metrics()
        unbounded = make_optimizer(POLICY_BASE, query, metrics=base_metrics,
                                   tracer=tracer)
        best = unbounded.optimize()
        base_joins = base_metrics.join_operators_costed
        required = unbounded.memo.populated_cells()
        capacity = required // 2
        profile = CostProfile.from_tracer(tracer)
        variants = [(name, {"memo_policy": name}) for name in policies]
        variants.append(
            ("cost+cold",
             {"memo_policy": "cost", "memo_cold_capacity": capacity}),
        )
        for label, overrides in variants:
            if overrides["memo_policy"] == "profile":
                overrides["memo_profile"] = profile
            metrics = Metrics()
            optimizer = make_optimizer(
                POLICY_BASE, query, metrics=metrics,
                memo_capacity=capacity, **overrides,
            )
            elapsed, plan = time_call(optimizer.optimize)
            result.add_row(
                topology=topology,
                n=n,
                cells=required,
                capacity=capacity,
                policy=label,
                joins_costed=metrics.join_operators_costed,
                recomputed=metrics.join_operators_costed - base_joins,
                evictions=optimizer.memo.stats.evictions,
                demotions=optimizer.memo.stats.demotions,
                cold_hits=optimizer.memo.stats.cold_hits,
                ms=elapsed * 1e3,
                optimal=plan.cost == best.cost,
            )
    result.notes.append(
        "expect: every policy stays optimal; on the dense (clique) cells "
        "cost recomputes fewer join operators than lru at equal capacity, "
        "and the cold tier removes recomputation almost entirely"
    )
    return result


def _chain_prefix_queries(n_max: int, seed: int) -> list[Query]:
    """Chain queries over growing prefixes of one shared relation set.

    ``R0 - R1 - ... - R{k-1}`` for ``k = 4 .. n_max``, all drawn from the
    same weighted generation, so consecutive queries share every logical
    subexpression of the common prefix — the Section 5.1 ``Q1``/``Q2``
    situation a cross-query plan cache exists for.
    """
    full = weighted_query(chain(n_max), seed)
    queries = []
    for k in range(4, n_max + 1):
        selectivity = {
            (u, v): s
            for (u, v), s in full.selectivity.items()
            if u < k and v < k
        }
        queries.append(Query(chain(k), full.relations[:k], selectivity))
    return queries


def run_shared_cache(scale: str = "small") -> ExperimentResult:
    """Cross-query reuse through a shared :class:`GlobalPlanCache`.

    A batch of chain queries over growing prefixes of one relation set is
    optimized twice: cold (fresh memo per query) and shared (fresh memo
    per query, all read/write-through one global cache).  In the shared
    pass only the expressions involving each query's new relation are
    computed; everything else is a cross-query hit.
    """
    n_max = 10 if scale == "small" else 12
    seed = seed_for(n_max, 0, 53)
    queries = _chain_prefix_queries(n_max, seed)
    result = ExperimentResult(
        "shared-cache",
        f"Cross-Query Plan Cache on Chain Prefixes ({POLICY_BASE})",
        ["k", "cold_joins", "shared_joins", "shared_hits", "cache_cells",
         "same_plan"],
    )
    cache = GlobalPlanCache()
    total_cold = 0
    total_shared = 0
    for query in queries:
        cold_metrics = Metrics()
        cold_plan = make_optimizer(
            POLICY_BASE, query, metrics=cold_metrics
        ).optimize()
        shared_metrics = Metrics()
        shared_optimizer = make_optimizer(
            POLICY_BASE, query, metrics=shared_metrics, global_cache=cache
        )
        shared_plan = shared_optimizer.optimize()
        total_cold += cold_metrics.join_operators_costed
        total_shared += shared_metrics.join_operators_costed
        result.add_row(
            k=query.n,
            cold_joins=cold_metrics.join_operators_costed,
            shared_joins=shared_metrics.join_operators_costed,
            shared_hits=shared_optimizer.memo.stats.shared_hits,
            cache_cells=len(cache),
            same_plan=shared_plan.cost == cold_plan.cost,
        )
    result.notes.append(
        f"totals: cold={total_cold} shared={total_shared} join operators; "
        "expect shared << cold (only the new relation's expressions are "
        "computed per query) with identical plan costs throughout"
    )
    return result
