"""Figures 13–20: branch-and-bound pruning experiments.

Weighted queries (Section 4.3 generation) optimized by the optimal
top-down algorithms extended with accumulated-cost (A), predicted-cost
(P), and combined (AP) bounding.

* Figs. 13/14 report **storage**: populated memo cells, normalized by the
  exhaustive algorithm; for accumulated variants both the plans-only
  ("(p)") and plans-plus-lower-bounds ("(p+lb)") series are shown.
* Figs. 15–20 report **CPU time** normalized by the exhaustive algorithm,
  plus the expression re-expansion counter that explains the paper's
  headline surprise: accumulated-cost bounding undermines memoization
  (each expression can be re-enumerated under many different budgets) and
  eventually costs far more than exhaustive search, while predicted-cost
  bounding's savings track its storage pruning.
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.metrics import Metrics
from repro.experiments.common import ExperimentResult, graph_maker, seed_for, time_call
from repro.registry import make_optimizer
from repro.workloads.weights import weighted_query

__all__ = [
    "run_fig13_storage_leftdeep",
    "run_fig14_storage_bushy",
    "run_fig15_cpu_star_leftdeep",
    "run_fig16_cpu_star_bushy",
    "run_fig17_cpu_chain_leftdeep",
    "run_fig18_cpu_chain_bushy",
    "run_fig19_cpu_cyclic_leftdeep",
    "run_fig20_cpu_cyclic_bushy",
]

_SUFFIXES = ("", "A", "P", "AP")


def _measure(base: str, topology: str, n: int, seeds: int):
    """Run all four bounding variants; return per-variant samples."""
    make = graph_maker(topology)
    samples: dict[str, dict[str, list[float]]] = {
        s: {"ms": [], "plans": [], "cells": [], "reexp": []} for s in _SUFFIXES
    }
    for s in range(seeds):
        graph = make(n, seed_for(n, s))
        query = weighted_query(graph, seed_for(n, s, 977))
        for suffix in _SUFFIXES:
            metrics = Metrics()
            optimizer = make_optimizer(base + suffix, query, metrics=metrics)
            elapsed, _ = time_call(optimizer.optimize)
            samples[suffix]["ms"].append(elapsed * 1e3)
            samples[suffix]["plans"].append(optimizer.memo.plan_cells())
            samples[suffix]["cells"].append(optimizer.memo.populated_cells())
            samples[suffix]["reexp"].append(metrics.expressions_reexpanded)
    return samples


def _run_storage(
    experiment_id: str, title: str, base: str, topology: str,
    sizes: list[int], seeds: int,
) -> ExperimentResult:
    columns = [
        "n", "exh_cells",
        "A_p", "A_p+lb", "P_p", "AP_p", "AP_p+lb",
    ]
    result = ExperimentResult(experiment_id, title, columns)
    for n in sizes:
        samples = _measure(base, topology, n, seeds)
        exhaustive_cells = mean(samples[""]["cells"])
        result.add_row(
            n=n,
            exh_cells=exhaustive_cells,
            **{
                "A_p": mean(samples["A"]["plans"]) / exhaustive_cells,
                "A_p+lb": mean(samples["A"]["cells"]) / exhaustive_cells,
                "P_p": mean(samples["P"]["plans"]) / exhaustive_cells,
                "AP_p": mean(samples["AP"]["plans"]) / exhaustive_cells,
                "AP_p+lb": mean(samples["AP"]["cells"]) / exhaustive_cells,
            },
        )
    result.notes.append(
        "expect: A prunes stored plans hardest; its total storage (p+lb) "
        "plateaus higher; P prunes consistently but weaker"
    )
    return result


def _run_cpu(
    experiment_id: str, title: str, base: str, topology: str,
    sizes: list[int], seeds: int,
) -> ExperimentResult:
    columns = ["n", "exh_ms", "A_rel", "P_rel", "AP_rel", "A_reexpansions"]
    result = ExperimentResult(experiment_id, title, columns)
    for n in sizes:
        samples = _measure(base, topology, n, seeds)
        exhaustive_ms = mean(samples[""]["ms"])
        result.add_row(
            n=n,
            exh_ms=exhaustive_ms,
            A_rel=mean(samples["A"]["ms"]) / exhaustive_ms,
            P_rel=mean(samples["P"]["ms"]) / exhaustive_ms,
            AP_rel=mean(samples["AP"]["ms"]) / exhaustive_ms,
            A_reexpansions=mean(samples["A"]["reexp"]),
        )
    result.notes.append(
        "expect: P improves roughly in line with its storage pruning; "
        "A's re-expansions grow with size and eventually make it slower "
        "than exhaustive (the paper's Section 4.3.2 surprise)"
    )
    return result


def _sizes(scale: str) -> list[int]:
    return [6, 8, 10] if scale == "small" else [6, 8, 10, 12]


def _seeds(scale: str) -> int:
    return 5 if scale == "small" else 10


def run_fig13_storage_leftdeep(scale: str = "small") -> ExperimentResult:
    """Figure 13: memo storage, star queries, left-deep."""
    return _run_storage(
        "fig13", "Storage Size: Star Queries, Left-Deep", "TLNmc", "star",
        _sizes(scale), _seeds(scale),
    )


def run_fig14_storage_bushy(scale: str = "small") -> ExperimentResult:
    """Figure 14: memo storage, star queries, bushy."""
    return _run_storage(
        "fig14", "Storage Size: Star Queries, Bushy", "TBNmc", "star",
        _sizes(scale), _seeds(scale),
    )


def run_fig15_cpu_star_leftdeep(scale: str = "small") -> ExperimentResult:
    """Figure 15: CPU time, star queries, left-deep."""
    return _run_cpu(
        "fig15", "CPU Time: Star Queries, Left-Deep", "TLNmc", "star",
        _sizes(scale), _seeds(scale),
    )


def run_fig16_cpu_star_bushy(scale: str = "small") -> ExperimentResult:
    """Figure 16: CPU time, star queries, bushy."""
    return _run_cpu(
        "fig16", "CPU Time: Star Queries, Bushy", "TBNmc", "star",
        _sizes(scale), _seeds(scale),
    )


def run_fig17_cpu_chain_leftdeep(scale: str = "small") -> ExperimentResult:
    """Figure 17: CPU time, chain queries, left-deep."""
    return _run_cpu(
        "fig17", "CPU Time: Chain Queries, Left-Deep", "TLNmc", "chain",
        _sizes(scale), _seeds(scale),
    )


def run_fig18_cpu_chain_bushy(scale: str = "small") -> ExperimentResult:
    """Figure 18: CPU time, chain queries, bushy."""
    return _run_cpu(
        "fig18", "CPU Time: Chain Queries, Bushy", "TBNmc", "chain",
        _sizes(scale), _seeds(scale),
    )


def run_fig19_cpu_cyclic_leftdeep(scale: str = "small") -> ExperimentResult:
    """Figure 19: CPU time, cyclic queries, left-deep."""
    return _run_cpu(
        "fig19", "CPU Time: Cyclic Queries (C=.4), Left-Deep", "TLNmc",
        "random-cyclic", _sizes(scale), _seeds(scale),
    )


def run_fig20_cpu_cyclic_bushy(scale: str = "small") -> ExperimentResult:
    """Figure 20: CPU time, cyclic queries, bushy."""
    return _run_cpu(
        "fig20", "CPU Time: Cyclic Queries (C=.4), Bushy", "TBNmc",
        "random-cyclic", _sizes(scale), _seeds(scale),
    )
