"""Figures 6–12: exhaustive enumeration, top-down vs. bottom-up.

Reports CPU time normalized against the optimal top-down algorithm of the
relevant space (TLNMC for the left-deep figures, TBNMC for the bushy
ones), exactly as the paper's plots do, plus the join-operator counters.

Paper shapes to reproduce:

* Figs. 6–8 (left-deep): TLNnaive and BLNsize are suboptimal in theory
  but the gap is modest at practical sizes — optimal partitioning adds
  little for left-deep CP-free plans.
* Fig. 9 (bushy stars): BBNsize blows up; TBNnaive ≈ BBNnaive (same
  suboptimal complexity); TBNMC ≈ BBNccp (both optimal).
* Fig. 11 (bushy cliques): everything is optimal and within a small
  constant (the paper reports 10–15 %).
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.metrics import Metrics
from repro.experiments.common import ExperimentResult, graph_maker, seed_for, time_call
from repro.registry import make_optimizer
from repro.workloads.weights import weighted_query

__all__ = [
    "run_fig6_leftdeep_chain",
    "run_fig7_leftdeep_star",
    "run_fig8_leftdeep_cyclic",
    "run_fig9_bushy_star",
    "run_fig10_bushy_chain",
    "run_fig11_bushy_clique",
    "run_fig12_bushy_cyclic",
]


def _run_exhaustive(
    experiment_id: str,
    title: str,
    topology: str,
    sizes: list[int],
    algorithms: list[str],
    reference: str,
    seeds: int = 1,
    caps: dict[str, int] | None = None,
) -> ExperimentResult:
    """Time each algorithm; report times normalized by ``reference``.

    ``caps`` maps algorithm names to their maximum feasible size (larger
    cells are left blank) — the pure-Python substitute for the paper's
    larger grids, recorded in the result notes.
    """
    caps = caps or {}
    columns = ["n", f"{reference}_ms", f"{reference}_joinops"]
    columns += [f"{name}_rel" for name in algorithms if name != reference]
    result = ExperimentResult(experiment_id, title, columns)
    randomized = topology.startswith("random")
    make = graph_maker(topology)
    for n in sizes:
        seed_list = range(seeds) if randomized else [0]
        times: dict[str, list[float]] = {name: [] for name in algorithms}
        join_ops: list[int] = []
        for s in seed_list:
            graph = make(n, seed_for(n, s))
            query = weighted_query(graph, seed_for(n, s, 977))
            for name in algorithms:
                if n > caps.get(name, 10**9):
                    continue
                metrics = Metrics()
                optimizer = make_optimizer(name, query, metrics=metrics)
                elapsed, _ = time_call(optimizer.optimize)
                times[name].append(elapsed * 1e3)
                if name == reference:
                    join_ops.append(metrics.logical_joins_enumerated)
        reference_ms = mean(times[reference])
        row = {
            "n": n,
            f"{reference}_ms": reference_ms,
            f"{reference}_joinops": mean(join_ops),
        }
        for name in algorithms:
            if name == reference:
                continue
            row[f"{name}_rel"] = (
                mean(times[name]) / reference_ms if times[name] else None
            )
        result.add_row(**row)
    for name, cap in caps.items():
        if any(n > cap for n in sizes):
            result.notes.append(f"{name} skipped above n={cap} (Python runtime cap)")
    return result


_LEFT_DEEP_ALGOS = ["TLNmc", "TLNnaive", "BLNsize"]
_BUSHY_ALGOS = ["TBNmc", "TBNnaive", "BBNsize", "BBNnaive", "BBNccp"]


def run_fig6_leftdeep_chain(scale: str = "small") -> ExperimentResult:
    """Figure 6: left-deep optimization of chain queries."""
    sizes = [6, 10, 14] if scale == "small" else [4, 8, 12, 16, 20]
    result = _run_exhaustive(
        "fig6", "Left-Deep Optimization of Chain Queries", "chain", sizes,
        _LEFT_DEEP_ALGOS, reference="TLNmc",
    )
    result.notes.append("expect: all three within a modest constant factor")
    return result


def run_fig7_leftdeep_star(scale: str = "small") -> ExperimentResult:
    """Figure 7: left-deep optimization of star queries."""
    sizes = [6, 8, 10] if scale == "small" else [6, 8, 10, 12, 14, 16]
    result = _run_exhaustive(
        "fig7", "Left-Deep Optimization of Star Queries", "star", sizes,
        _LEFT_DEEP_ALGOS, reference="TLNmc",
    )
    result.notes.append("expect: all three within a modest constant factor")
    return result


def run_fig8_leftdeep_cyclic(scale: str = "small") -> ExperimentResult:
    """Figure 8: left-deep optimization of cyclic queries (C=.4)."""
    sizes = [6, 8, 10] if scale == "small" else [6, 8, 10, 12, 14]
    seeds = 5 if scale == "small" else 10
    result = _run_exhaustive(
        "fig8", "Left-Deep Optimization of Cyclic Queries (C=.4)", "random-cyclic",
        sizes, _LEFT_DEEP_ALGOS, reference="TLNmc", seeds=seeds,
    )
    result.notes.append("expect: all three within a modest constant factor")
    return result


def run_fig9_bushy_star(scale: str = "small") -> ExperimentResult:
    """Figure 9: bushy optimization of star queries."""
    sizes = [6, 8, 10] if scale == "small" else [6, 8, 10, 12, 14]
    caps = {"BBNsize": 12, "BBNnaive": 13, "TBNnaive": 13}
    result = _run_exhaustive(
        "fig9", "Bushy Optimization of Star Queries", "star", sizes,
        _BUSHY_ALGOS, reference="TBNmc", caps=caps,
    )
    result.notes.append(
        "expect: BBNsize worst and diverging; TBNnaive ≈ BBNnaive; TBNmc ≈ BBNccp"
    )
    return result


def run_fig10_bushy_chain(scale: str = "small") -> ExperimentResult:
    """Figure 10: bushy optimization of chain queries."""
    sizes = [6, 10, 14] if scale == "small" else [4, 8, 12, 16, 20]
    caps = {"BBNnaive": 13, "TBNnaive": 13}
    result = _run_exhaustive(
        "fig10", "Bushy Optimization of Chain Queries", "chain", sizes,
        _BUSHY_ALGOS, reference="TBNmc", caps=caps,
    )
    result.notes.append("expect: naive partitioning diverges (2^n vs n^3 work)")
    return result


def run_fig11_bushy_clique(scale: str = "small") -> ExperimentResult:
    """Figure 11: bushy optimization of clique queries."""
    sizes = [5, 7, 9] if scale == "small" else [5, 7, 9, 11]
    result = _run_exhaustive(
        "fig11", "Bushy Optimization of Clique Queries", "clique", sizes,
        _BUSHY_ALGOS, reference="TBNmc",
    )
    result.notes.append(
        "expect: BBNnaive, TBNnaive, BBNccp, TBNmc all optimal and close "
        "(paper: within 10-15%)"
    )
    return result


def run_fig12_bushy_cyclic(scale: str = "small") -> ExperimentResult:
    """Figure 12: bushy optimization of cyclic queries (C=.4)."""
    sizes = [6, 8, 10] if scale == "small" else [6, 8, 10, 12]
    seeds = 5 if scale == "small" else 10
    caps = {"BBNsize": 12}
    result = _run_exhaustive(
        "fig12", "Bushy Optimization of Cyclic Queries (C=.4)", "random-cyclic",
        sizes, _BUSHY_ALGOS, reference="TBNmc", seeds=seeds, caps=caps,
    )
    result.notes.append("expect: ordering consistent with Fig. 9 but gaps smaller")
    return result
