"""Experiment harness: one driver per figure/table of the paper's evaluation.

Every experiment returns an :class:`~repro.experiments.common.ExperimentResult`
whose rows mirror the series the paper plots, and can be rendered as an
aligned text table.  ``EXPERIMENTS`` maps experiment ids (``fig2`` …
``fig30``, ``table2``) to their drivers; the CLI and the benchmark suite
both dispatch through it.

Scales: every driver takes ``scale="small" | "paper"``.  ``small`` keeps
pure-Python runtimes in seconds (used by tests and benchmarks); ``paper``
uses grids as close to the publication's as Python permits and is what
EXPERIMENTS.md records.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.mincuts import (
    run_fig2_acyclic,
    run_fig3_cyclic,
    run_fig4_clique,
    run_fig5_wheel,
)
from repro.experiments.exhaustive import (
    run_fig6_leftdeep_chain,
    run_fig7_leftdeep_star,
    run_fig8_leftdeep_cyclic,
    run_fig9_bushy_star,
    run_fig10_bushy_chain,
    run_fig11_bushy_clique,
    run_fig12_bushy_cyclic,
)
from repro.experiments.bounding import (
    run_fig13_storage_leftdeep,
    run_fig14_storage_bushy,
    run_fig15_cpu_star_leftdeep,
    run_fig16_cpu_star_bushy,
    run_fig17_cpu_chain_leftdeep,
    run_fig18_cpu_chain_bushy,
    run_fig19_cpu_cyclic_leftdeep,
    run_fig20_cpu_cyclic_bushy,
)
from repro.experiments.memory import (
    run_fig21_24_tradeoff,
    run_fig25_30_by_threshold,
    run_memory_policies,
    run_shared_cache,
)
from repro.experiments.table2 import run_table2


def run_optimality(scale: str = "small"):
    """§3 optimality sweep (lazy import: conformance uses this package)."""
    # lint: disable=import-layering -- documented inversion: the sweep is
    # *implemented* in conformance (it gates the §3 invariant) but is also
    # an experiment id; lazy keeps import time acyclic.
    from repro.conformance.optimality import run_optimality_experiment

    return run_optimality_experiment(scale)


EXPERIMENTS = {
    "fig2": run_fig2_acyclic,
    "fig3": run_fig3_cyclic,
    "fig4": run_fig4_clique,
    "fig5": run_fig5_wheel,
    "fig6": run_fig6_leftdeep_chain,
    "fig7": run_fig7_leftdeep_star,
    "fig8": run_fig8_leftdeep_cyclic,
    "fig9": run_fig9_bushy_star,
    "fig10": run_fig10_bushy_chain,
    "fig11": run_fig11_bushy_clique,
    "fig12": run_fig12_bushy_cyclic,
    "fig13": run_fig13_storage_leftdeep,
    "fig14": run_fig14_storage_bushy,
    "fig15": run_fig15_cpu_star_leftdeep,
    "fig16": run_fig16_cpu_star_bushy,
    "fig17": run_fig17_cpu_chain_leftdeep,
    "fig18": run_fig18_cpu_chain_bushy,
    "fig19": run_fig19_cpu_cyclic_leftdeep,
    "fig20": run_fig20_cpu_cyclic_bushy,
    "fig21-24": run_fig21_24_tradeoff,
    "fig25-30": run_fig25_30_by_threshold,
    "memory-policies": run_memory_policies,
    "shared-cache": run_shared_cache,
    "table2": run_table2,
    "optimality": run_optimality,
}

__all__ = ["EXPERIMENTS", "ExperimentResult"]
