"""CI regression gate: Table 2 workloads vs committed baselines.

Every cell runs ``repro optimize --json`` (a real subprocess, exactly what
a user runs) on one Table 2 workload — a topology/size/seed triple under
one of the four space-defining algorithms — and extracts the two values
the paper's claims rest on:

* ``join_operators_costed`` — the enumeration-cost counter Table 2
  reports.  Compared **exactly**: any drift means the search visited a
  different set of join operators, i.e. an algorithmic change.
* best-plan ``cost`` — compared to a tight relative tolerance (floating
  summation order may legitimately differ across Python builds); real
  drift means the optimizer no longer finds the same optimum.

Usage::

    python -m repro.experiments.regression --check     # CI gate
    python -m repro.experiments.regression --update    # refresh baseline

The baseline JSON is committed at ``benchmarks/baselines/table2_baseline.json``;
refresh it only when an intentional change alters the enumeration, and
say why in the commit.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Callable

from repro.experiments.common import seed_for
from repro.experiments.table2 import TOPOLOGIES

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "collect",
    "compare",
    "main",
    "workload_cells",
]

DEFAULT_BASELINE_PATH = os.path.join(
    "benchmarks", "baselines", "table2_baseline.json"
)

#: One join-operator-counting algorithm per Table 2 plan space.
ALGORITHMS = ("TLNmc", "TBNmc", "TLCnaive", "TBCnaive")

SIZES = (5, 8)

#: Plan costs may differ across builds by float summation order only.
COST_REL_TOL = 1e-9


def workload_cells() -> list[dict]:
    """The gated workload grid: algorithm x topology x size (seeded)."""
    cells = []
    for algorithm in ALGORITHMS:
        for topology in TOPOLOGIES:
            for n in SIZES:
                cells.append(
                    {
                        "algorithm": algorithm,
                        "topology": topology,
                        "n": n,
                        "seed": seed_for(n, 0),
                    }
                )
    return cells


def _cell_key(cell: dict) -> str:
    return f"{cell['algorithm']}/{cell['topology']}/n{cell['n']}/s{cell['seed']}"


def _run_cli(cell: dict) -> dict:
    """Invoke ``repro optimize --json`` for one cell; return its payload."""
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "optimize",
        "--algorithm",
        cell["algorithm"],
        "--topology",
        cell["topology"],
        "--n",
        str(cell["n"]),
        "--seed",
        str(cell["seed"]),
        "--json",
    ]
    completed = subprocess.run(
        command, capture_output=True, text=True, check=True
    )
    return json.loads(completed.stdout)


def collect(runner: Callable[[dict], dict] = _run_cli) -> dict[str, dict]:
    """Measure every cell; ``runner`` is injectable for tests."""
    measured = {}
    for cell in workload_cells():
        payload = runner(cell)
        measured[_cell_key(cell)] = {
            "cost": payload["cost"],
            "join_operators_costed": payload["metrics"]["join_operators_costed"],
        }
    return measured


def compare(
    baseline: dict[str, dict],
    measured: dict[str, dict],
    rel_tol: float = COST_REL_TOL,
) -> list[str]:
    """Return human-readable drift messages (empty = gate passes)."""
    problems = []
    for key in sorted(set(baseline) | set(measured)):
        if key not in measured:
            problems.append(f"{key}: in baseline but not measured")
            continue
        if key not in baseline:
            problems.append(f"{key}: measured but missing from baseline")
            continue
        expected, actual = baseline[key], measured[key]
        if expected["join_operators_costed"] != actual["join_operators_costed"]:
            problems.append(
                f"{key}: join_operators_costed drifted "
                f"{expected['join_operators_costed']} -> "
                f"{actual['join_operators_costed']}"
            )
        reference = max(abs(expected["cost"]), 1e-300)
        if abs(expected["cost"] - actual["cost"]) / reference > rel_tol:
            problems.append(
                f"{key}: best-plan cost drifted "
                f"{expected['cost']!r} -> {actual['cost']!r}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Table 2 counter/cost regression gate"
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_PATH, metavar="PATH"
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true", help="fail on drift vs the baseline"
    )
    mode.add_argument(
        "--update", action="store_true", help="rewrite the baseline file"
    )
    args = parser.parse_args(argv)

    measured = collect()
    if args.update:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {len(measured)} cells to {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; run with --update first")
        return 2
    problems = compare(baseline, measured)
    if problems:
        print(f"{len(problems)} regression(s) vs {args.baseline}:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"{len(measured)} cells match {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
