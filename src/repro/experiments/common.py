"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import mean
from typing import Any, Callable, Sequence

from repro.core.joingraph import JoinGraph
from repro.obs.timing import time_call
from repro.workloads import (
    chain,
    clique,
    cycle,
    random_connected_graph,
    star,
    wheel,
)

__all__ = [
    "ExperimentResult",
    "graph_maker",
    "mean_over_seeds",
    "time_call",
]

#: Base seed so every experiment is reproducible run-to-run.
BASE_SEED = 20070611  # SIGMOD'07 started June 11, 2007


@dataclass
class ExperimentResult:
    """Structured result of one experiment: the series the paper plots.

    ``columns`` names the fields of each row dict in display order;
    ``notes`` records scaling substitutions and shape conclusions.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one row (keyword arguments keyed by column name)."""
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """Extract one column across rows (None cells skipped by callers)."""
        return [row.get(name) for row in self.rows]

    def to_json(self) -> str:
        """Machine-readable dump (id, title, columns, rows, notes)."""
        import json

        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )

    def render(self) -> str:
        """Aligned text table with the experiment header and notes."""

        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1e5 or abs(value) < 1e-3:
                    return f"{value:.3g}"
                return f"{value:.4g}"
            return str(value)

        header = [self.columns]
        body = [[fmt(row.get(c)) for c in self.columns] for row in self.rows]
        widths = [
            max(len(line[i]) for line in header + body)
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def graph_maker(topology: str) -> Callable[..., JoinGraph]:
    """Resolve a topology name to its constructor.

    ``random-acyclic`` / ``random-cyclic`` take ``(n, seed)``; the fixed
    shapes take ``(n)`` (seed ignored).
    """
    fixed = {"chain": chain, "star": star, "cycle": cycle, "clique": clique, "wheel": wheel}
    if topology in fixed:
        make = fixed[topology]
        return lambda n, seed=0: make(n)
    if topology == "random-acyclic":
        return lambda n, seed=0: random_connected_graph(n, 0.0, seed)
    if topology == "random-cyclic":
        return lambda n, seed=0: random_connected_graph(n, 0.4, seed)
    raise ValueError(f"unknown topology {topology!r}")


def seed_for(*components: int) -> int:
    """Derive a reproducible seed from experiment coordinates."""
    value = BASE_SEED
    for component in components:
        value = value * 1_000_003 + component + 1
    return value & 0x7FFFFFFF


def mean_over_seeds(
    seeds: Sequence[int], fn: Callable[[int], float]
) -> float:
    """Mean of ``fn(seed)`` over the given seeds."""
    return mean(fn(s) for s in seeds)


def fresh_rng(seed: int) -> random.Random:
    """A dedicated random.Random for the given seed."""
    return random.Random(seed)
