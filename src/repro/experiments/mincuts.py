"""Figures 2–5: minimal-cut enumeration performance.

Compares ``MinCutEager``, ``MinCutLazy``, and ``MinCutOptimistic`` on the
paper's four graph families — random acyclic (C=0), random cyclic (C=.4),
cliques, and spoked wheels — reporting total CPU time to enumerate every
minimal cut plus the machine-independent counters the analysis of
Section 3.3 predicts (biconnection trees built, failed connectivity
probes).

Paper shapes to reproduce:

* Fig. 2 (acyclic): MinCutLazy vastly superior; builds exactly one tree.
* Fig. 3 (C=.4): MinCutLazy slightly worse than MinCutOptimistic, both
  far better than MinCutEager.
* Fig. 4 (cliques): MinCutLazy degrades to MinCutEager (trees never
  reusable); MinCutOptimistic much better.
* Fig. 5 (wheels): MinCutOptimistic scales worse than both tree-based
  algorithms (a rim anchor makes the hub enter S first).
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.metrics import Metrics
from repro.experiments.common import ExperimentResult, graph_maker, seed_for, time_call
from repro.partition import MinCutEager, MinCutLazy, MinCutOptimistic

__all__ = [
    "run_fig2_acyclic",
    "run_fig3_cyclic",
    "run_fig4_clique",
    "run_fig5_wheel",
]

_ALGORITHMS = ("eager", "lazy", "optimistic")


def _strategies(topology: str) -> dict[str, object]:
    # Figure 5's worst case needs the wheel anchored on the rim so the hub
    # (vertex 0) is the first element available to S.
    anchor = 1 if topology == "wheel" else None
    return {
        "eager": MinCutEager(anchor=anchor),
        "lazy": MinCutLazy(anchor=anchor),
        "optimistic": MinCutOptimistic(anchor=anchor),
    }


def _run_family(
    experiment_id: str,
    title: str,
    topology: str,
    sizes: list[int],
    seeds: int,
) -> ExperimentResult:
    columns = ["n", "cuts"]
    for name in _ALGORITHMS:
        columns += [f"{name}_ms", f"{name}_trees", f"{name}_failed"]
    result = ExperimentResult(experiment_id, title, columns)
    randomized = topology.startswith("random")
    make = graph_maker(topology)
    for n in sizes:
        seed_list = range(seeds) if randomized else [0]
        samples = {name: [] for name in _ALGORITHMS}
        trees = {name: [] for name in _ALGORITHMS}
        failed = {name: [] for name in _ALGORITHMS}
        cut_counts = []
        for s in seed_list:
            graph = make(n, seed_for(n, s))
            for name, strategy in _strategies(topology).items():
                metrics = Metrics()
                elapsed, _ = time_call(
                    lambda: sum(
                        1 for _ in strategy.partitions(graph, graph.all_vertices, metrics)
                    )
                )
                samples[name].append(elapsed * 1e3)
                trees[name].append(metrics.bcc_trees_built)
                failed[name].append(metrics.failed_connectivity_tests)
                if name == "lazy":
                    cut_counts.append(metrics.partitions_emitted // 2)
        row = {"n": n, "cuts": mean(cut_counts)}
        for name in _ALGORITHMS:
            row[f"{name}_ms"] = mean(samples[name])
            row[f"{name}_trees"] = mean(trees[name])
            row[f"{name}_failed"] = mean(failed[name])
        result.add_row(**row)
    return result


def run_fig2_acyclic(scale: str = "small") -> ExperimentResult:
    """Figure 2: minimal cuts of random acyclic graphs (C=0)."""
    sizes = [10, 20, 40] if scale == "small" else [10, 20, 40, 60, 80, 100]
    seeds = 10 if scale == "small" else 100
    result = _run_family(
        "fig2", "Minimal Cuts of Acyclic Graphs (C=0)", "random-acyclic", sizes, seeds
    )
    result.notes.append(
        "expect: lazy builds exactly 1 tree and dominates; optimistic beats eager"
    )
    return result


def run_fig3_cyclic(scale: str = "small") -> ExperimentResult:
    """Figure 3: minimal cuts of random cyclic graphs (C=.4)."""
    sizes = [8, 10, 12] if scale == "small" else [8, 10, 12, 14, 16, 18]
    seeds = 10 if scale == "small" else 100
    result = _run_family(
        "fig3", "Minimal Cuts of Cyclic Graphs (C=.4)", "random-cyclic", sizes, seeds
    )
    result.notes.append(
        "expect: lazy slightly worse than optimistic, both far better than eager"
    )
    return result


def run_fig4_clique(scale: str = "small") -> ExperimentResult:
    """Figure 4: minimal cuts of clique graphs."""
    sizes = [6, 8, 10] if scale == "small" else [6, 8, 10, 12, 14, 16]
    result = _run_family("fig4", "Minimal Cuts of Clique Graphs", "clique", sizes, 1)
    result.notes.append(
        "expect: lazy ≈ eager (trees never reusable); optimistic much faster"
    )
    return result


def run_fig5_wheel(scale: str = "small") -> ExperimentResult:
    """Figure 5: minimal cuts of spoked wheel graphs (rim anchor)."""
    sizes = [8, 12, 16] if scale == "small" else [8, 12, 16, 24, 32, 48, 64]
    result = _run_family("fig5", "Minimal Cuts of Wheel Graphs", "wheel", sizes, 1)
    result.notes.append(
        "expect: optimistic's failed probes grow ~cuts*n and it eventually "
        "scales worse than eager and lazy"
    )
    return result
