"""Relations, join predicates, and the catalog that owns them.

The optimizer's statistical inputs are deliberately simple, mirroring the
paper's experimental apparatus (Section 4.3): each relation carries a
cardinality, and each join edge carries a selectivity in ``[0, 1)``.
Cardinality estimation uses the classic independence assumption: the size
of a join over a vertex set ``S`` is the product of the base cardinalities
times the product of the selectivities of all predicates internal to ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Catalog", "JoinPredicate", "Relation"]

#: Default number of tuples that fit on one disk page in the I/O cost model.
DEFAULT_TUPLES_PER_PAGE = 100


@dataclass(frozen=True)
class Relation:
    """A base relation participating in the join.

    ``tuples_per_page`` feeds the I/O cost model's page-count computation;
    the default matches a typical textbook setting.
    """

    name: str
    cardinality: float
    tuples_per_page: int = DEFAULT_TUPLES_PER_PAGE

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise ValueError(f"relation {self.name!r} has negative cardinality")
        if self.tuples_per_page <= 0:
            raise ValueError(f"relation {self.name!r} needs tuples_per_page > 0")

    @property
    def pages(self) -> float:
        """Number of disk pages occupied by the relation (at least 1)."""
        return max(1.0, self.cardinality / self.tuples_per_page)


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate between two relations with a fixed selectivity."""

    left: int
    right: int
    selectivity: float

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValueError("join predicate must relate two distinct relations")
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )

    def endpoints(self) -> tuple[int, int]:
        """Return the endpoints normalized so the smaller index is first."""
        if self.left < self.right:
            return (self.left, self.right)
        return (self.right, self.left)


@dataclass
class Catalog:
    """A named collection of relations and predicates.

    This is the mutable builder used by workload generators and examples;
    :class:`~repro.catalog.query.Query` freezes it into the optimizer input.
    """

    relations: list[Relation] = field(default_factory=list)
    predicates: list[JoinPredicate] = field(default_factory=list)

    def add_relation(
        self,
        name: str,
        cardinality: float,
        tuples_per_page: int = DEFAULT_TUPLES_PER_PAGE,
    ) -> int:
        """Register a relation; returns its vertex index."""
        if any(r.name == name for r in self.relations):
            raise ValueError(f"duplicate relation name {name!r}")
        self.relations.append(Relation(name, cardinality, tuples_per_page))
        return len(self.relations) - 1

    def add_predicate(self, left: int, right: int, selectivity: float) -> None:
        """Register a join predicate between relation indices."""
        size = len(self.relations)
        if not (0 <= left < size and 0 <= right < size):
            raise ValueError(f"predicate ({left}, {right}) references unknown relation")
        key = (min(left, right), max(left, right))
        if any(p.endpoints() == key for p in self.predicates):
            raise ValueError(f"duplicate predicate between {left} and {right}")
        self.predicates.append(JoinPredicate(left, right, selectivity))

    def index_of(self, name: str) -> int:
        """Return the vertex index of the relation called ``name``."""
        for i, r in enumerate(self.relations):
            if r.name == name:
                return i
        raise KeyError(name)
