"""Catalog substrate: relations, join predicates, and cardinality estimation."""

from repro.catalog.stats import Catalog, JoinPredicate, Relation
from repro.catalog.query import Query

__all__ = ["Catalog", "JoinPredicate", "Relation", "Query"]
