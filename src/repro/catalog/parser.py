"""A tiny textual DSL for describing join queries.

Not part of the paper, but indispensable for playing with the optimizer:
a query is one line of relations and one of predicates, e.g.::

    orders(1e6) customer(100000) nation(25) region(5);
    orders-customer:1e-5 customer-nation:0.04 nation-region:0.2

Grammar (whitespace-separated tokens, ``;`` splits the two sections)::

    relations  := relation+
    relation   := NAME '(' CARDINALITY ')'
    predicates := predicate+
    predicate  := NAME '-' NAME ':' SELECTIVITY

Numbers accept scientific notation.  The resulting join graph must be
connected.

Parse failures raise :class:`QuerySyntaxError` carrying the character
offset (and derived line/column) of the offending token, so callers that
relay queries on behalf of others — the ``repro.serve`` tier returning
400-style structured errors — can point at the exact input span instead
of echoing a bare message.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

from repro.catalog.query import Query
from repro.catalog.stats import Catalog

__all__ = ["parse_query", "QuerySyntaxError"]

_RELATION = re.compile(r"^(?P<name>[A-Za-z_]\w*)\((?P<card>[^)]+)\)$")
_PREDICATE = re.compile(
    r"^(?P<left>[A-Za-z_]\w*)-(?P<right>[A-Za-z_]\w*):(?P<sel>\S+)$"
)
_TOKEN = re.compile(r"\S+")


class QuerySyntaxError(ValueError):
    """Raised when the query text cannot be parsed.

    ``str(exc)`` is the bare human-readable message (unchanged from the
    pre-positional era); :attr:`position`, :attr:`line`, and
    :attr:`column` locate the offending token in the original text when
    known (``position`` is a 0-based character offset, ``line`` and
    ``column`` are 1-based).  :meth:`to_dict` is the structured form the
    serve tier embeds in error responses.
    """

    def __init__(
        self,
        message: str,
        *,
        position: Optional[int] = None,
        text: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.position = position
        self.line: Optional[int] = None
        self.column: Optional[int] = None
        if position is not None and text is not None:
            prefix = text[:position]
            self.line = prefix.count("\n") + 1
            self.column = position - (prefix.rfind("\n") + 1) + 1

    def to_dict(self) -> dict[str, object]:
        """Structured form for machine-readable error responses."""
        return {
            "message": self.message,
            "position": self.position,
            "line": self.line,
            "column": self.column,
        }


def _tokens(section: str, base: int) -> Iterator[tuple[str, int]]:
    """Whitespace-separated tokens of ``section`` with absolute offsets."""
    for match in _TOKEN.finditer(section):
        yield match.group(), base + match.start()


def _number(text: str, what: str, *, position: int, source: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise QuerySyntaxError(
            f"bad {what}: {text!r}", position=position, text=source
        ) from None


def parse_query(text: str) -> Query:
    """Parse the DSL described in the module docstring into a Query."""
    parts = text.split(";")
    if len(parts) != 2:
        # Two semicolons: the second one is the surplus; none: unknown spot.
        position = None
        if len(parts) > 2:
            position = len(parts[0]) + 1 + len(parts[1])
        raise QuerySyntaxError(
            "expected exactly one ';' between relations and predicates",
            position=position,
            text=text,
        )
    relation_section, predicate_section = parts
    predicate_base = len(relation_section) + 1
    relation_tokens = list(_tokens(relation_section, 0))
    if not relation_tokens:
        raise QuerySyntaxError("no relations given", position=0, text=text)

    catalog = Catalog()
    for token, offset in relation_tokens:
        match = _RELATION.match(token)
        if match is None:
            raise QuerySyntaxError(
                f"bad relation {token!r}; expected name(card)",
                position=offset,
                text=text,
            )
        card_offset = offset + match.start("card")
        catalog.add_relation(
            match.group("name"),
            _number(
                match.group("card"), "cardinality",
                position=card_offset, source=text,
            ),
        )

    for token, offset in _tokens(predicate_section, predicate_base):
        match = _PREDICATE.match(token)
        if match is None:
            raise QuerySyntaxError(
                f"bad predicate {token!r}; expected left-right:selectivity",
                position=offset,
                text=text,
            )
        try:
            left = catalog.index_of(match.group("left"))
        except KeyError as exc:
            raise QuerySyntaxError(
                f"unknown relation {exc.args[0]!r}",
                position=offset + match.start("left"),
                text=text,
            ) from None
        try:
            right = catalog.index_of(match.group("right"))
        except KeyError as exc:
            raise QuerySyntaxError(
                f"unknown relation {exc.args[0]!r}",
                position=offset + match.start("right"),
                text=text,
            ) from None
        selectivity = _number(
            match.group("sel"), "selectivity",
            position=offset + match.start("sel"), source=text,
        )
        try:
            catalog.add_predicate(left, right, selectivity)
        except ValueError as exc:
            raise QuerySyntaxError(
                f"bad predicate {token!r}: {exc}", position=offset, text=text
            ) from None

    try:
        return Query.from_catalog(catalog)
    except ValueError as exc:
        raise QuerySyntaxError(str(exc), text=text) from None
