"""A tiny textual DSL for describing join queries.

Not part of the paper, but indispensable for playing with the optimizer:
a query is one line of relations and one of predicates, e.g.::

    orders(1e6) customer(100000) nation(25) region(5);
    orders-customer:1e-5 customer-nation:0.04 nation-region:0.2

Grammar (whitespace-separated tokens, ``;`` splits the two sections)::

    relations  := relation+
    relation   := NAME '(' CARDINALITY ')'
    predicates := predicate+
    predicate  := NAME '-' NAME ':' SELECTIVITY

Numbers accept scientific notation.  The resulting join graph must be
connected.
"""

from __future__ import annotations

import re

from repro.catalog.query import Query
from repro.catalog.stats import Catalog

__all__ = ["parse_query", "QuerySyntaxError"]

_RELATION = re.compile(r"^(?P<name>[A-Za-z_]\w*)\((?P<card>[^)]+)\)$")
_PREDICATE = re.compile(
    r"^(?P<left>[A-Za-z_]\w*)-(?P<right>[A-Za-z_]\w*):(?P<sel>\S+)$"
)


class QuerySyntaxError(ValueError):
    """Raised when the query text cannot be parsed."""


def _number(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise QuerySyntaxError(f"bad {what}: {text!r}") from None


def parse_query(text: str) -> Query:
    """Parse the DSL described in the module docstring into a Query."""
    parts = text.split(";")
    if len(parts) != 2:
        raise QuerySyntaxError(
            "expected exactly one ';' between relations and predicates"
        )
    relation_tokens = parts[0].split()
    predicate_tokens = parts[1].split()
    if not relation_tokens:
        raise QuerySyntaxError("no relations given")

    catalog = Catalog()
    for token in relation_tokens:
        match = _RELATION.match(token)
        if match is None:
            raise QuerySyntaxError(f"bad relation {token!r}; expected name(card)")
        catalog.add_relation(
            match.group("name"), _number(match.group("card"), "cardinality")
        )

    for token in predicate_tokens:
        match = _PREDICATE.match(token)
        if match is None:
            raise QuerySyntaxError(
                f"bad predicate {token!r}; expected left-right:selectivity"
            )
        try:
            left = catalog.index_of(match.group("left"))
            right = catalog.index_of(match.group("right"))
        except KeyError as exc:
            raise QuerySyntaxError(f"unknown relation {exc.args[0]!r}") from None
        try:
            catalog.add_predicate(
                left, right, _number(match.group("sel"), "selectivity")
            )
        except ValueError as exc:
            raise QuerySyntaxError(f"bad predicate {token!r}: {exc}") from None

    try:
        return Query.from_catalog(catalog)
    except ValueError as exc:
        raise QuerySyntaxError(str(exc)) from None
