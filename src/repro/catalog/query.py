"""The optimizer's input: a join graph bound to statistics.

A :class:`Query` couples a connected :class:`~repro.core.joingraph.JoinGraph`
with per-relation cardinalities and per-edge selectivities, and provides the
cardinality estimator shared by every enumeration algorithm.  Estimates are
cached per vertex set, so repeated lookups during enumeration are O(1).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.catalog.stats import Catalog, JoinPredicate, Relation
from repro.core.bitset import iter_bits
from repro.core.joingraph import JoinGraph

__all__ = ["Query"]


class Query:
    """An immutable select-project-join query block over ``n`` relations.

    Attributes
    ----------
    graph:
        The join graph; vertex ``i`` is ``relations[i]``.
    relations:
        Base relations in vertex order.
    selectivity:
        ``selectivity[(u, v)]`` with ``u < v`` for every join edge.
    """

    __slots__ = (
        "graph",
        "relations",
        "selectivity",
        "_cardinality_cache",
        "_edge_items",
        "_log_cards",
        "_log_edges",
    )

    def __init__(
        self,
        graph: JoinGraph,
        relations: Sequence[Relation],
        selectivity: dict[tuple[int, int], float],
    ) -> None:
        if len(relations) != graph.n:
            raise ValueError(
                f"graph has {graph.n} vertices but {len(relations)} relations given"
            )
        missing = [
            (e.u, e.v) for e in graph.edges if (e.u, e.v) not in selectivity
        ]
        if missing:
            raise ValueError(f"missing selectivities for edges {missing}")
        extra = [k for k in selectivity if not graph.has_edge(*k)]
        if extra:
            raise ValueError(f"selectivities given for non-edges {extra}")
        self.graph = graph
        self.relations = tuple(relations)
        self.selectivity = dict(selectivity)
        self._cardinality_cache: dict[int, float] = {}
        # Flat (u, v, sel) list for the estimator's inner loop.
        self._edge_items = tuple(
            (u, v, s) for (u, v), s in sorted(self.selectivity.items())
        )
        # Log-space factors: products over many relations overflow floats
        # (80 relations of 1e5 tuples multiply to 1e400), so the estimator
        # accumulates base-10 logs and exponentiates at the end.
        self._log_cards = tuple(
            math.log10(r.cardinality) if r.cardinality > 0 else None
            for r in self.relations
        )
        self._log_edges = tuple(
            (u, v, math.log10(s)) for (u, v), s in sorted(self.selectivity.items())
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_catalog(cls, catalog: Catalog) -> "Query":
        """Freeze a mutable :class:`Catalog` into a query.

        The join graph is inferred from the catalog's predicates and must be
        connected.
        """
        n = len(catalog.relations)
        edges = [p.endpoints() for p in catalog.predicates]
        graph = JoinGraph(n, edges)
        if not graph.is_connected():
            raise ValueError("catalog predicates do not form a connected join graph")
        selectivity = {p.endpoints(): p.selectivity for p in catalog.predicates}
        return cls(graph, catalog.relations, selectivity)

    @classmethod
    def uniform(
        cls,
        graph: JoinGraph,
        cardinality: float = 1000.0,
        selectivity: float = 0.01,
    ) -> "Query":
        """Convenience constructor: identical stats on every vertex/edge.

        Useful for enumeration-only experiments where the paper's weighted
        generation (Section 4.3) is unnecessary.
        """
        relations = [Relation(f"R{i}", cardinality) for i in range(graph.n)]
        sel = {(e.u, e.v): selectivity for e in graph.edges}
        return cls(graph, relations, sel)

    # -- estimation --------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of relations in the query."""
        return self.graph.n

    def predicates(self) -> list[JoinPredicate]:
        """Materialize the predicate list (mostly for display/round-tripping)."""
        return [JoinPredicate(u, v, s) for (u, v), s in sorted(self.selectivity.items())]

    def cardinality(self, subset: int) -> float:
        """Estimated output cardinality of joining the relations in ``subset``.

        Independence assumption: product of base cardinalities times the
        product of selectivities of every predicate internal to ``subset``.
        Cartesian products fall out naturally (no predicate, no reduction).
        """
        cached = self._cardinality_cache.get(subset)
        if cached is not None:
            return cached
        log_card = 0.0
        for v in iter_bits(subset):
            log_v = self._log_cards[v]
            if log_v is None:  # an empty relation empties every join
                self._cardinality_cache[subset] = 0.0
                return 0.0
            log_card += log_v
        for u, v, log_sel in self._log_edges:
            if subset >> u & 1 and subset >> v & 1:
                log_card += log_sel
        # Clamp instead of overflowing: estimates beyond 1e300 only occur
        # for absurd intermediate cartesian products, whose relative
        # ordering no longer matters.
        if log_card > 300.0:
            card = 1e300
        elif log_card < -300.0:
            card = 1e-300
        else:
            card = 10.0**log_card
        self._cardinality_cache[subset] = card
        return card

    def join_selectivity(self, left: int, right: int) -> float:
        """Combined selectivity of all predicates crossing ``left``/``right``."""
        sel = 1.0
        for u, v, s in self._edge_items:
            u_in_left = left >> u & 1
            v_in_left = left >> v & 1
            u_in_right = right >> u & 1
            v_in_right = right >> v & 1
            if (u_in_left and v_in_right) or (u_in_right and v_in_left):
                sel *= s
        return sel

    def pages(self, subset: int) -> float:
        """Pages occupied by the (materialized) result of ``subset``.

        Base relations report their physical page count; intermediate
        results assume the default packing of their widest constituent.
        """
        card = self.cardinality(subset)
        if subset != 0 and subset & (subset - 1) == 0:
            v = subset.bit_length() - 1
            return max(1.0, card / self.relations[v].tuples_per_page)
        tuples_per_page = min(
            (self.relations[v].tuples_per_page for v in iter_bits(subset)),
            default=1,
        )
        return max(1.0, card / tuples_per_page)

    def relation_name(self, v: int) -> str:
        """Name of the relation at vertex ``v``."""
        return self.relations[v].name

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Query(n={self.n}, edges={self.graph.edge_count()}, "
            f"result≈{self.cardinality(self.graph.all_vertices):.3g})"
        )
