"""Standalone lower-bound helpers for predicted-cost bounding.

The primary entry point is :meth:`repro.cost.io_model.CostModel.lower_bound`;
this module offers the same quantity as a free function plus a whole-plan
lower bound used by tests to verify conservativeness.
"""

from __future__ import annotations

from repro.catalog.query import Query

__all__ = ["scan_lower_bound", "subtree_lower_bound"]


def scan_lower_bound(query: Query, subset: int) -> float:
    """I/O pages to scan ``subset``'s result; zero for base relations.

    Base relations are free because an index-based plan could avoid
    touching every tuple; intermediate results must be read in full
    (Section 4.2, footnote 3).
    """
    if subset & (subset - 1) == 0:
        return 0.0
    return query.pages(subset)


def subtree_lower_bound(query: Query, left: int, right: int) -> float:
    """Lower bound on any plan joining ``left`` with ``right``."""
    return scan_lower_bound(query, left) + scan_lower_bound(query, right)
