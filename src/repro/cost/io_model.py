"""Simple textbook I/O cost model with three physical join operators.

The paper's framework "implemented three different physical join operators,
as well as a simple I/O cost model based on textbook formulae
[Garcia-Molina, Ullman & Widom]" (Section 3.4).  We use the standard
buffer-aware formulas:

* **block nested-loop join**: read the outer once, the inner once per
  outer buffer-load: ``L + ceil(L / (B - 2)) * R``;
* **grace hash join**: partition both inputs to disk and re-read:
  ``3 (L + R)``;
* **sort-merge join**: externally sort both inputs, then a single merge
  pass: ``sort(L) + sort(R) + L + R``;

where ``L``/``R`` are input page counts, ``B`` is the buffer size, and
``sort(P) = 2 P * passes`` with the usual multiway-merge pass count.  The
cost of a join *operator* excludes its children's cumulative costs (those
are added when the plan node is assembled), but includes reading its
inputs — exactly the structure the paper's predicted-cost lower bound of
Section 4.2 exploits.

Orders: the model supports the demand-driven interesting-order machinery
of Algorithm 1 with a deliberately small order vocabulary — an order token
is a vertex index meaning "sorted on that relation's join key".  A
sort-merge join emits its outer input's key order; scans and the other
joins emit unordered output; an explicit sort enforcer produces any order.
The paper's experiments run with the empty order, and so do ours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.query import Query
from repro.core.bitset import first_bit
from repro.obs.profile import KERNEL_COST, KernelProfiler
from repro.plans.physical import Plan

__all__ = [
    "CostModel",
    "JoinMethod",
    "ProfiledCostModel",
    "external_sort_cost",
    "DEFAULT_BUFFER_PAGES",
]

#: Buffer pool size (pages) used by the textbook formulas.
DEFAULT_BUFFER_PAGES = 102


def external_sort_cost(pages: float, buffer_pages: int) -> float:
    """I/O cost of an external multiway merge-sort of ``pages`` pages.

    ``2 * pages`` per pass (read + write); initial run formation plus
    ``ceil(log_{B-1}(runs))`` merge passes.
    """
    if pages <= buffer_pages:
        return 2.0 * pages  # one in-memory pass (read + write result)
    runs = math.ceil(pages / buffer_pages)
    merge_passes = math.ceil(math.log(runs, buffer_pages - 1)) if runs > 1 else 0
    return 2.0 * pages * (1 + merge_passes)


@dataclass(frozen=True)
class _JoinMethod:
    """Descriptor for one physical join operator."""

    op: str
    #: Whether the output order is the outer input's join-key order.
    preserves_key_order: bool


class CostModel:
    """The shared cost model plugged into every enumeration algorithm.

    Parameters
    ----------
    buffer_pages:
        Buffer pool size for the nested-loop and sort formulas.
    """

    JOIN_METHODS = (
        _JoinMethod(op="bnl", preserves_key_order=False),
        _JoinMethod(op="hash", preserves_key_order=False),
        _JoinMethod(op="smj", preserves_key_order=True),
    )

    def __init__(
        self,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        indexed_relations: frozenset[int] | set[int] | None = None,
    ) -> None:
        """``indexed_relations`` lists vertices with a clustered index on
        their join key (the access path the paper's footnote 3 alludes
        to): scans of those relations can produce key order without a
        sort enforcer."""
        if buffer_pages < 3:
            raise ValueError("buffer must hold at least 3 pages")
        self.buffer_pages = buffer_pages
        self.indexed_relations = frozenset(indexed_relations or ())

    # -- scans -------------------------------------------------------------

    def scan_plans(self, query: Query, subset: int, order: int | None) -> list[Plan]:
        """Plans for ``OpScan_i(R)`` satisfying ``order`` (Algorithm 1).

        A sequential scan produces unordered output, so it satisfies only
        the empty order; ordered access comes from a clustered index scan
        (when the relation is in :attr:`indexed_relations`) or else from
        the sort enforcer in ``CalcBestScan``.
        """
        v = first_bit(subset)
        relation = query.relations[v]
        if order is not None:
            if order == v and v in self.indexed_relations:
                return [
                    Plan(
                        op="iscan",
                        vertices=subset,
                        cost=relation.pages,
                        cardinality=relation.cardinality,
                        order=order,
                        relation=relation.name,
                    )
                ]
            return []
        return [
            Plan(
                op="scan",
                vertices=subset,
                cost=relation.pages,
                cardinality=relation.cardinality,
                order=None,
                relation=relation.name,
            )
        ]

    # -- joins -------------------------------------------------------------

    def join_operator_cost(
        self, method: _JoinMethod, left_pages: float, right_pages: float
    ) -> float:
        """Cost of the join operator itself (inputs read, children excluded)."""
        if method.op == "bnl":
            loads = math.ceil(left_pages / (self.buffer_pages - 2))
            return left_pages + loads * right_pages
        if method.op == "hash":
            return 3.0 * (left_pages + right_pages)
        # smj
        return (
            external_sort_cost(left_pages, self.buffer_pages)
            + external_sort_cost(right_pages, self.buffer_pages)
            + left_pages
            + right_pages
        )

    def operator_cost(
        self, query: Query, method: _JoinMethod, left: int, right: int
    ) -> float:
        """Operator cost addressed by input masks (the enumerator's hook).

        The base model derives it from the page-count formula; alternative
        models (e.g. ``C_out``) override this directly.
        """
        return self.join_operator_cost(
            method, query.pages(left), query.pages(right)
        )

    def join_output_order(
        self, query: Query, method: _JoinMethod, left: int, right: int
    ) -> int | None:
        """Order token produced by joining ``left`` and ``right``.

        A sort-merge join leaves its output sorted on the outer side's join
        key; we use the smallest outer endpoint of any crossing predicate.
        """
        if not method.preserves_key_order:
            return None
        for (u, v), _sel in sorted(query.selectivity.items()):
            if left >> u & 1 and right >> v & 1:
                return u
            if left >> v & 1 and right >> u & 1:
                return v
        return None

    def build_join(
        self, query: Query, method: _JoinMethod, left_plan: Plan, right_plan: Plan
    ) -> Plan:
        """Assemble a join plan node; cost is children plus operator."""
        left, right = left_plan.vertices, right_plan.vertices
        operator = self.join_operator_cost(
            method, query.pages(left), query.pages(right)
        )
        combined = left | right
        return Plan(
            op=method.op,
            vertices=combined,
            cost=left_plan.cost + right_plan.cost + operator,
            cardinality=query.cardinality(combined),
            order=self.join_output_order(query, method, left, right),
            children=(left_plan, right_plan),
        )

    # -- enforcers -----------------------------------------------------------

    def sort_cost(self, query: Query, subset: int) -> float:
        """Cost of the ``Sort_o`` enforcer over the given expression."""
        return external_sort_cost(query.pages(subset), self.buffer_pages)

    def build_sort(self, query: Query, child: Plan, order: int) -> Plan:
        """Wrap ``child`` in a sort enforcer producing ``order``."""
        return Plan(
            op="sort",
            vertices=child.vertices,
            cost=child.cost + self.sort_cost(query, child.vertices),
            cardinality=child.cardinality,
            order=order,
            children=(child,),
        )

    # -- predicted-cost lower bound -------------------------------------------

    def lower_bound(self, query: Query, left: int, right: int) -> float:
        """Section 4.2's lower bound for ``G_L ⋈ G_R``.

        Proportional to the I/O of scanning both inputs, with base
        relations costed at zero (an index might avoid touching every
        tuple of a base relation; an intermediate result must be read in
        full).  Conservative for every join method above, since each reads
        both inputs at least once and children's costs are non-negative.
        """
        bound = 0.0
        if left & (left - 1):
            bound += query.pages(left)
        if right & (right - 1):
            bound += query.pages(right)
        return bound


#: Public name for the join-operator descriptor (annotation-friendly).
JoinMethod = _JoinMethod


class ProfiledCostModel(CostModel):
    """Attribute every cost-model call to the ``cost.eval`` kernel.

    A forwarding wrapper the enumerator swaps in when a
    :class:`~repro.obs.profile.RecordingProfiler` is attached; the
    wrapped model's internal cross-calls (``build_join`` invoking
    ``join_operator_cost``) stay inside one frame, so each enumerator
    call costs exactly one enter/exit pair and one op count.
    """

    def __init__(self, inner: CostModel, profiler: KernelProfiler) -> None:
        super().__init__(inner.buffer_pages, inner.indexed_relations)
        self._inner = inner
        self._profiler = profiler

    def scan_plans(self, query: Query, subset: int, order: int | None) -> list[Plan]:
        profiler = self._profiler
        profiler.enter(KERNEL_COST)
        try:
            return self._inner.scan_plans(query, subset, order)
        finally:
            profiler.count(KERNEL_COST, "scan_plans")
            profiler.exit()

    def operator_cost(
        self, query: Query, method: _JoinMethod, left: int, right: int
    ) -> float:
        profiler = self._profiler
        profiler.enter(KERNEL_COST)
        try:
            return self._inner.operator_cost(query, method, left, right)
        finally:
            profiler.count(KERNEL_COST, "operator_cost")
            profiler.exit()

    def join_output_order(
        self, query: Query, method: _JoinMethod, left: int, right: int
    ) -> int | None:
        profiler = self._profiler
        profiler.enter(KERNEL_COST)
        try:
            return self._inner.join_output_order(query, method, left, right)
        finally:
            profiler.count(KERNEL_COST, "join_output_order")
            profiler.exit()

    def build_join(
        self, query: Query, method: _JoinMethod, left_plan: Plan, right_plan: Plan
    ) -> Plan:
        profiler = self._profiler
        profiler.enter(KERNEL_COST)
        try:
            return self._inner.build_join(query, method, left_plan, right_plan)
        finally:
            profiler.count(KERNEL_COST, "build_join")
            profiler.exit()

    def sort_cost(self, query: Query, subset: int) -> float:
        profiler = self._profiler
        profiler.enter(KERNEL_COST)
        try:
            return self._inner.sort_cost(query, subset)
        finally:
            profiler.count(KERNEL_COST, "sort_cost")
            profiler.exit()

    def build_sort(self, query: Query, child: Plan, order: int) -> Plan:
        profiler = self._profiler
        profiler.enter(KERNEL_COST)
        try:
            return self._inner.build_sort(query, child, order)
        finally:
            profiler.count(KERNEL_COST, "build_sort")
            profiler.exit()

    def lower_bound(self, query: Query, left: int, right: int) -> float:
        profiler = self._profiler
        profiler.enter(KERNEL_COST)
        try:
            return self._inner.lower_bound(query, left, right)
        finally:
            profiler.count(KERNEL_COST, "lower_bound")
            profiler.exit()
