"""The classic ``C_out`` cost model: sum of intermediate result sizes.

The paper observes (Section 4.3.1) that the relative strength of
accumulated- vs. predicted-cost bounding depends on the cost model — the
harder costs are to predict from logical properties, the weaker
predicted-cost bounding becomes.  ``C_out`` sits at the opposite extreme
from the I/O model: an operator's cost *is* a logical property (its
output cardinality), so the natural lower bound is exact, making it the
best case for predicted-cost bounding.  The ablation benchmark compares
the two models' pruning behaviour.

Under ``C_out`` every join method has the same cost (the output
cardinality), so the model also doubles as a pure join-*ordering* cost
function, the standard choice in the enumeration literature
[Moerkotte & Neumann].
"""

from __future__ import annotations

from repro.catalog.query import Query
from repro.cost.io_model import CostModel, JoinMethod
from repro.plans.physical import Plan

__all__ = ["CoutCostModel"]


class CoutCostModel(CostModel):
    """Cost = Σ cardinalities of intermediate results.

    Scans are free (base relations are not intermediates), every join
    method costs its output cardinality, and the sort enforcer costs its
    input cardinality (it materializes the same rows once more).
    """

    def scan_plans(
        self, query: Query, subset: int, order: int | None
    ) -> list[Plan]:
        """Scans are free under C_out (base relations are not intermediates)."""
        plans = super().scan_plans(query, subset, order)
        return [
            plan.__class__(
                op=plan.op,
                vertices=plan.vertices,
                cost=0.0,
                cardinality=plan.cardinality,
                order=plan.order,
                relation=plan.relation,
            )
            for plan in plans
        ]

    def join_operator_cost(
        self, method: JoinMethod, left_pages: float, right_pages: float
    ) -> float:
        """Unsupported: C_out is not page-based (see :meth:`operator_cost`)."""
        raise NotImplementedError("C_out is cardinality-based; use operator_cost")

    def operator_cost(
        self, query: Query, method: JoinMethod, left: int, right: int
    ) -> float:
        """Every join method costs its output cardinality."""
        return query.cardinality(left | right)

    def build_join(
        self, query: Query, method: JoinMethod, left_plan: Plan, right_plan: Plan
    ) -> Plan:
        """Assemble a join node with C_out costing."""
        combined = left_plan.vertices | right_plan.vertices
        cardinality = query.cardinality(combined)
        return left_plan.__class__(
            op=method.op,
            vertices=combined,
            cost=left_plan.cost + right_plan.cost + cardinality,
            cardinality=cardinality,
            order=self.join_output_order(
                query, method, left_plan.vertices, right_plan.vertices
            ),
            children=(left_plan, right_plan),
        )

    def sort_cost(self, query: Query, subset: int) -> float:
        """The sort enforcer re-materializes its input once."""
        return query.cardinality(subset)

    def lower_bound(self, query: Query, left: int, right: int) -> float:
        """Top output plus each composite input's own output.

        Mirrors the paper's Section 4.2 bound: any plan for the pair pays
        the top operator's output cardinality, and each composite input's
        subplan pays at least its own output cardinality (base relations
        are free under ``C_out``).  Tighter than the I/O bound relative to
        actual costs because cardinalities are exactly the cost unit.
        """
        bound = query.cardinality(left | right)
        if left & (left - 1):
            bound += query.cardinality(left)
        if right & (right - 1):
            bound += query.cardinality(right)
        return bound
