"""Cost model: textbook I/O formulas and the predicted-cost lower bound."""

from repro.cost.io_model import (
    CostModel,
    external_sort_cost,
    DEFAULT_BUFFER_PAGES,
)
from repro.cost.cout_model import CoutCostModel
from repro.cost.lower_bounds import scan_lower_bound

__all__ = [
    "CostModel",
    "CoutCostModel",
    "external_sort_cost",
    "DEFAULT_BUFFER_PAGES",
    "scan_lower_bound",
]
