"""Admission control: in-flight caps and per-tenant token buckets.

Two independent gates run before any request touches the queue:

* a global **in-flight cap** sheds load when the service is saturated
  (reason ``"overload"``) — queueing more work past that point only
  grows latency for everyone;
* a per-tenant **token bucket** enforces quotas (reason ``"quota"``):
  each tenant accrues ``rate`` request tokens per second up to a
  ``burst`` ceiling, so short bursts pass and sustained floods from one
  tenant cannot starve the rest.

The clock is injectable so tests drive refill deterministically.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.timing import clock as _default_clock

__all__ = ["TokenBucket", "AdmissionController", "REASON_OVERLOAD", "REASON_QUOTA"]

REASON_OVERLOAD = "overload"
REASON_QUOTA = "quota"


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/second, ``burst`` ceiling."""

    __slots__ = ("rate", "burst", "_tokens", "_clock", "_updated_at")

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock if clock is not None else _default_clock
        self._tokens = burst
        self._updated_at = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated_at
        self._updated_at = now
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def available(self) -> float:
        """Tokens currently available (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if present; never blocks."""
        self._refill()
        if self._tokens < amount:
            return False
        self._tokens -= amount
        return True


class AdmissionController:
    """Gate requests on saturation and per-tenant quotas.

    ``tenant_rate=None`` disables quotas entirely (every tenant passes);
    otherwise each tenant gets its own bucket, created on first sight.
    Callers must pair every successful :meth:`admit` with one
    :meth:`release` once the request finishes (success or failure).
    """

    def __init__(
        self,
        *,
        max_inflight: int = 64,
        tenant_rate: float | None = None,
        tenant_burst: float = 8.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self._clock = clock
        self._inflight = 0
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def inflight(self) -> int:
        """Requests admitted and not yet released."""
        return self._inflight

    def bucket_for(self, tenant: str) -> TokenBucket | None:
        """The tenant's bucket (``None`` when quotas are disabled)."""
        if self.tenant_rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.tenant_rate, self.tenant_burst, clock=self._clock
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> str | None:
        """Try to admit one request; returns ``None`` or a refusal reason.

        The overload check runs first: a saturated service rejects even
        in-quota tenants (their tokens are *not* consumed), so quota
        accounting is unaffected by shed load.
        """
        if self._inflight >= self.max_inflight:
            return REASON_OVERLOAD
        bucket = self.bucket_for(tenant)
        if bucket is not None and not bucket.try_acquire():
            return REASON_QUOTA
        self._inflight += 1
        return None

    def release(self) -> None:
        """Mark one admitted request as finished."""
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._inflight -= 1
