"""The request queue: single-flight dedup and compatible-work batching.

Admitted cache misses land here.  Two queue behaviors amortize work
across concurrent clients:

* **single-flight**: requests whose :func:`~repro.serve.protocol.cache_key`
  matches an in-flight computation attach to it instead of enqueueing a
  duplicate — one optimization fans its answer out to every waiter
  (``dedup_saves`` counts the optimizations avoided);
* **batching**: dispatch pulls up to ``batch_size`` queued requests of
  the same serial algorithm family in one go, so a worker thread runs
  them back-to-back against the same shared plan cache (sub-expression
  overlap between batch members is resolved in-cache, not re-derived).

The queue is event-loop-confined: every method is called from the
server's asyncio thread; only resolved *results* cross threads.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Hashable

from repro.serve.protocol import OptimizeOutcome, OptimizeRequest

__all__ = ["InFlight", "RequestQueue"]


@dataclass
class InFlight:
    """One keyed unit of work and every request waiting on it."""

    key: Hashable
    request: OptimizeRequest
    futures: list["asyncio.Future[OptimizeOutcome]"] = field(default_factory=list)

    @property
    def waiters(self) -> int:
        return len(self.futures)


class RequestQueue:
    """Single-flight, batching queue between admission and dispatch."""

    def __init__(self) -> None:
        self._pending: dict[Hashable, InFlight] = {}
        self._ready: asyncio.Queue[InFlight | None] = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = False
        #: Optimizations avoided by attaching to an in-flight twin.
        self.dedup_saves = 0
        #: High-water depth observed (pending keyed units, not waiters).
        self.peak_depth = 0

    # -- producer side (server) ------------------------------------------------

    def submit(
        self, key: Hashable, request: OptimizeRequest
    ) -> "tuple[asyncio.Future[OptimizeOutcome], bool]":
        """Enqueue work for ``key`` or attach to its in-flight twin.

        Returns ``(future, deduped)``: the future resolves with the
        :class:`~repro.serve.protocol.OptimizeOutcome` (or the
        optimization's exception); ``deduped`` is
        True when an identical computation was already in flight.
        """
        if self._closed:
            raise RuntimeError("queue is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future[OptimizeOutcome] = loop.create_future()
        item = self._pending.get(key)
        if item is not None:
            item.futures.append(future)
            self.dedup_saves += 1
            return future, True
        item = InFlight(key=key, request=request, futures=[future])
        self._pending[key] = item
        self._idle.clear()
        self.peak_depth = max(self.peak_depth, len(self._pending))
        self._ready.put_nowait(item)
        return future, False

    @property
    def depth(self) -> int:
        """Keyed units submitted and not yet resolved."""
        return len(self._pending)

    # -- consumer side (dispatch) ------------------------------------------------

    async def next_batch(self, batch_size: int) -> list[InFlight] | None:
        """Block for the next batch of same-family work; ``None`` = closed.

        The first queued item anchors the batch; further ready items are
        taken greedily (without blocking) while they share its
        ``serial_base``, up to ``batch_size``.  Incompatible items are
        requeued behind it — order within a family is preserved, across
        families it may rotate, which is harmless: every item still runs
        exactly once.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        anchor = await self._ready.get()
        if anchor is None:
            # Propagate the close sentinel to sibling consumers.
            self._ready.put_nowait(None)
            return None
        batch = [anchor]
        requeue: list[InFlight] = []
        while len(batch) < batch_size:
            try:
                item = self._ready.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is None:
                self._ready.put_nowait(None)
                break
            if item.request.serial_base == anchor.request.serial_base:
                batch.append(item)
            else:
                requeue.append(item)
        for item in requeue:
            self._ready.put_nowait(item)
        return batch

    def resolve(self, item: InFlight, outcome: OptimizeOutcome) -> None:
        """Deliver ``outcome`` to every waiter of ``item``."""
        self._pending.pop(item.key, None)
        for future in item.futures:
            if not future.done():
                future.set_result(outcome)
        if not self._pending:
            self._idle.set()

    def fail(self, item: InFlight, error: BaseException) -> None:
        """Deliver an optimization failure to every waiter of ``item``."""
        self._pending.pop(item.key, None)
        for future in item.futures:
            if not future.done():
                future.set_exception(error)
        if not self._pending:
            self._idle.set()

    # -- shutdown ---------------------------------------------------------------

    def close(self) -> None:
        """Refuse new work; queued work still drains."""
        if not self._closed:
            self._closed = True
            self._ready.put_nowait(None)

    async def join(self) -> None:
        """Wait until every submitted unit has been resolved or failed."""
        await self._idle.wait()
