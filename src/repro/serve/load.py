"""Seeded load driver for the plan service.

Floods a running server with a deterministic mixed workload in three
phases and verifies every answer against direct registry optimization:

1. **warm** — each unique query once, sequentially: all cold misses,
   populating the cross-query plan cache;
2. **flood** — a seeded shuffle of one repeat per unique query, spread
   over ``concurrency`` concurrent connections: all cache hits, making
   the suite exactly 50 % repeated so far;
3. **burst** — one *fresh* (never-warmed) expensive query fired as
   pipelined identical requests on one connection: the single-flight
   path, one miss plus dedup saves.

Every response's plan must be bit-identical — cost and full wire
structure — to ``repro.registry.optimize`` run locally on the same
query; mismatches are counted and fail the benchmark gate.  The driver
is deliberately dependency-free (plain ``asyncio`` sockets) so it runs
anywhere the server does.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Any

from repro.catalog.query import Query
from repro.obs.timing import clock
from repro.registry import optimize
from repro.serve.protocol import DEFAULT_ALGORITHM
from repro.serve.protocol import plan_payload as _plan_payload
from repro.workloads import chain, clique, cycle, star
from repro.workloads.weights import weighted_query

__all__ = ["Workload", "LoadReport", "build_workload", "run_load"]


def query_graph_payload(query: Query) -> dict[str, Any]:
    """Serialize a query as the protocol's inline ``graph`` payload."""
    return {
        "relations": [
            [r.name, r.cardinality, r.tuples_per_page] for r in query.relations
        ],
        "predicates": [
            [query.relations[u].name, query.relations[v].name, sel]
            for (u, v), sel in sorted(query.selectivity.items())
        ],
    }


@dataclass
class Workload:
    """A deterministic request suite plus the queries behind it."""

    algorithm: str
    seed: int
    queries: list[Query]  # index q: unique queries; last index is the burst
    warm: list[dict[str, Any]]
    flood: list[dict[str, Any]]
    burst: list[dict[str, Any]]

    @property
    def total_requests(self) -> int:
        return len(self.warm) + len(self.flood) + len(self.burst)


def build_workload(
    *,
    unique: int = 16,
    seed: int = 1234,
    algorithm: str = DEFAULT_ALGORITHM,
    burst: int = 5,
    burst_n: int = 7,
    sizes: tuple[int, ...] = (4, 5, 6),
) -> Workload:
    """Generate the three-phase suite; same seed, same bytes on the wire."""
    if unique < 1 or burst < 2:
        raise ValueError("need unique >= 1 and burst >= 2")
    rng = random.Random(seed)
    topologies = (chain, star, cycle)
    queries = [
        weighted_query(
            topologies[i % len(topologies)](sizes[rng.randrange(len(sizes))]),
            rng.randrange(1 << 30),
        )
        for i in range(unique)
    ]
    burst_query = weighted_query(clique(burst_n), rng.randrange(1 << 30))
    queries.append(burst_query)

    def request(phase: str, q: int, serial: int) -> dict[str, Any]:
        return {
            "id": f"{phase}:{q}:{serial}",
            "algorithm": algorithm,
            "tenant": f"tenant-{q % 4}",
            "graph": query_graph_payload(queries[q]),
        }

    warm = [request("warm", q, 0) for q in range(unique)]
    flood = [request("flood", q, 1) for q in range(unique)]
    rng.shuffle(flood)
    burst_requests = [request("burst", unique, k) for k in range(burst)]
    return Workload(
        algorithm=algorithm,
        seed=seed,
        queries=queries,
        warm=warm,
        flood=flood,
        burst=burst_requests,
    )


@dataclass
class LoadReport:
    """What the flood observed, plus the server's own accounting."""

    requests: int = 0
    ok: int = 0
    failed: int = 0
    cached: int = 0
    deduped: int = 0
    mismatches: int = 0
    wall_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)
    server_stats: dict[str, Any] = field(default_factory=dict)

    def percentile_ms(self, p: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(0, min(len(ordered) - 1, round(p / 100 * len(ordered)) - 1))
        return ordered[rank] * 1e3

    @property
    def hit_rate(self) -> float:
        value = self.server_stats.get("stats", {}).get("hit_rate", 0.0)
        return float(value)

    @property
    def dedup_saves(self) -> int:
        return int(self.server_stats.get("queue", {}).get("dedup_saves", 0))

    @property
    def plans_per_sec(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "cached": self.cached,
            "deduped": self.deduped,
            "mismatches": self.mismatches,
            "wall_s": self.wall_s,
            "plans_per_sec": self.plans_per_sec,
            "latency_p50_ms": self.percentile_ms(50),
            "latency_p99_ms": self.percentile_ms(99),
            "hit_rate": self.hit_rate,
            "dedup_saves": self.dedup_saves,
            "server": self.server_stats,
        }


class _Client:
    """One NDJSON connection with request/response helpers."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "_Client":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send(self, payload: dict[str, Any]) -> None:
        self._writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await self._writer.drain()

    async def recv(self) -> dict[str, Any]:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        decoded = json.loads(line)
        assert isinstance(decoded, dict)
        return decoded

    async def call(self, payload: dict[str, Any]) -> dict[str, Any]:
        await self.send(payload)
        return await self.recv()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _expected_payloads(workload: Workload) -> list[dict[str, Any]]:
    """Direct registry optimization of every unique query, as JSON."""
    expected = []
    for query in workload.queries:
        plan = optimize(workload.algorithm, query)
        # Round-trip through JSON so float representations match the
        # server's responses byte-for-byte semantics (they do exactly).
        payload = json.loads(json.dumps(_plan_payload(plan)))
        assert isinstance(payload, dict)
        expected.append(payload)
    return expected


async def run_load(
    host: str,
    port: int,
    workload: Workload,
    *,
    concurrency: int = 4,
    verify: bool = True,
) -> LoadReport:
    """Run the three-phase suite against a live server."""
    report = LoadReport()
    expected = _expected_payloads(workload) if verify else None

    def record(payload: dict[str, Any], response: dict[str, Any], elapsed: float) -> None:
        report.requests += 1
        report.latencies_s.append(elapsed)
        if response.get("status") != "ok":
            report.failed += 1
            return
        report.ok += 1
        if response.get("cached"):
            report.cached += 1
        if response.get("deduped"):
            report.deduped += 1
        if expected is not None:
            rid = str(response.get("id"))
            q = int(rid.split(":")[1])
            plan = response.get("plan", {})
            want = expected[q]
            if plan.get("cost") != want["cost"] or plan.get("wire") != want["wire"]:
                report.mismatches += 1

    async def run_serial(client: _Client, payloads: list[dict[str, Any]]) -> None:
        for payload in payloads:
            started = clock()
            response = await client.call(payload)
            record(payload, response, clock() - started)

    started_wall = clock()

    # Phase 1: warm (sequential cold misses).
    client = await _Client.connect(host, port)
    await run_serial(client, workload.warm)
    await client.close()

    # Phase 2: flood (concurrent repeats — all hits).
    lanes: list[list[dict[str, Any]]] = [[] for _ in range(max(1, concurrency))]
    for index, payload in enumerate(workload.flood):
        lanes[index % len(lanes)].append(payload)

    async def lane(payloads: list[dict[str, Any]]) -> None:
        if not payloads:
            return
        lane_client = await _Client.connect(host, port)
        await run_serial(lane_client, payloads)
        await lane_client.close()

    await asyncio.gather(*(lane(payloads) for payloads in lanes))

    # Phase 3: burst (pipelined identical requests -> single-flight).
    burst_client = await _Client.connect(host, port)
    burst_started = clock()
    for payload in workload.burst:
        await burst_client.send(payload)
    for _ in workload.burst:
        response = await burst_client.recv()
        record({}, response, clock() - burst_started)
    report.wall_s = clock() - started_wall

    stats = await burst_client.call({"op": "stats"})
    await burst_client.close()
    report.server_stats = {
        "stats": stats.get("stats", {}),
        "queue": stats.get("queue", {}),
        "caches": stats.get("caches", {}),
    }
    return report
