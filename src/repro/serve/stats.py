"""Service-level metrics, kept in a shared :class:`MetricsRegistry`.

One registry holds both tiers of telemetry: the ``serve_*`` instruments
recorded here (request counts, cache hit/miss, dedup saves, rejections,
queue depth, batch sizes, request latency) and the optimizer-level
instruments (memo occupancy, time-between-joins, ...) that dispatch
merges in per completed optimization.  All mutators take one lock —
server-side calls come from the event loop while dispatch merges from
worker threads, and the registry itself is not thread-safe.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.registry import (
    SERVE_BATCH_SIZE,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_DEDUP_SAVES,
    SERVE_ERRORS,
    SERVE_QUEUE_DEPTH,
    SERVE_REJECTED,
    SERVE_REQUESTS,
    SERVE_REQUEST_SECONDS,
    MetricsRegistry,
)

__all__ = ["ServiceStats"]


class ServiceStats:
    """Thread-safe facade over the service's instrument registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._requests = self.registry.counter(SERVE_REQUESTS)
        self._hits = self.registry.counter(SERVE_CACHE_HITS)
        self._misses = self.registry.counter(SERVE_CACHE_MISSES)
        self._dedup = self.registry.counter(SERVE_DEDUP_SAVES)
        self._rejected = self.registry.counter(SERVE_REJECTED)
        self._errors = self.registry.counter(SERVE_ERRORS)
        self._depth = self.registry.histogram(SERVE_QUEUE_DEPTH)
        self._batch = self.registry.histogram(SERVE_BATCH_SIZE)
        self._latency = self.registry.timer(SERVE_REQUEST_SECONDS)

    # -- recording ---------------------------------------------------------------

    def record_request(self) -> None:
        with self._lock:
            self._requests.inc()

    def record_hit(self) -> None:
        with self._lock:
            self._hits.inc()

    def record_miss(self) -> None:
        with self._lock:
            self._misses.inc()

    def record_dedup(self) -> None:
        with self._lock:
            self._dedup.inc()

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected.inc()

    def record_error(self) -> None:
        with self._lock:
            self._errors.inc()

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latency.observe(seconds)

    def observe_batch(self, size: int, queue_depth: int) -> None:
        with self._lock:
            self._batch.observe(float(size))
            self._depth.observe(float(queue_depth))

    def merge_registry(self, other: MetricsRegistry) -> None:
        """Fold a per-optimization registry into the shared one."""
        with self._lock:
            self.registry.merge(other)

    # -- views -------------------------------------------------------------------
    #
    # Read sides take the same lock as the mutators: counters are bumped
    # from dispatch worker threads while the event loop renders /stats,
    # and `hit_rate` reads three counters that must be mutually
    # consistent.  `_lock` is a plain (non-reentrant) Lock, so the
    # already-locked paths share `_hit_rate_locked`.

    @property
    def requests(self) -> int:
        with self._lock:
            return self._requests.value

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits.value

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses.value

    @property
    def dedup_saves(self) -> int:
        with self._lock:
            return self._dedup.value

    @property
    def rejected(self) -> int:
        with self._lock:
            return self._rejected.value

    @property
    def errors(self) -> int:
        with self._lock:
            return self._errors.value

    def hit_rate(self) -> float:
        """Cache hits over all optimize requests answered (hit/miss/dedup)."""
        with self._lock:
            return self._hit_rate_locked()

    def _hit_rate_locked(self) -> float:
        answered = self._hits.value + self._misses.value + self._dedup.value
        return self._hits.value / answered if answered else 0.0

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every service instrument."""
        with self._lock:
            latency = self._latency.histogram
            return {
                "requests": self._requests.value,
                "cache_hits": self._hits.value,
                "cache_misses": self._misses.value,
                "dedup_saves": self._dedup.value,
                "rejected": self._rejected.value,
                "errors": self._errors.value,
                "hit_rate": self._hit_rate_locked(),
                "latency": latency.to_dict(),
                "queue_depth": self._depth.to_dict(),
                "batch_size": self._batch.to_dict(),
            }
