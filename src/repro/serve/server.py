"""The asyncio plan server: NDJSON over TCP, cache-first, drain-clean.

Request lifecycle (one task per request line, so one slow optimization
never blocks a connection's later requests)::

    decode -> admission -> cache lookup --hit--> reply (cached=true)
                              |miss
                              v
                    queue.submit (single-flight)
                              |
                    dispatch batch -> worker thread -> resolve
                              |
                            reply

Graceful shutdown (:meth:`PlanServer.stop`): stop accepting connections,
let in-flight work drain through the queue, then cancel the readers.
See ``docs/serving.md`` for the protocol reference.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.anytime import AnytimeReport
from repro.obs.tracer import Tracer
from repro.serve.admission import AdmissionController
from repro.serve.dispatch import Dispatcher
from repro.serve.protocol import (
    DEFAULT_ALGORITHM,
    PROTOCOL_VERSION,
    OptimizeOutcome,
    OptimizeRequest,
    RequestError,
    build_request,
    cache_key,
    decode_line,
    encode,
    plan_payload,
)
from repro.serve.queue import RequestQueue
from repro.serve.stats import ServiceStats
from repro.obs.timing import clock

__all__ = ["PlanServer"]

#: Refuse request lines longer than this (64 MiB) instead of buffering.
_LINE_LIMIT = 64 * 1024 * 1024


class PlanServer:
    """A resident optimizer service over one event loop.

    Parameters mirror the subsystem layering: ``batch_size`` and
    ``dispatch_workers`` shape the queue/dispatch tier, ``max_inflight``
    and ``tenant_rate``/``tenant_burst`` the admission tier.  ``port=0``
    binds an ephemeral port (read it back from :attr:`address` after
    :meth:`start` — how the tests and ``--once`` mode avoid collisions).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        algorithm: str = DEFAULT_ALGORITHM,
        batch_size: int = 4,
        dispatch_workers: int = 2,
        max_inflight: int = 64,
        tenant_rate: float | None = None,
        tenant_burst: float = 8.0,
        stats: ServiceStats | None = None,
        admission: AdmissionController | None = None,
        tracer: Tracer | None = None,
        collect_optimizer_metrics: bool = False,
        fastpath: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.default_algorithm = algorithm
        self.stats = stats if stats is not None else ServiceStats()
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(
                max_inflight=max_inflight,
                tenant_rate=tenant_rate,
                tenant_burst=tenant_burst,
            )
        )
        self.queue = RequestQueue()
        self.dispatcher = Dispatcher(
            self.queue,
            self.stats,
            batch_size=batch_size,
            workers=dispatch_workers,
            tracer=tracer,
            collect_optimizer_metrics=collect_optimizer_metrics,
            fastpath=fastpath,
        )
        self._server: asyncio.AbstractServer | None = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        """Bind the socket and spawn the dispatch workers."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self.dispatcher.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=_LINE_LIMIT
        )

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting work; with ``drain`` finish what was admitted."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.dispatcher.stop(drain=drain)
        self._server = None

    # -- request handling --------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: spawn a task per request line, reply in order
        of completion (responses carry ``id`` for correlation)."""
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task[None]] = set()

        async def respond(payload: dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode(payload))
                await writer.drain()

        async def handle(line: bytes) -> None:
            response = await self.handle_request_line(line)
            await respond(response)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(handle(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def handle_request_line(self, line: bytes | str) -> dict[str, Any]:
        """Decode and answer one request line (also the self-test hook)."""
        try:
            payload = decode_line(line)
        except RequestError as exc:
            self.stats.record_error()
            return self._error_response(None, exc)
        return await self.handle_payload(payload)

    async def handle_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        request_id = payload.get("id")
        op = payload.get("op", "optimize")
        if op == "ping":
            return {
                "id": request_id,
                "status": "ok",
                "protocol": PROTOCOL_VERSION,
            }
        if op == "stats":
            return {
                "id": request_id,
                "status": "ok",
                "protocol": PROTOCOL_VERSION,
                "stats": self.stats.snapshot(),
                "queue": {
                    "depth": self.queue.depth,
                    "peak_depth": self.queue.peak_depth,
                    "dedup_saves": self.queue.dedup_saves,
                },
                "inflight": self.admission.inflight,
                "caches": self.dispatcher.cache_summaries(),
            }
        if op != "optimize":
            self.stats.record_error()
            return self._error_response(
                request_id, RequestError(f"unknown op {op!r}")
            )
        self.stats.record_request()
        if self._stopping:
            self.stats.record_rejected()
            return self._rejected_response(request_id, "draining")
        try:
            request = build_request(
                payload, default_algorithm=self.default_algorithm
            )
        except RequestError as exc:
            self.stats.record_error()
            return self._error_response(request_id, exc)
        reason = self.admission.admit(request.tenant)
        if reason is not None:
            self.stats.record_rejected()
            return self._rejected_response(request_id, reason)
        try:
            return await self._answer(request)
        finally:
            self.admission.release()

    async def _answer(self, request: OptimizeRequest) -> dict[str, Any]:
        started = clock()
        outcome: OptimizeOutcome | None = None
        if request.top_k is None:
            # Ranked requests bypass the lookup: the family cache holds
            # champions only, and rank 1..k-1 cannot be reconstructed
            # from a champion cell.
            plan = self.dispatcher.lookup(request)
            if plan is not None:
                anytime = None
                if request.budget is not None:
                    # A cached champion is the exact optimum, which
                    # trivially satisfies any budget: certify gap zero
                    # without spending a node.
                    anytime = AnytimeReport(
                        plan_cost=plan.cost,
                        lower_bound=plan.cost,
                        gap_bound=0.0,
                        nodes_spent=0,
                        completed=True,
                        exhausted=False,
                    )
                outcome = OptimizeOutcome(plan=plan, anytime=anytime)
        cached = outcome is not None
        deduped = False
        if outcome is None:
            future, deduped = self.queue.submit(cache_key(request), request)
            if deduped:
                self.stats.record_dedup()
            else:
                self.stats.record_miss()
            try:
                outcome = await future
            except Exception as exc:
                self.stats.record_error()
                return self._error_response(
                    request.request_id,
                    RequestError(f"optimization failed: {exc}"),
                )
        else:
            self.stats.record_hit()
        elapsed = clock() - started
        self.stats.observe_latency(elapsed)
        response = {
            "id": request.request_id,
            "status": "ok",
            "algorithm": request.resolved,
            "cached": cached,
            "deduped": deduped,
            "elapsed_ms": elapsed * 1e3,
            "plan": plan_payload(outcome.plan),
        }
        if outcome.anytime is not None:
            response["anytime"] = outcome.anytime.to_dict()
        if outcome.ranked is not None:
            response["topk"] = {
                "k": request.top_k,
                "returned": len(outcome.ranked),
                "plans": [plan_payload(p) for p in outcome.ranked],
            }
        return response

    @staticmethod
    def _error_response(
        request_id: object, error: RequestError
    ) -> dict[str, Any]:
        return {"id": request_id, "status": "error", "error": error.to_dict()}

    @staticmethod
    def _rejected_response(request_id: object, reason: str) -> dict[str, Any]:
        return {"id": request_id, "status": "rejected", "reason": reason}
