"""Optimizer workers: batches from the queue onto threads, plans into caches.

Each batch runs in one worker thread (``asyncio.to_thread``) so the
event loop stays responsive while CPU-bound enumeration runs; the
:class:`~repro.memo.GlobalPlanCache` lock added for this tier makes the
concurrent worker threads safe against each other and against
event-loop-side lookups.

Plan caches are namespaced by serial algorithm family
(:attr:`~repro.serve.protocol.OptimizeRequest.serial_base`): every
configuration of one family — serial, ``@N`` parallel, ``%policy``
memo-bounded — searches the same plan space and shares one cache, while
e.g. left-deep plans can never answer a bushy request.  Top-down
algorithms attach the family cache as their memo's shared tier, so even
a *miss* deposits every optimal sub-plan for future cross-query reuse;
bottom-up baselines only contribute their final plan.
"""

from __future__ import annotations

import asyncio
import threading

from repro.memo import GlobalPlanCache
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.plans.physical import Plan
from repro.registry import make_optimizer, parse_name
from repro.serve.protocol import OptimizeOutcome, OptimizeRequest
from repro.serve.queue import InFlight, RequestQueue
from repro.serve.stats import ServiceStats

__all__ = ["Dispatcher"]


class Dispatcher:
    """Pulls batches from the queue and resolves them with optimal plans."""

    def __init__(
        self,
        queue: RequestQueue,
        stats: ServiceStats,
        *,
        batch_size: int = 4,
        workers: int = 2,
        tracer: Tracer | None = None,
        collect_optimizer_metrics: bool = False,
        fastpath: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._queue = queue
        self._stats = stats
        self._batch_size = batch_size
        self._worker_count = workers
        self._tracer = tracer
        self._collect = collect_optimizer_metrics
        self._fastpath = fastpath
        self._caches: dict[str, GlobalPlanCache] = {}
        self._caches_lock = threading.Lock()
        # Tracers record onto one span stack; serialize traced runs.
        self._trace_lock = threading.Lock()
        self._tasks: list[asyncio.Task[None]] = []

    # -- plan cache --------------------------------------------------------------

    def cache_for(self, serial_base: str) -> GlobalPlanCache:
        """The (unbounded) plan cache of one serial algorithm family."""
        with self._caches_lock:
            cache = self._caches.get(serial_base)
            if cache is None:
                cache = GlobalPlanCache()
                self._caches[serial_base] = cache
            return cache

    def lookup(self, request: OptimizeRequest) -> Plan | None:
        """Probe the family cache for the request's full-query plan."""
        cache = self.cache_for(request.serial_base)
        full = request.query.graph.all_vertices
        entry = cache.peek(request.query, full, None)
        if entry is None or not entry.has_plan:
            return None
        return cache.plan_for_query(request.query, entry)

    # -- optimization (worker-thread context) -------------------------------------

    def optimize(self, request: OptimizeRequest) -> OptimizeOutcome:
        """Run one optimization, populating the family cache.

        Budgeted requests carry the gap report on the outcome; an
        exhausted search leaves no full-query cell behind (the memo only
        stores cells it *completed*, so a best-so-far plan can never be
        served as the champion later).  Ranked requests return the full
        top-k list; their exhaustive champion pass still deposits every
        optimal sub-plan in the family cache.
        """
        cache = self.cache_for(request.serial_base)
        registry = MetricsRegistry() if self._collect else None
        top_down = parse_name(request.serial_base).top_down
        tracer = self._tracer
        if tracer is not None and not tracer.enabled:
            tracer = None

        def run() -> OptimizeOutcome:
            if top_down:
                # The shared tier both answers sub-expressions and
                # receives every stored plan, final full-query cell
                # included.
                optimizer = make_optimizer(
                    request.resolved,
                    request.query,
                    registry=registry,
                    tracer=tracer,
                    global_cache=cache,
                    fastpath=self._fastpath,
                    budget=request.budget,
                    top_k=request.top_k,
                )
            else:
                optimizer = make_optimizer(
                    request.resolved, request.query,
                    registry=registry, tracer=tracer,
                    fastpath=self._fastpath,
                )
            if request.top_k is not None:
                ranked = optimizer.optimize_topk(request.top_k)
                return OptimizeOutcome(
                    plan=ranked[0], ranked=tuple(ranked)
                )
            plan = optimizer.optimize()
            assert isinstance(plan, Plan)
            return OptimizeOutcome(
                plan=plan, anytime=getattr(optimizer, "anytime", None)
            )

        if tracer is None:
            outcome = run()
        else:
            with self._trace_lock:
                outcome = run()
        if not top_down:
            cache.store_plan(
                request.query, request.query.graph.all_vertices,
                None, outcome.plan,
            )
        if registry is not None:
            self._stats.merge_registry(registry)
        return outcome

    def _run_batch(
        self, items: list[InFlight]
    ) -> list[OptimizeOutcome | BaseException]:
        """Optimize a batch back-to-back in one worker thread."""
        results: list[OptimizeOutcome | BaseException] = []
        for item in items:
            try:
                # A batch sibling may have just cached this exact query's
                # sub-plans; the shared memo tier exploits that without a
                # special case.  The full-query answer cannot already be
                # present — single-flight guarantees key uniqueness.
                results.append(self.optimize(item.request))
            except BaseException as exc:  # delivered to the waiters
                results.append(exc)
        return results

    # -- async driver ------------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            batch = await self._queue.next_batch(self._batch_size)
            if batch is None:
                return
            self._stats.observe_batch(len(batch), self._queue.depth)
            outcomes = await asyncio.to_thread(self._run_batch, batch)
            for item, outcome in zip(batch, outcomes):
                if isinstance(outcome, BaseException):
                    self._queue.fail(item, outcome)
                else:
                    self._queue.resolve(item, outcome)

    def start(self) -> None:
        """Spawn the dispatch worker tasks on the running loop."""
        if self._tasks:
            raise RuntimeError("dispatcher already started")
        for _ in range(self._worker_count):
            self._tasks.append(asyncio.ensure_future(self._worker()))

    async def stop(self, *, drain: bool = True) -> None:
        """Stop workers; with ``drain`` (default) finish queued work first."""
        if drain:
            await self._queue.join()
        self._queue.close()
        for task in self._tasks:
            await task
        self._tasks.clear()

    def cache_summaries(self) -> dict[str, dict[str, object]]:
        """Per-family plan-cache summaries (for the ``stats`` op)."""
        with self._caches_lock:
            caches = dict(self._caches)
        return {base: cache.summary() for base, cache in caches.items()}
