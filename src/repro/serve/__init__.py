"""Optimizer-as-a-service: the long-running plan server.

The ROADMAP's "millions of users" story: instead of one-shot CLI
invocations, a resident asyncio server (:mod:`repro.serve.server`)
accepts optimize requests as newline-delimited JSON over TCP, answers
repeats from a cross-query :class:`~repro.memo.GlobalPlanCache`,
single-flights identical in-flight queries, batches compatible work onto
optimizer worker threads, and applies admission control with per-tenant
token-bucket quotas.  The moving parts:

* :mod:`repro.serve.protocol` — request/response schema, query
  reconstruction, canonical cache keys, plan wire payloads;
* :mod:`repro.serve.admission` — token buckets + in-flight caps;
* :mod:`repro.serve.queue` — the single-flight, batching request queue;
* :mod:`repro.serve.dispatch` — optimizer workers over the registry
  grammar, sharing per-algorithm global plan caches;
* :mod:`repro.serve.stats` — service instruments in a
  :class:`~repro.obs.registry.MetricsRegistry`;
* :mod:`repro.serve.server` — the asyncio TCP server and drain logic;
* :mod:`repro.serve.load` — the seeded flood driver behind
  ``benchmarks/bench_serve.py`` and ``repro serve --once``.

Protocol and operational semantics are documented in ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.dispatch import Dispatcher
from repro.serve.protocol import (
    DEFAULT_ALGORITHM,
    DEFAULT_TENANT,
    PROTOCOL_VERSION,
    OptimizeRequest,
    RequestError,
    build_request,
    cache_key,
    plan_payload,
)
from repro.serve.queue import RequestQueue
from repro.serve.server import PlanServer
from repro.serve.stats import ServiceStats

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "Dispatcher",
    "DEFAULT_ALGORITHM",
    "DEFAULT_TENANT",
    "PROTOCOL_VERSION",
    "OptimizeRequest",
    "RequestError",
    "build_request",
    "cache_key",
    "plan_payload",
    "RequestQueue",
    "PlanServer",
    "ServiceStats",
]
