"""Wire protocol of the plan service.

Transport is newline-delimited JSON over TCP: one request object per
line, one response object per line, correlated by the client-chosen
``id`` field.  An optimize request carries the query either as the
textual DSL of :mod:`repro.catalog.parser`::

    {"id": 1, "query": "a(1000) b(500); a-b:0.01"}

or as an inline graph+weights payload (relation names with statistics
plus name-keyed predicates)::

    {"id": 2, "graph": {
        "relations": [["a", 1000], ["b", 500, 64]],
        "predicates": [["a", "b", 0.01]]}}

Optional fields: ``algorithm`` (any registry name or alias, default
``TBNmc``), ``tenant`` (quota bucket, default ``"default"``),
``budget_ms`` / ``budget_nodes`` (anytime limits — the response gains an
``anytime`` gap-bound block, see ``docs/anytime.md``), and ``top_k``
(rank the k cheapest distinct plans; the response gains a ``topk``
block).  ``top_k`` is exhaustive and therefore mutually exclusive with
the budget fields; both require a top-down algorithm.  Explicit fields
override any ``?budget`` / ``^k`` suffix on ``algorithm``.
Control operations use ``op``: ``{"op": "ping"}`` and ``{"op": "stats"}``.

Responses carry ``status`` (``ok`` / ``error`` / ``rejected``), and on
success the plan payload of :func:`plan_payload` plus ``cached`` /
``deduped`` flags.  Parse failures return the position-annotated
structure of :class:`~repro.catalog.parser.QuerySyntaxError` under
``error`` — the service's 400-equivalent.

Canonicalization: two requests are *identical work* iff they resolve to
the same serial algorithm family (worker-count and memo-policy suffixes
stripped — those change the execution strategy, not the answer space)
and the same :func:`~repro.memo.canonical_expression_key` over the full
vertex set, i.e. the same relation names, statistics, and predicate
signature regardless of declaration order or vertex numbering.  That
tuple — extended with the effective budget token and ``top_k`` depth,
since a truncated or ranked search is *different work* whose answer must
never stand in for the exact champion — is the plan-cache and
single-flight key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Hashable

from repro.anytime import AnytimeReport, Budget
from repro.catalog.parser import QuerySyntaxError, parse_query
from repro.catalog.query import Query
from repro.catalog.stats import Catalog
from repro.memo import canonical_expression_key
from repro.plans.physical import Plan
from repro.registry import (
    parse_name,
    resolve_alias,
    split_budget,
    split_topk,
    split_workers,
)

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_ALGORITHM",
    "DEFAULT_TENANT",
    "RequestError",
    "OptimizeRequest",
    "OptimizeOutcome",
    "build_request",
    "cache_key",
    "decode_line",
    "encode",
    "plan_payload",
    "wire_to_jsonable",
]

#: Version stamped into ``stats``/``ping`` responses and ``BENCH_serve``.
PROTOCOL_VERSION = 1
DEFAULT_ALGORITHM = "TBNmc"
DEFAULT_TENANT = "default"


class RequestError(ValueError):
    """A malformed request; maps to a ``status: error`` response.

    ``detail`` carries machine-readable context — for DSL failures the
    position/line/column structure of
    :meth:`~repro.catalog.parser.QuerySyntaxError.to_dict`.
    """

    def __init__(self, message: str, *, detail: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.detail: dict[str, Any] = detail if detail is not None else {}

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"message": self.message}
        payload.update(self.detail)
        return payload


@dataclass(frozen=True)
class OptimizeRequest:
    """One admitted unit of optimization work.

    ``resolved`` is the full resolved registry name (suffixes included)
    that dispatch will execute; ``serial_base`` is the underlying serial
    algorithm (bounding suffix kept, ``@N``/``%policy`` stripped) that
    namespaces the plan cache — configurations of one serial algorithm
    search the same space and may share plans, different spaces must not.

    ``budget`` / ``top_k`` are the *effective* anytime and ranking
    settings: the explicit ``budget_ms``/``budget_nodes``/``top_k``
    payload fields when given, else whatever ``?budget``/``^k`` suffix
    rode in on the algorithm name.  Dispatch passes them explicitly to
    :func:`~repro.registry.make_optimizer` (explicit wins over suffix,
    so the two routes agree).
    """

    request_id: object
    tenant: str
    algorithm: str
    resolved: str
    serial_base: str
    query: Query
    budget: Budget | None = None
    top_k: int | None = None


@dataclass(frozen=True)
class OptimizeOutcome:
    """What one dispatched optimization produced.

    ``plan`` is always present (rank-0 for ranked requests, best-so-far
    for exhausted budgets).  ``ranked`` carries the full top-k list for
    ``top_k`` requests; ``anytime`` the gap-bound report for budgeted
    ones.  Futures in the request queue resolve with this, so the server
    can assemble ``topk``/``anytime`` response blocks without re-running
    anything.
    """

    plan: Plan
    ranked: tuple[Plan, ...] | None = None
    anytime: AnytimeReport | None = None


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Decode one request line into a JSON object."""
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise RequestError(f"invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise RequestError("request must be a JSON object")
    return payload


def encode(payload: dict[str, Any]) -> bytes:
    """Encode one response object as an NDJSON line."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _query_from_graph(graph: Any) -> Query:
    """Reconstruct a query from the inline graph+weights payload."""
    if not isinstance(graph, dict):
        raise RequestError("'graph' must be an object")
    relations = graph.get("relations")
    predicates = graph.get("predicates", [])
    if not isinstance(relations, list) or not relations:
        raise RequestError("'graph.relations' must be a non-empty list")
    if not isinstance(predicates, list):
        raise RequestError("'graph.predicates' must be a list")
    catalog = Catalog()
    for item in relations:
        if (
            not isinstance(item, list)
            or not 2 <= len(item) <= 3
            or not isinstance(item[0], str)
        ):
            raise RequestError(
                "each relation must be [name, cardinality] or "
                "[name, cardinality, tuples_per_page]"
            )
        try:
            cardinality = float(item[1])
            tuples_per_page = int(item[2]) if len(item) == 3 else 0
            if len(item) == 3:
                catalog.add_relation(item[0], cardinality, tuples_per_page)
            else:
                catalog.add_relation(item[0], cardinality)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad relation {item[0]!r}: {exc}") from None
    for pred in predicates:
        if not isinstance(pred, list) or len(pred) != 3:
            raise RequestError(
                "each predicate must be [left_name, right_name, selectivity]"
            )
        left_name, right_name, selectivity = pred
        try:
            left = catalog.index_of(str(left_name))
            right = catalog.index_of(str(right_name))
        except KeyError as exc:
            raise RequestError(
                f"predicate references unknown relation {exc.args[0]!r}"
            ) from None
        try:
            catalog.add_predicate(left, right, float(selectivity))
        except (TypeError, ValueError) as exc:
            raise RequestError(
                f"bad predicate {left_name}-{right_name}: {exc}"
            ) from None
    try:
        return Query.from_catalog(catalog)
    except ValueError as exc:
        raise RequestError(str(exc)) from None


def build_request(
    payload: dict[str, Any], *, default_algorithm: str = DEFAULT_ALGORITHM
) -> OptimizeRequest:
    """Validate an optimize request object into an :class:`OptimizeRequest`."""
    algorithm = payload.get("algorithm", default_algorithm)
    if not isinstance(algorithm, str):
        raise RequestError("'algorithm' must be a string")
    try:
        resolved = resolve_alias(algorithm)
        serial_base = parse_name(resolved).name
    except ValueError as exc:
        raise RequestError(str(exc)) from None
    tenant = payload.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise RequestError("'tenant' must be a non-empty string")

    budget, top_k = _limits_from(payload, resolved)

    text = payload.get("query")
    graph = payload.get("graph")
    if (text is None) == (graph is None):
        raise RequestError("exactly one of 'query' or 'graph' is required")
    if text is not None:
        if not isinstance(text, str):
            raise RequestError("'query' must be a string")
        try:
            query = parse_query(text)
        except QuerySyntaxError as exc:
            raise RequestError(exc.message, detail=exc.to_dict()) from None
    else:
        query = _query_from_graph(graph)

    return OptimizeRequest(
        request_id=payload.get("id"),
        tenant=tenant,
        algorithm=algorithm,
        resolved=resolved,
        serial_base=serial_base,
        query=query,
        budget=budget,
        top_k=top_k,
    )


def _limits_from(
    payload: dict[str, Any], resolved: str
) -> tuple[Budget | None, int | None]:
    """The effective (budget, top_k) of a request.

    Explicit payload fields win over the resolved name's suffixes; the
    cross-field rules (exhaustive ranking vs truncated search, top-down
    only, serial only) are enforced here so they fail as ``status:
    error`` responses rather than worker-thread exceptions.
    """
    budget_ms = payload.get("budget_ms")
    budget_nodes = payload.get("budget_nodes")
    top_k = payload.get("top_k")
    if budget_ms is not None:
        if isinstance(budget_ms, bool) or not isinstance(budget_ms, (int, float)):
            raise RequestError("'budget_ms' must be a number")
        budget_ms = float(budget_ms)
    if budget_nodes is not None:
        if isinstance(budget_nodes, bool) or not isinstance(budget_nodes, int):
            raise RequestError("'budget_nodes' must be an integer")
    if top_k is not None:
        if isinstance(top_k, bool) or not isinstance(top_k, int):
            raise RequestError("'top_k' must be an integer")

    budget: Budget | None = None
    if budget_ms is not None or budget_nodes is not None:
        try:
            budget = Budget(max_nodes=budget_nodes, deadline_ms=budget_ms)
        except ValueError as exc:
            raise RequestError(str(exc)) from None
    if budget is None:
        _, budget = split_budget(resolved)
    if top_k is None:
        _, top_k = split_topk(resolved)
    elif top_k < 1:
        raise RequestError(f"'top_k' must be >= 1, got {top_k}")

    if budget is not None or top_k is not None:
        if not parse_name(resolved).top_down:
            raise RequestError(
                "budget and top_k require a top-down algorithm"
            )
    if top_k is not None:
        if budget_ms is not None or budget_nodes is not None:
            raise RequestError(
                "top_k ranks plans exhaustively; drop budget_ms/budget_nodes"
            )
        if split_workers(resolved)[1] is not None:
            raise RequestError(
                "top_k ranking is serial-only; drop the @N worker suffix"
            )
    return budget, top_k


def cache_key(request: OptimizeRequest) -> Hashable:
    """Single-flight / plan-cache key: serial family x limits x query.

    The budget token and ``top_k`` depth are part of the key because a
    truncated or ranked optimization is different work: an unbudgeted
    request must never attach to a budgeted in-flight twin (it could be
    handed a sub-optimal best-so-far plan), and a champion cell cannot
    answer a ranked request.
    """
    full = request.query.graph.all_vertices
    budget = request.budget
    return (
        request.serial_base,
        None if budget is None else budget.token(),
        request.top_k,
        canonical_expression_key(request.query, full, None),
    )


def wire_to_jsonable(wire: object) -> object:
    """Nested plan wire tuples as JSON-stable lists (bit-exact floats)."""
    if isinstance(wire, tuple):
        return [wire_to_jsonable(item) for item in wire]
    return wire


def plan_payload(plan: Plan) -> dict[str, Any]:
    """The response body describing one optimized plan.

    ``wire`` is the full nested structure of
    :meth:`~repro.plans.physical.Plan.to_wire` with tuples as JSON
    arrays, so clients can check structural bit-identity against a
    locally optimized plan; ``cost`` round-trips exactly through JSON.
    """
    return {
        "cost": plan.cost,
        "cardinality": plan.cardinality,
        "sql": plan.sql_like(),
        "wire": wire_to_jsonable(plan.to_wire()),
    }
