"""Observability for partition search: spans, metrics, exporters.

The layer has three parts, all dependency-free and zero-overhead unless
explicitly enabled:

* :mod:`repro.obs.tracer` — span-based tracing of the top-down recursion
  (:class:`RecordingTracer`), with a no-op :data:`NULL_TRACER` default;
* :mod:`repro.obs.registry` — named counters/timers/histograms
  (:class:`MetricsRegistry`) for run distributions such as the paper's
  time-between-joins optimality metric;
* :mod:`repro.obs.exporters` — JSONL span dumps, human-readable
  recursion trees, and flat summary tables.

See ``docs/observability.md`` for how to read a trace against
Algorithm 1/7.
"""

from repro.obs.exporters import (
    render_summary,
    render_trace_tree,
    spans_to_jsonl,
    subset_label,
    write_jsonl,
)
from repro.obs.registry import (
    MEMO_EVICTIONS,
    MEMO_OCCUPANCY,
    PARTITIONS_PER_EXPRESSION,
    TIME_BETWEEN_JOINS,
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.timing import Stopwatch, clock, time_call
from repro.obs.tracer import NULL_TRACER, NullTracer, RecordingTracer, Span, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "NullTracer",
    "RecordingTracer",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "Stopwatch",
    "clock",
    "time_call",
    "render_summary",
    "render_trace_tree",
    "spans_to_jsonl",
    "subset_label",
    "write_jsonl",
    "PARTITIONS_PER_EXPRESSION",
    "TIME_BETWEEN_JOINS",
    "MEMO_OCCUPANCY",
    "MEMO_EVICTIONS",
]
