"""Observability for partition search: spans, metrics, exporters.

The layer has three parts, all dependency-free and zero-overhead unless
explicitly enabled:

* :mod:`repro.obs.tracer` — span-based tracing of the top-down recursion
  (:class:`RecordingTracer`), with a no-op :data:`NULL_TRACER` default;
* :mod:`repro.obs.registry` — named counters/timers/histograms
  (:class:`MetricsRegistry`) for run distributions such as the paper's
  time-between-joins optimality metric;
* :mod:`repro.obs.exporters` — JSONL span dumps (write *and* reload),
  human-readable recursion trees, collapsed-stack flamegraphs, and flat
  summary tables;
* :mod:`repro.obs.profile` — kernel-level deterministic profiler
  (:class:`RecordingProfiler`) attributing exclusive time and op counts
  to named kernels, with a no-op :data:`NULL_PROFILER` default;
* :mod:`repro.obs.explain` — per-expression bounding-ledger
  reconstruction from recorded traces.

See ``docs/observability.md`` for how to read a trace against
Algorithm 1/7 and ``docs/profiling.md`` for the kernel taxonomy.
"""

from repro.obs.explain import LedgerEntry, bounding_ledger, render_ledger
from repro.obs.exporters import (
    aggregate_counters,
    read_jsonl,
    render_summary,
    render_trace_tree,
    spans_from_records,
    spans_to_collapsed,
    spans_to_jsonl,
    subset_label,
    write_jsonl,
)
from repro.obs.profile import (
    KERNEL_BCC_BUILD,
    KERNEL_COST,
    KERNEL_MEMO,
    KERNEL_SEARCH,
    NULL_PROFILER,
    KernelProfiler,
    NullProfiler,
    RecordingProfiler,
    render_kernel_table,
)
from repro.obs.registry import (
    MEMO_EVICTIONS,
    MEMO_OCCUPANCY,
    PARTITIONS_PER_EXPRESSION,
    TIME_BETWEEN_JOINS,
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.timing import Stopwatch, clock, time_call
from repro.obs.tracer import NULL_TRACER, NullTracer, RecordingTracer, Span, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "NullTracer",
    "RecordingTracer",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "Stopwatch",
    "clock",
    "time_call",
    "KernelProfiler",
    "NullProfiler",
    "RecordingProfiler",
    "NULL_PROFILER",
    "KERNEL_SEARCH",
    "KERNEL_BCC_BUILD",
    "KERNEL_MEMO",
    "KERNEL_COST",
    "render_kernel_table",
    "LedgerEntry",
    "bounding_ledger",
    "render_ledger",
    "aggregate_counters",
    "read_jsonl",
    "render_summary",
    "render_trace_tree",
    "spans_from_records",
    "spans_to_collapsed",
    "spans_to_jsonl",
    "subset_label",
    "write_jsonl",
    "PARTITIONS_PER_EXPRESSION",
    "TIME_BETWEEN_JOINS",
    "MEMO_OCCUPANCY",
    "MEMO_EVICTIONS",
]
