"""One shared wall-clock idiom for the CLI, experiments, and tracer.

Every piece of the repository that needs an elapsed time goes through
this module, so switching clocks (``perf_counter`` vs. ``process_time``
vs. a deterministic fake in tests) is a one-line change.  The paper
reports Java CPU time; ``perf_counter`` is the closest portable
equivalent for a pure-Python reproduction.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["clock", "Stopwatch", "time_call"]

#: The clock used by every timer in the repository (monotonic, fractional
#: seconds).  Tests may monkeypatch this to make timings deterministic.
clock = time.perf_counter


class Stopwatch:
    """A running wall-clock timer, started on construction.

    Usable directly (``sw = Stopwatch(); ...; sw.elapsed()``) or as a
    context manager, in which case :attr:`elapsed_total` is frozen at
    exit::

        with Stopwatch() as sw:
            work()
        print(sw.elapsed_total)
    """

    __slots__ = ("started_at", "elapsed_total")

    def __init__(self) -> None:
        self.started_at = clock()
        self.elapsed_total: float | None = None

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`lap`)."""
        return clock() - self.started_at

    def lap(self) -> float:
        """Return the elapsed seconds and restart the timer."""
        now = clock()
        elapsed = now - self.started_at
        self.started_at = now
        return elapsed

    def __enter__(self) -> "Stopwatch":
        self.started_at = clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_total = clock() - self.started_at


def time_call(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``fn`` once and return ``(elapsed seconds, result)``."""
    start = clock()
    result = fn()
    return clock() - start, result
