"""Exporters: JSONL span dumps, recursion trees, and summary tables.

Three views of one recorded trace, in decreasing fidelity:

* :func:`write_jsonl` — the full span tree, one JSON object per span in
  pre-order (parents before children, linked by ``span_id`` /
  ``parent_id``), for offline analysis;
* :func:`render_trace_tree` — a human-readable recursion/pruning tree to
  read against Algorithm 1/7 (see ``docs/observability.md``);
* :func:`render_summary` — a flat table of run totals: the
  :class:`~repro.analysis.metrics.Metrics` counters plus every
  :class:`~repro.obs.registry.MetricsRegistry` instrument.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional, Union

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.obs.registry import Histogram, MetricsRegistry, Timer
from repro.obs.tracer import RecordingTracer, Span

__all__ = [
    "write_jsonl",
    "spans_to_jsonl",
    "read_jsonl",
    "spans_from_records",
    "spans_to_collapsed",
    "aggregate_counters",
    "render_trace_tree",
    "render_summary",
    "subset_label",
]


def subset_label(subset: int, query: Optional[Query] = None) -> str:
    """Human-readable name of an expression bitset.

    With a query, relation names joined by ``⋈``; otherwise the hex mask.
    """
    if query is not None:
        names = [
            query.relations[v].name
            for v in range(query.n)
            if subset >> v & 1
        ]
        if names:
            return "⋈".join(names)
    return f"{subset:#x}"


def _iter_spans(trace: Union[RecordingTracer, Span]) -> Iterable[Span]:
    if isinstance(trace, Span):
        return trace.walk()
    return trace.spans()


def spans_to_jsonl(trace: Union[RecordingTracer, Span]) -> str:
    """The trace as JSONL text: one span per line, pre-order."""
    return "\n".join(json.dumps(span.to_dict()) for span in _iter_spans(trace))


def write_jsonl(
    trace: Union[RecordingTracer, Span], destination: Union[str, IO[str]]
) -> int:
    """Write the trace to ``destination`` (path or file); returns span count."""
    text = spans_to_jsonl(trace)
    count = 0 if not text else text.count("\n") + 1
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + ("\n" if text else ""))
    else:
        destination.write(text + ("\n" if text else ""))
    return count


def spans_from_records(records: Iterable[dict]) -> list[Span]:
    """Rebuild the span tree(s) from :meth:`Span.to_dict` records.

    Records must appear parents-before-children (the order
    :func:`write_jsonl` produces).  Returns the root spans; every tree,
    summary, and flamegraph view renders identically on the result.
    """
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for record in records:
        span = Span(
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            subset=record["subset"],
            order=record.get("order"),
            kind=record.get("kind", "join"),
            strategy=record.get("strategy"),
            depth=record.get("depth", 0),
            started_at=0.0,
            elapsed=record.get("elapsed_us", 0.0) / 1e6,
            cost=record.get("cost"),
            budget=record.get("budget"),
            memo_hits=record.get("memo_hits", 0),
            memo_bound_hits=record.get("memo_bound_hits", 0),
            predicted_prunes=record.get("predicted_prunes", 0),
            budget_failed=record.get("budget_failed", False),
            events=[(name, data) for name, data in record.get("events", [])],
            dropped_events=record.get("dropped_events", 0),
            counters=dict(record.get("counters", {})),
        )
        by_id[span.span_id] = span
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is None:
            roots.append(span)
        else:
            parent.children.append(span)
    return roots


def read_jsonl(source: Union[str, IO[str]]) -> list[Span]:
    """Load a JSONL span dump (path or file) back into root spans."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    return spans_from_records(
        json.loads(line) for line in lines if line.strip()
    )


def _exclusive_elapsed(span: Span) -> float:
    """Span wall time minus its children's (clamped at zero)."""
    exclusive = span.elapsed - sum(child.elapsed for child in span.children)
    return exclusive if exclusive > 0.0 else 0.0


def spans_to_collapsed(
    trace: Union[RecordingTracer, Span, Iterable[Span]],
    query: Optional[Query] = None,
) -> str:
    """Collapsed-stack flamegraph text of a span tree.

    One ``frame;frame <microseconds>`` line per distinct recursion path,
    frames labelled ``kind:expression`` and valued at *exclusive* span
    wall time, so the flamegraph area decomposes the root's total exactly
    (standard input for ``flamegraph.pl`` / speedscope).  Kernel-level
    flamegraphs come from
    :meth:`~repro.obs.profile.RecordingProfiler.collapsed` instead.
    """
    if isinstance(trace, Span):
        roots: Iterable[Span] = [trace]
    elif isinstance(trace, RecordingTracer):
        roots = trace.roots
    else:
        roots = trace
    totals: dict[tuple[str, ...], float] = {}

    def emit(span: Span, prefix: tuple[str, ...]) -> None:
        path = prefix + (f"{span.kind}:{subset_label(span.subset, query)}",)
        totals[path] = totals.get(path, 0.0) + _exclusive_elapsed(span)
        for child in span.children:
            emit(child, path)

    for root in roots:
        emit(root, ())
    return "\n".join(
        f"{';'.join(path)} {int(round(totals[path] * 1e6))}"
        for path in sorted(totals)
    )


def aggregate_counters(
    trace: Union[RecordingTracer, Span, Iterable[Span]],
) -> dict[str, int]:
    """Run totals recovered from per-span exclusive counter deltas.

    Summing every span's exclusive deltas reproduces the recorded
    portion of the run's :class:`~repro.analysis.metrics.Metrics`, which
    is what makes a reloaded JSONL dump summary-equivalent to the live
    tracer.
    """
    if isinstance(trace, Span):
        spans: Iterable[Span] = trace.walk()
    elif isinstance(trace, RecordingTracer):
        spans = trace.spans()
    else:
        spans = (span for root in trace for span in root.walk())
    totals: dict[str, int] = {}
    for span in spans:
        for name, value in span.counters.items():
            totals[name] = totals.get(name, 0) + value
    return {name: value for name, value in sorted(totals.items()) if value}


def _span_line(span: Span, query: Optional[Query]) -> str:
    parts = [f"{span.kind} {subset_label(span.subset, query)}"]
    if span.order is not None:
        parts.append(f"order={span.order}")
    if span.strategy:
        parts.append(f"[{span.strategy}]")
    if span.cost is not None:
        parts.append(f"cost={span.cost:.6g}")
    if span.budget is not None:
        parts.append(f"budget={span.budget:.6g}")
    if span.budget_failed:
        parts.append("FAILED-BUDGET")
    parts.append(f"{span.elapsed * 1e6:.0f}us")
    annotations = []
    if span.memo_hits:
        annotations.append(f"memo-hits={span.memo_hits}")
    if span.memo_bound_hits:
        annotations.append(f"bound-hits={span.memo_bound_hits}")
    if span.predicted_prunes:
        annotations.append(f"pruned={span.predicted_prunes}")
    partitions = span.counters.get("partitions_emitted")
    if partitions:
        annotations.append(f"partitions={partitions}")
    if span.events:
        annotations.append(f"events={len(span.events)}")
    if annotations:
        parts.append("(" + " ".join(annotations) + ")")
    return " ".join(parts)


def render_trace_tree(
    trace: Union[RecordingTracer, Span],
    query: Optional[Query] = None,
    *,
    max_depth: Optional[int] = None,
    max_children: int = 64,
) -> str:
    """ASCII recursion tree of the trace, indented two spaces per level.

    ``max_depth`` truncates deep traces; ``max_children`` elides wide
    fan-outs (an elision line reports how many spans were hidden).
    """
    roots = [trace] if isinstance(trace, Span) else trace.roots
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        lines.append("  " * depth + _span_line(span, query))
        if max_depth is not None and depth + 1 > max_depth:
            hidden = sum(1 for _ in span.walk()) - 1
            if hidden:
                lines.append("  " * (depth + 1) + f"... {hidden} deeper spans")
            return
        shown = span.children[:max_children]
        for child in shown:
            emit(child, depth + 1)
        hidden = len(span.children) - len(shown)
        if hidden > 0:
            lines.append("  " * (depth + 1) + f"... {hidden} more children")

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def render_summary(
    metrics: Optional[Metrics] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Flat summary table of counter totals and instrument statistics."""
    rows: list[tuple[str, str]] = []
    if metrics is not None:
        for name, value in sorted(metrics.to_dict().items()):
            if value:
                rows.append((name, str(value)))
    if registry is not None:
        for name, instrument in registry:
            if isinstance(instrument, (Histogram, Timer)):
                histogram = (
                    instrument.histogram
                    if isinstance(instrument, Timer)
                    else instrument
                )
                if not histogram.count:
                    continue
                rows.append(
                    (
                        name,
                        f"n={histogram.count} mean={histogram.mean:.4g} "
                        f"p50={histogram.percentile(50):.4g} "
                        f"p95={histogram.percentile(95):.4g} "
                        f"max={histogram.max:.4g}",
                    )
                )
            else:
                if instrument.value:
                    rows.append((name, str(instrument.value)))
    if not rows:
        return "(no observations)"
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name.ljust(width)}  {value}" for name, value in rows)
