"""Kernel-level deterministic instrumentation profiler.

Spans (:mod:`repro.obs.tracer`) attribute exclusive time per *expression*;
this module attributes it per *kernel* — the named inner loops the
ROADMAP's raw-speed arc needs ranked before anything is ported to a
compiled backend:

===================  =========================================================
kernel               what it covers
===================  =========================================================
``enum.recurse``     the search driver itself: ``GetBestPlan`` recursion glue,
                     plan comparisons, bounding arithmetic
``partition.*``      one partition-strategy invocation step (``next()`` on the
                     partition generator); the suffix names the strategy
                     family — ``partition.mincut`` (Algorithm 4),
                     ``partition.mincut_probe`` (Algorithm 6),
                     ``partition.articulation`` (left-deep minimal cuts),
                     ``partition.peel`` (naive left-deep)
``enum.subsets``     bitset subset enumeration (``iter_subsets``-driven naive
                     bushy generate-and-test)
``partition.bcc_build``  biconnection-tree construction inside the minimal-cut
                     strategies (nested under the partition kernel)
``memo.table``       memo probes, plan decodes, stores, and evictions
``cost.eval``        every cost-model call: scans, operator costing, join and
                     sort plan assembly, predicted-cost lower bounds
===================  =========================================================

The profiler mirrors the tracer's NULL-object contract: hot paths test
one ``enabled``/``self._profiling`` flag and pay nothing when profiling
is off (:data:`NULL_PROFILER`), a discipline the ``hotpath-purity`` lint
rule enforces statically.  When on, :class:`RecordingProfiler` keeps a
frame stack and attributes *exclusive* wall time — a frame's inclusive
time minus its nested kernel frames — plus deterministic call and
operation counts, so two seeded runs always agree on everything except
the wall-clock columns (compare :meth:`RecordingProfiler.deterministic_table`).

Collapsed-stack output (:meth:`RecordingProfiler.collapsed`) is the
standard ``frame;frame value`` flamegraph format (values in integer
microseconds), directly consumable by ``flamegraph.pl``, speedscope, or
``inferno-flamegraph``; see ``docs/profiling.md``.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.obs.timing import clock

__all__ = [
    "KERNEL_SEARCH",
    "KERNEL_BCC_BUILD",
    "KERNEL_MEMO",
    "KERNEL_COST",
    "KernelProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "RecordingProfiler",
    "ProfiledMemoCalls",
    "profiled_iter",
    "render_kernel_table",
]

#: The search-driver glue kernel (one frame wrapping the whole search).
KERNEL_SEARCH = "enum.recurse"
#: Biconnection-tree construction (nested inside a partition kernel).
KERNEL_BCC_BUILD = "partition.bcc_build"
#: Memo probes, decodes, stores, and evictions.
KERNEL_MEMO = "memo.table"
#: Cost-model evaluation: scans, operator costs, plan assembly, bounds.
KERNEL_COST = "cost.eval"


class KernelProfiler:
    """Profiler interface; every method is optional to override.

    ``enabled`` is the zero-overhead switch, exactly like
    :attr:`~repro.obs.tracer.Tracer.enabled`: instrumented code tests it
    once (or caches it as ``self._profiling``) and skips all profiler
    calls when false.
    """

    enabled: bool = True

    def enter(self, kernel: str) -> None:
        """Open a kernel frame (stack-nested; close with :meth:`exit`)."""

    def exit(self) -> None:
        """Close the innermost open kernel frame."""

    def count(self, kernel: str, op: str, amount: int = 1) -> None:
        """Add a deterministic operation count to a kernel."""


class NullProfiler(KernelProfiler):
    """The zero-overhead default: records nothing, never consulted."""

    enabled = False


#: Shared do-nothing profiler; identity-compared in hot paths.
NULL_PROFILER = NullProfiler()


class RecordingProfiler(KernelProfiler):
    """Accumulates per-kernel exclusive time, calls, ops, and stacks.

    A *frame* is one ``enter``/``exit`` pair.  Its exclusive time is its
    inclusive wall time minus the inclusive time of kernel frames nested
    inside it, so summing exclusive time over every kernel reproduces the
    root frame's inclusive time (the same attribution the tracer uses for
    per-span counters).  Stacks are aggregated by kernel path for
    collapsed-stack flamegraph export.
    """

    enabled = True

    def __init__(self) -> None:
        #: Exclusive wall seconds per kernel.
        self.seconds: dict[str, float] = {}
        #: Closed frames per kernel (deterministic for a seeded run).
        self.calls: dict[str, int] = {}
        #: Named operation counts per kernel (deterministic).
        self.ops: dict[str, dict[str, int]] = {}
        #: Exclusive wall seconds per kernel path (for flamegraphs).
        self.stacks: dict[tuple[str, ...], float] = {}
        # Open frames: [kernel, started_at, child_inclusive_seconds].
        self._stack: list[list[Any]] = []

    # -- recording ---------------------------------------------------------------

    def enter(self, kernel: str) -> None:
        self._stack.append([kernel, clock(), 0.0])

    def exit(self) -> None:
        kernel, started, child_seconds = self._stack.pop()
        inclusive = clock() - started
        exclusive = inclusive - child_seconds
        if exclusive < 0.0:
            exclusive = 0.0
        self.seconds[kernel] = self.seconds.get(kernel, 0.0) + exclusive
        self.calls[kernel] = self.calls.get(kernel, 0) + 1
        if self._stack:
            frame = self._stack[-1]
            frame[2] += inclusive
            path = tuple(open_frame[0] for open_frame in self._stack) + (kernel,)
        else:
            path = (kernel,)
        self.stacks[path] = self.stacks.get(path, 0.0) + exclusive

    def count(self, kernel: str, op: str, amount: int = 1) -> None:
        ops = self.ops.get(kernel)
        if ops is None:
            ops = self.ops[kernel] = {}
        ops[op] = ops.get(op, 0) + amount

    # -- views -------------------------------------------------------------------

    def kernels(self) -> list[str]:
        """Every kernel observed (frames or ops), sorted by name."""
        return sorted(set(self.seconds) | set(self.ops))

    def total_seconds(self) -> float:
        """Sum of exclusive time over every kernel (= root inclusive)."""
        return sum(self.seconds.values())

    def table(self) -> list[dict[str, Any]]:
        """Per-kernel rows sorted by exclusive time, largest first."""
        total = self.total_seconds()
        rows = []
        for kernel in self.kernels():
            seconds = self.seconds.get(kernel, 0.0)
            rows.append(
                {
                    "kernel": kernel,
                    "calls": self.calls.get(kernel, 0),
                    "exclusive_s": seconds,
                    "share": seconds / total if total > 0 else 0.0,
                    "ops": dict(sorted(self.ops.get(kernel, {}).items())),
                }
            )
        rows.sort(key=lambda row: (-row["exclusive_s"], row["kernel"]))
        return rows

    def deterministic_table(self) -> list[dict[str, Any]]:
        """The wall-clock-free view: two seeded runs yield identical tables."""
        return [
            {"kernel": kernel, "calls": self.calls.get(kernel, 0),
             "ops": dict(sorted(self.ops.get(kernel, {}).items()))}
            for kernel in self.kernels()
        ]

    def report(self, wall_seconds: float | None = None) -> dict[str, Any]:
        """JSON-ready summary; ``wall_seconds`` adds shares of end-to-end wall."""
        total = self.total_seconds()
        rows = self.table()
        if wall_seconds is not None and wall_seconds > 0:
            for row in rows:
                row["share_of_wall"] = row["exclusive_s"] / wall_seconds
        report: dict[str, Any] = {
            "total_profiled_s": total,
            "kernels": rows,
        }
        if wall_seconds is not None:
            report["wall_s"] = wall_seconds
            if wall_seconds > 0:
                report["coverage_of_wall"] = total / wall_seconds
        return report

    def collapsed(self) -> str:
        """Collapsed-stack flamegraph text: ``a;b <microseconds>`` lines."""
        lines = []
        for path in sorted(self.stacks):
            micros = int(round(self.stacks[path] * 1e6))
            lines.append(f"{';'.join(path)} {micros}")
        return "\n".join(lines)


def render_kernel_table(
    profiler: RecordingProfiler, *, kernels: list[str] | None = None
) -> str:
    """Human-readable per-kernel summary table.

    ``kernels`` optionally restricts the rows (shares stay relative to
    the full profiled total, so a filtered table still reads honestly).
    """
    rows = profiler.table()
    if kernels is not None:
        wanted = set(kernels)
        rows = [row for row in rows if row["kernel"] in wanted]
    if not rows:
        return "(no kernel frames recorded)"
    width = max(len(row["kernel"]) for row in rows)
    lines = [f"{'kernel'.ljust(width)}  {'calls':>10}  {'excl ms':>10}  {'share':>6}"]
    for row in rows:
        ops = " ".join(f"{op}={n}" for op, n in row["ops"].items())
        lines.append(
            f"{row['kernel'].ljust(width)}  {row['calls']:>10}  "
            f"{row['exclusive_s'] * 1e3:>10.3f}  {row['share'] * 100:>5.1f}%"
            + (f"  ({ops})" if ops else "")
        )
    return "\n".join(lines)


def profiled_iter(
    profiler: KernelProfiler,
    kernel: str,
    iterator: Iterator[Any],
    op: str | None = None,
) -> Iterator[Any]:
    """Attribute the time spent *inside* ``iterator`` to ``kernel``.

    Each ``next()`` runs under its own frame, so time spent in the
    consumer's loop body stays outside the kernel — exactly the
    generator-boundary attribution a sampling profiler cannot give.
    """
    while True:
        profiler.enter(kernel)
        try:
            item = next(iterator)
        except StopIteration:
            profiler.exit()
            return
        if op is not None:
            profiler.count(kernel, op)
        profiler.exit()
        yield item


class ProfiledMemoCalls:
    """Attribute memo probes/decodes/stores to :data:`KERNEL_MEMO`.

    A duck-typed stand-in for the hot subset of the
    :class:`~repro.memo.MemoTable` API the enumerator calls per recursion
    step; everything else (setup, summaries) still goes through the
    wrapped table directly.  Eviction/demotion counts are reported by the
    memo itself via :meth:`~repro.memo.MemoTable.attach_profiler`.
    """

    def __init__(self, memo: Any, profiler: KernelProfiler) -> None:
        self._memo = memo
        self._profiler = profiler

    def get(self, query: Any, subset: int, order: int | None) -> Any:
        profiler = self._profiler
        profiler.enter(KERNEL_MEMO)
        try:
            return self._memo.get(query, subset, order)
        finally:
            profiler.count(KERNEL_MEMO, "probes")
            profiler.exit()

    def plan_for_query(self, query: Any, entry: Any) -> Any:
        profiler = self._profiler
        profiler.enter(KERNEL_MEMO)
        try:
            return self._memo.plan_for_query(query, entry)
        finally:
            profiler.count(KERNEL_MEMO, "decodes")
            profiler.exit()

    def store_plan(
        self,
        query: Any,
        subset: int,
        order: int | None,
        plan: Any,
        *,
        compute_seconds: float | None = None,
    ) -> None:
        profiler = self._profiler
        profiler.enter(KERNEL_MEMO)
        try:
            self._memo.store_plan(
                query, subset, order, plan, compute_seconds=compute_seconds
            )
        finally:
            profiler.count(KERNEL_MEMO, "stores")
            profiler.exit()

    def store_lower_bound(
        self,
        query: Any,
        subset: int,
        order: int | None,
        budget: float,
        *,
        compute_seconds: float | None = None,
    ) -> None:
        profiler = self._profiler
        profiler.enter(KERNEL_MEMO)
        try:
            self._memo.store_lower_bound(
                query, subset, order, budget, compute_seconds=compute_seconds
            )
        finally:
            profiler.count(KERNEL_MEMO, "stores")
            profiler.exit()
