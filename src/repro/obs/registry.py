"""Counters, timers, and histograms for optimization-run telemetry.

:class:`~repro.analysis.metrics.Metrics` counts the operations of the
paper's complexity analysis; this registry records *distributions* on top
of them — how many partitions each expression emitted, the wall time
between successive join operators (the paper's §3 optimality metric: at
most linear work between joins), and memo occupancy over time (the
Figure 21–30 storage experiments).  Instruments are created on demand and
shared by name, so the enumerator, memo, and bottom-up baselines can all
write into one registry for apples-to-apples comparison.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, TypeVar

from repro.obs.timing import Stopwatch

__all__ = [
    "Counter",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "PARTITIONS_PER_EXPRESSION",
    "TIME_BETWEEN_JOINS",
    "MEMO_OCCUPANCY",
    "MEMO_EVICTIONS",
    "MEMO_DEMOTIONS",
    "MEMO_COLD_HITS",
    "MEMO_SHARED_HITS",
    "SERVE_REQUESTS",
    "SERVE_CACHE_HITS",
    "SERVE_CACHE_MISSES",
    "SERVE_DEDUP_SAVES",
    "SERVE_REJECTED",
    "SERVE_ERRORS",
    "SERVE_QUEUE_DEPTH",
    "SERVE_BATCH_SIZE",
    "SERVE_REQUEST_SECONDS",
    "ANYTIME_GAP_BOUND",
    "ANYTIME_NODES_SPENT",
    "TOPK_RANKED_DEPTH",
]

#: Well-known instrument names used by the built-in instrumentation.
PARTITIONS_PER_EXPRESSION = "partitions_per_expression"
TIME_BETWEEN_JOINS = "time_between_joins_us"
MEMO_OCCUPANCY = "memo_occupancy"
MEMO_EVICTIONS = "memo_evictions"
MEMO_DEMOTIONS = "memo_demotions"
MEMO_COLD_HITS = "memo_cold_hits"
MEMO_SHARED_HITS = "memo_shared_hits"

#: Instruments of the ``repro.serve`` tier (counters unless noted).
SERVE_REQUESTS = "serve_requests"
SERVE_CACHE_HITS = "serve_cache_hits"
SERVE_CACHE_MISSES = "serve_cache_misses"
SERVE_DEDUP_SAVES = "serve_dedup_saves"
SERVE_REJECTED = "serve_rejected"
SERVE_ERRORS = "serve_errors"
SERVE_QUEUE_DEPTH = "serve_queue_depth"  # histogram, sampled at dispatch
SERVE_BATCH_SIZE = "serve_batch_size"  # histogram, per dispatched batch
SERVE_REQUEST_SECONDS = "serve_request_seconds"  # timer, admission→reply

#: Instruments of the ``repro.anytime`` machinery (histograms).
ANYTIME_GAP_BOUND = "anytime_gap_bound"  # finite gap bounds of budgeted runs
ANYTIME_NODES_SPENT = "anytime_nodes_spent"  # nodes charged per budgeted run
TOPK_RANKED_DEPTH = "topk_ranked_depth"  # plans returned per optimize_topk


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Accumulate another counter (parallel per-worker registries)."""
        self.value += other.value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Histogram:
    """A distribution of observed values with summary statistics.

    Raw observations are kept (repro-scale runs observe at most a few
    hundred thousand values), so exact percentiles are available for the
    storage and time-between-joins analyses.
    """

    __slots__ = ("name", "values", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.values.append(value)
        self.total += value

    def merge(self, other: "Histogram") -> None:
        """Append another histogram's raw observations to this one.

        Percentiles of the merged distribution are exact (raw values are
        kept), which is what makes per-worker registries of a parallel run
        foldable into one apples-to-apples distribution.
        """
        self.values.extend(other.values)
        self.total += other.total

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else math.nan

    @property
    def min(self) -> float:
        return min(self.values) if self.values else math.nan

    @property
    def max(self) -> float:
        return max(self.values) if self.values else math.nan

    def percentile(self, p: float) -> float:
        """Exact percentile by nearest-rank; ``p`` in [0, 100]."""
        if not self.values:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.values)
        rank = max(0, math.ceil(p / 100 * len(ordered)) - 1)
        return ordered[rank]

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": None if not self.values else self.min,
            "max": None if not self.values else self.max,
            "mean": None if not self.values else self.mean,
            "p50": None if not self.values else self.percentile(50),
            "p95": None if not self.values else self.percentile(95),
            "p99": None if not self.values else self.percentile(99),
        }


class Timer:
    """A histogram of elapsed seconds with a context-manager front end."""

    __slots__ = ("name", "histogram")

    def __init__(self, name: str) -> None:
        self.name = name
        self.histogram = Histogram(name)

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    def time(self) -> "_TimerContext":
        """``with timer.time(): work()`` records one observation."""
        return _TimerContext(self)

    def merge(self, other: "Timer") -> None:
        """Fold another timer's observations into this one."""
        self.histogram.merge(other.histogram)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total(self) -> float:
        return self.histogram.total

    @property
    def mean(self) -> float:
        return self.histogram.mean

    def to_dict(self) -> dict[str, Any]:
        return {**self.histogram.to_dict(), "type": "timer"}


class _TimerContext:
    __slots__ = ("_timer", "_stopwatch")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer

    def __enter__(self) -> "_TimerContext":
        self._stopwatch = Stopwatch()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(self._stopwatch.elapsed())


_Instrument = TypeVar("_Instrument", "Counter", "Timer", "Histogram")


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Timer | Histogram] = {}

    def _get_or_create(self, name: str, cls: type[_Instrument]) -> _Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            created = cls(name)
            self._instruments[name] = created
            return created
        if not isinstance(instrument, cls):
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one, instrument by instrument.

        Instruments present in both must share a type (the usual
        name-collision rule); instruments only in ``other`` are adopted
        with their current contents.  Used to fold the per-worker
        registries of a parallel run into the parent's registry so
        distribution instruments (e.g. time-between-joins) cover the whole
        run.
        """
        for name, instrument in other._instruments.items():
            if isinstance(instrument, Counter):
                self.counter(name).merge(instrument)
            elif isinstance(instrument, Timer):
                self.timer(name).merge(instrument)
            else:
                self.histogram(name).merge(instrument)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[tuple[str, Counter | Timer | Histogram]]:
        return iter(sorted(self._instruments.items(), key=lambda item: item[0]))

    def to_dict(self) -> dict[str, dict[str, Any]]:
        """All instruments as plain dicts, keyed by name (JSON exporters)."""
        return {name: inst.to_dict() for name, inst in self}
