"""Bounding-ledger reconstruction from recorded traces (``repro explain``).

Section 3/4 of the paper analyse *why* an expression was (or was not)
explored: what budget the accumulated-cost search carried in, how many
partitions the predicted-cost test pruned, and which child lookups the
memo answered outright, with a stored lower bound, from the cold tier, or
from a cross-query shared cache.  A recorded span trace contains all of
that — this module folds it into one ledger row per expression so a run
can be audited after the fact, from a live
:class:`~repro.obs.tracer.RecordingTracer` or a reloaded JSONL dump
(:func:`~repro.obs.exporters.read_jsonl`).

The complementary phase-2-vs-phase-1 *diff* — which bound or cost delta
made the multiphase driver reuse or reject each phase-1 subplan — lives
in :mod:`repro.multiphase` (it needs the phase results, which sit above
this layer).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Iterable, Optional, Union

from repro.catalog.query import Query
from repro.core.bitset import popcount
from repro.obs.exporters import subset_label
from repro.obs.tracer import RecordingTracer, Span

__all__ = ["LedgerEntry", "bounding_ledger", "render_ledger"]


@dataclass(frozen=True)
class LedgerEntry:
    """Aggregated bounding decisions for one ``(expression, order)`` cell.

    ``memo_hits`` / ``memo_bound_hits`` / ``predicted_prunes`` count the
    decisions taken *while computing this expression* (exclusive of its
    recursive children, like all span counters); ``budgets`` lists every
    accumulated-cost budget the cell was entered with, smallest first.
    """

    subset: int
    order: Optional[int]
    #: Number of memo-missed computations (re-expansions under a bounded
    #: memo or tightening budgets show up as > 1).
    computations: int
    #: Accumulated-cost budgets at entry, sorted ascending (Algorithm 7).
    budgets: tuple[float, ...]
    #: Best plan cost found (None when every computation failed its budget).
    best_cost: Optional[float]
    #: Computations that found no plan within their budget.
    budget_failures: int
    memo_hits: int
    memo_bound_hits: int
    predicted_prunes: int
    memo_cold_hits: int
    memo_shared_hits: int
    #: Partitions emitted while computing this expression.
    partitions: int
    #: Exclusive wall microseconds across all computations.
    exclusive_us: float

    def to_dict(self) -> dict[str, Any]:
        record = asdict(self)
        record["budgets"] = list(self.budgets)
        return record


def _iter_spans(
    trace: Union[RecordingTracer, Span, Iterable[Span]],
) -> Iterable[Span]:
    if isinstance(trace, Span):
        return trace.walk()
    if isinstance(trace, RecordingTracer):
        return trace.spans()
    return (span for root in trace for span in root.walk())


def bounding_ledger(
    trace: Union[RecordingTracer, Span, Iterable[Span]],
) -> list[LedgerEntry]:
    """One :class:`LedgerEntry` per ``(subset, order)`` seen in the trace.

    Entries are ordered largest expression first (root at the top), then
    by subset value — the order the recursion tree is usually read in.
    """
    grouped: dict[tuple[int, Optional[int]], list[Span]] = {}
    for span in _iter_spans(trace):
        grouped.setdefault((span.subset, span.order), []).append(span)

    entries: list[LedgerEntry] = []
    for (subset, order), spans in grouped.items():
        costs = [span.cost for span in spans if span.cost is not None]
        budgets = sorted(
            span.budget for span in spans if span.budget is not None
        )
        exclusive = 0.0
        for span in spans:
            gap = span.elapsed - sum(child.elapsed for child in span.children)
            if gap > 0.0:
                exclusive += gap
        entries.append(
            LedgerEntry(
                subset=subset,
                order=order,
                computations=len(spans),
                budgets=tuple(budgets),
                best_cost=min(costs) if costs else None,
                budget_failures=sum(1 for span in spans if span.budget_failed),
                memo_hits=sum(span.memo_hits for span in spans),
                memo_bound_hits=sum(span.memo_bound_hits for span in spans),
                predicted_prunes=sum(span.predicted_prunes for span in spans),
                memo_cold_hits=sum(
                    span.counters.get("memo_cold_hits", 0) for span in spans
                ),
                memo_shared_hits=sum(
                    span.counters.get("memo_shared_hits", 0) for span in spans
                ),
                partitions=sum(
                    span.counters.get("partitions_emitted", 0) for span in spans
                ),
                exclusive_us=exclusive * 1e6,
            )
        )
    entries.sort(key=lambda e: (-popcount(e.subset), e.subset, e.order or -1))
    return entries


def render_ledger(
    entries: list[LedgerEntry],
    query: Optional[Query] = None,
    *,
    limit: Optional[int] = None,
) -> str:
    """Human-readable ledger table (one row per expression)."""
    if not entries:
        return "(no spans recorded)"
    shown = entries if limit is None else entries[:limit]
    labels = [subset_label(entry.subset, query) for entry in shown]
    width = max(len(label) for label in labels)
    lines = [
        f"{'expression'.ljust(width)}  {'cost':>12}  {'budget in':>12}  "
        f"{'fail':>4}  {'hits':>5}  {'bound':>5}  {'prune':>5}  "
        f"{'cold':>4}  {'shared':>6}  {'parts':>6}"
    ]
    for entry, label in zip(shown, labels):
        cost = "-" if entry.best_cost is None else f"{entry.best_cost:.6g}"
        budget = "-" if not entry.budgets else f"{entry.budgets[0]:.6g}"
        lines.append(
            f"{label.ljust(width)}  {cost:>12}  {budget:>12}  "
            f"{entry.budget_failures:>4}  {entry.memo_hits:>5}  "
            f"{entry.memo_bound_hits:>5}  {entry.predicted_prunes:>5}  "
            f"{entry.memo_cold_hits:>4}  {entry.memo_shared_hits:>6}  "
            f"{entry.partitions:>6}"
        )
    hidden = len(entries) - len(shown)
    if hidden > 0:
        lines.append(f"... {hidden} more expressions")
    return "\n".join(lines)
