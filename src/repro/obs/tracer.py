"""Span-based tracing of the top-down partition search.

A *span* covers the computation of one memoized expression: the
``_get_best`` invocation that missed the memo and ran ``CalcBestScan`` or
``CalcBestJoin``.  Spans nest exactly like the recursion of Algorithm 1,
so a recorded trace is a tree whose root is the full query expression and
whose span count equals the number of memoized expressions explored.
Memo hits do **not** open spans — they are annotated on the requesting
parent span, which is what makes the span-count invariant hold.

Each span records the expression bitset, the partition strategy, memo
hit/bound-hit annotations, bounding decisions (budget at entry, predicted
prunes), the best cost found, wall time, strategy-level events, and —
via :meth:`~repro.analysis.metrics.Metrics.snapshot` /
:meth:`~repro.analysis.metrics.Metrics.diff` — the *exclusive* deltas of
every operation counter (descendants' work is subtracted out, so summing
a delta over all spans reproduces the run total).

The default tracer is the shared :data:`NULL_TRACER`, whose methods are
all no-ops and whose :attr:`~Tracer.enabled` flag lets hot paths skip
instrumentation with a single attribute test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.analysis.metrics import Metrics
from repro.obs.timing import clock

__all__ = ["Span", "Tracer", "NullTracer", "RecordingTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One computed (memo-missed) expression in the search recursion."""

    span_id: int
    parent_id: Optional[int]
    subset: int
    order: Optional[int]
    kind: str  # "scan" | "join" | "optimize"
    strategy: Optional[str]
    depth: int
    started_at: float
    elapsed: float = 0.0
    #: Cost of the best plan found for this expression (None on failure).
    cost: Optional[float] = None
    #: Accumulated-cost budget at entry (Algorithm 7), if bounded.
    budget: Optional[float] = None
    #: Child lookups answered by a stored plan while this span was current.
    memo_hits: int = 0
    #: Child lookups answered by a stored lower bound (Algorithm 7 line 4).
    memo_bound_hits: int = 0
    #: Partitions skipped by the predicted-cost test while current.
    predicted_prunes: int = 0
    #: True iff the budgeted computation failed (no plan within budget).
    budget_failed: bool = False
    #: Strategy-level events: (name, payload) pairs, capped by the tracer.
    events: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    #: Events dropped once the per-span cap was reached.
    dropped_events: int = 0
    #: Exclusive Metrics counter deltas (descendants subtracted out).
    counters: dict[str, int] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable flat view (children referenced by id)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "subset": self.subset,
            "order": self.order,
            "kind": self.kind,
            "strategy": self.strategy,
            "depth": self.depth,
            # Full precision so a JSONL dump -> reload round-trips exactly
            # (floats survive JSON bit-for-bit; rounding here would not).
            "elapsed_us": self.elapsed * 1e6,
            "cost": self.cost,
            "budget": self.budget,
            "memo_hits": self.memo_hits,
            "memo_bound_hits": self.memo_bound_hits,
            "predicted_prunes": self.predicted_prunes,
            "budget_failed": self.budget_failed,
            "events": [[name, data] for name, data in self.events],
            "dropped_events": self.dropped_events,
            "counters": self.counters,
            "children": [child.span_id for child in self.children],
        }


class Tracer:
    """Tracing interface; every method is optional to override.

    ``enabled`` is the zero-overhead switch: instrumented code checks it
    once per recursion step and skips all tracer calls when false.
    """

    enabled: bool = True

    def bind_metrics(self, metrics: Metrics) -> None:
        """Attach the counter sink whose deltas spans should capture."""

    def begin(
        self,
        subset: int,
        order: int | None,
        kind: str,
        *,
        strategy: str | None = None,
        budget: float | None = None,
    ) -> None:
        """Open a span for a memo-missed expression computation."""

    def end(self, *, cost: float | None = None, failed: bool = False) -> None:
        """Close the current span with the best cost found (or failure)."""

    def memo_hit(self, subset: int, order: int | None) -> None:
        """A child lookup was answered by a stored plan."""

    def memo_bound_hit(self, subset: int, order: int | None) -> None:
        """A child lookup was answered by a stored lower bound."""

    def predicted_prune(self, left: int, right: int, bound: float) -> None:
        """A partition was skipped by the predicted-cost test."""

    def event(self, name: str, **data: Any) -> None:
        """Record a strategy-level event on the current span."""


class NullTracer(Tracer):
    """The zero-overhead default: records nothing, never consulted."""

    enabled = False


#: Shared do-nothing tracer; identity-compared in hot paths.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Builds the span tree of one (or several) optimization runs.

    Parameters
    ----------
    max_events_per_span:
        Cap on strategy events kept per span; further events only bump
        :attr:`Span.dropped_events`.  Protects traces of the naive
        strategies, whose generate-and-test loops emit one event per
        failed connectivity probe.
    """

    enabled = True

    def __init__(self, max_events_per_span: int = 256) -> None:
        self.max_events_per_span = max_events_per_span
        self.roots: list[Span] = []
        #: Memo-hit counts keyed by the requested ``(subset, order)`` —
        #: the per-expression attribution that span annotations (which
        #: live on the *requesting* span) cannot recover.
        self.memo_hit_subsets: dict[tuple[int, Optional[int]], int] = {}
        #: Same, for lookups answered by a stored lower bound.
        self.bound_hit_subsets: dict[tuple[int, Optional[int]], int] = {}
        self._stack: list[Span] = []
        self._snapshots: list[dict[str, int]] = []
        self._child_totals: list[dict[str, int]] = []
        self._metrics: Metrics | None = None
        self._next_id = 0

    # -- lifecycle ---------------------------------------------------------------

    def bind_metrics(self, metrics: Metrics) -> None:
        self._metrics = metrics

    def begin(
        self,
        subset: int,
        order: int | None,
        kind: str,
        *,
        strategy: str | None = None,
        budget: float | None = None,
    ) -> None:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            subset=subset,
            order=order,
            kind=kind,
            strategy=strategy,
            depth=len(self._stack),
            started_at=clock(),
            budget=budget,
        )
        self._next_id += 1
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        self._stack.append(span)
        self._snapshots.append(
            self._metrics.snapshot() if self._metrics is not None else {}
        )
        self._child_totals.append({})

    def end(self, *, cost: float | None = None, failed: bool = False) -> None:
        span = self._stack.pop()
        span.elapsed = clock() - span.started_at
        span.cost = cost
        span.budget_failed = failed
        before = self._snapshots.pop()
        children_total = self._child_totals.pop()
        if self._metrics is not None:
            total = self._metrics.diff(before)
            span.counters = {
                name: value - children_total.get(name, 0)
                for name, value in total.items()
                if value - children_total.get(name, 0)
            }
            if self._child_totals:  # roll our total up into the parent's
                parent_total = self._child_totals[-1]
                for name, value in total.items():
                    parent_total[name] = parent_total.get(name, 0) + value

    # -- annotations -------------------------------------------------------------

    def memo_hit(self, subset: int, order: int | None) -> None:
        key = (subset, order)
        self.memo_hit_subsets[key] = self.memo_hit_subsets.get(key, 0) + 1
        if self._stack:
            self._stack[-1].memo_hits += 1

    def memo_bound_hit(self, subset: int, order: int | None) -> None:
        key = (subset, order)
        self.bound_hit_subsets[key] = self.bound_hit_subsets.get(key, 0) + 1
        if self._stack:
            self._stack[-1].memo_bound_hits += 1

    def predicted_prune(self, left: int, right: int, bound: float) -> None:
        if self._stack:
            self._stack[-1].predicted_prunes += 1

    def event(self, name: str, **data: Any) -> None:
        if not self._stack:
            return
        span = self._stack[-1]
        if len(span.events) >= self.max_events_per_span:
            span.dropped_events += 1
            return
        span.events.append((name, data))

    # -- inspection --------------------------------------------------------------

    @property
    def root(self) -> Span:
        """The first recorded root span (raises if nothing was traced)."""
        if not self.roots:
            raise ValueError("no spans recorded")
        return self.roots[0]

    def spans(self) -> Iterator[Span]:
        """Pre-order traversal over every recorded root."""
        for root in self.roots:
            yield from root.walk()

    def span_count(self) -> int:
        """Total recorded spans (equals memo-missed expression computations)."""
        return sum(1 for _ in self.spans())

    def find(self, subset: int, order: int | None = None) -> Optional[Span]:
        """First span (pre-order) covering ``(subset, order)``."""
        for span in self.spans():
            if span.subset == subset and span.order == order:
                return span
        return None
