"""Command-line interface.

Subcommands::

    repro list-algorithms                      # registry contents
    repro optimize --topology star --n 8 ...   # optimize one query
    repro trace --algorithm mincutlazy ...     # traced run + recursion tree
    repro profile --flamegraph-out out.folded  # kernel-level profiler run
    repro explain --phases TBNmcP,TBCnaiveP    # bounding ledger / phase diff
    repro profile-memo --out prof.json ...     # trace -> memo cost profile
    repro experiment fig9 [--scale paper]      # regenerate a figure/table
    repro experiment all [--scale small]       # everything (EXPERIMENTS.md)
    repro verify [--fuzz N] [--invariant ...]  # conformance invariants
    repro lint src/ [--format json] ...        # repo-aware static analysis
    repro serve [--port 7411] [--once]         # resident plan service

``optimize`` accepts ``--json`` (machine-readable result),
``--trace-out PATH`` (JSONL span dump, one span per memoized expression
explored), ``--profile-out PATH`` (kernel profiler report JSON), and the
``--memo-*`` family bounding the memo (Section 5.1: ``--memo-capacity``
cells, ``--memo-policy`` eviction, cold demotion tier, offline profile);
``trace`` prints the recursion tree of ``docs/observability.md``;
``profile`` attributes exclusive wall time to named kernels and exports
collapsed-stack flamegraphs (``docs/profiling.md``); ``explain``
reconstructs the per-expression bounding ledger from a live or dumped
trace, or — with ``--phases`` — diffs the last two phases of a
multiphase run; ``profile-memo`` distills a traced run (or an existing
trace file) into the per-expression recompute weights that
``--memo-policy profile`` consumes.

Every ``--*-out PATH`` option creates missing parent directories up
front, before the (possibly long) optimization runs, and fails fast with
exit status 2 when it cannot.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

from repro.analysis.metrics import Metrics
from repro.anytime import Budget
from repro.experiments import EXPERIMENTS
from repro.obs import (
    MetricsRegistry,
    RecordingProfiler,
    RecordingTracer,
    Stopwatch,
    bounding_ledger,
    read_jsonl,
    render_kernel_table,
    render_ledger,
    render_summary,
    render_trace_tree,
    write_jsonl,
)
from repro.registry import available_algorithms, make_optimizer, parse_name
from repro.experiments.common import graph_maker
from repro.workloads.seeding import DEFAULT_SEED
from repro.workloads.weights import weighted_query

__all__ = ["main"]


def _prepare_out_path(path: str) -> str | None:
    """Create ``path``'s parent directory; returns an error message on failure.

    Called before optimization for every ``--*-out`` option so a typo'd
    directory fails fast instead of discarding a finished run.
    """
    parent = os.path.dirname(path)
    if not parent:
        return None
    try:
        os.makedirs(parent, exist_ok=True)
    except OSError as exc:
        return f"cannot create directory {parent!r} for {path!r}: {exc}"
    return None


def _prepare_out_paths(*paths: str | None) -> int | None:
    """Prepare several output paths; prints and returns 2 on failure."""
    for path in paths:
        if not path:
            continue
        error = _prepare_out_path(path)
        if error is not None:
            print(error, file=sys.stderr)
            return 2
    return None


def _cmd_list_algorithms(_args: argparse.Namespace) -> int:
    for name in available_algorithms():
        spec = parse_name(name)
        direction = "top-down " if spec.top_down else "bottom-up"
        optimal = "optimal" if spec.is_optimal_enumeration else "suboptimal"
        bounding = spec.bounding.name if spec.bounding else "exhaustive"
        print(
            f"{name:12s} {direction} {spec.space.describe():18s} "
            f"{spec.style:6s} {optimal:10s} {bounding}"
        )
    return 0


def _build_query(args: argparse.Namespace):
    if getattr(args, "query", None):
        from repro.catalog.parser import parse_query

        return parse_query(args.query)
    make = graph_maker(args.topology)
    graph = make(args.n, args.seed)
    return weighted_query(graph, args.seed)


def _load_memo_profile(args: argparse.Namespace):
    """Load ``--memo-profile`` if given; returns (profile, error_code)."""
    path = getattr(args, "memo_profile", None)
    if not path:
        return None, None
    from repro.cache.costing import CostProfile

    try:
        return CostProfile.load(path), None
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load memo profile {path!r}: {exc}", file=sys.stderr)
        return None, 2


def _cmd_optimize(args: argparse.Namespace) -> int:
    failure = _prepare_out_paths(
        getattr(args, "trace_out", None), getattr(args, "profile_out", None)
    )
    if failure is not None:
        return failure
    query = _build_query(args)
    metrics = Metrics()
    tracing = bool(getattr(args, "trace_out", None))
    tracer = RecordingTracer() if tracing else None
    profiler = (
        RecordingProfiler() if getattr(args, "profile_out", None) else None
    )
    registry = MetricsRegistry() if (tracing or args.json) else None
    workers = getattr(args, "workers", 0) or None
    memo_profile, error = _load_memo_profile(args)
    if error is not None:
        return error
    budget = None
    budget_ms = getattr(args, "budget_ms", None)
    budget_nodes = getattr(args, "budget_nodes", None)
    if budget_ms is not None or budget_nodes is not None:
        try:
            budget = Budget(max_nodes=budget_nodes, deadline_ms=budget_ms)
        except ValueError as exc:
            print(f"invalid budget: {exc}", file=sys.stderr)
            return 2
    top_k = getattr(args, "top_k", None)
    if top_k is not None and top_k < 1:
        print(f"--top-k must be >= 1, got {top_k}", file=sys.stderr)
        return 2
    if top_k is not None and budget is not None:
        print(
            "--top-k ranks plans exhaustively; drop --budget-ms/--budget-nodes",
            file=sys.stderr,
        )
        return 2
    if top_k is not None and workers is not None:
        print("--top-k is serial-only; drop --workers", file=sys.stderr)
        return 2
    optimizer = make_optimizer(
        args.algorithm,
        query,
        metrics=metrics,
        tracer=tracer,
        registry=registry,
        profiler=profiler,
        workers=workers,
        parallel_policy=getattr(args, "fork_policy", "auto"),
        worker_trace_dir=getattr(args, "worker_trace_dir", None),
        memo_policy=getattr(args, "memo_policy", None),
        memo_capacity=getattr(args, "memo_capacity", None),
        memo_cold_capacity=getattr(args, "memo_cold_capacity", None),
        memo_profile=memo_profile,
        fastpath=getattr(args, "fastpath", None),
        budget=budget,
        top_k=top_k,
    )
    effective_topk = (
        top_k
        if top_k is not None
        else getattr(optimizer, "default_topk", None)
    )
    ranked = None
    with Stopwatch() as stopwatch:
        if effective_topk is not None:
            ranked = optimizer.optimize_topk(effective_topk)
            plan = ranked[0]
        else:
            plan = optimizer.optimize()
    anytime_report = getattr(optimizer, "anytime", None)
    elapsed = stopwatch.elapsed_total
    parallel_info = None
    worker_results = getattr(optimizer, "worker_results", None)
    if worker_results is not None:
        parallel_info = {
            "workers": optimizer.workers,
            "policy": optimizer.policy,
            "tasks": metrics.parallel_tasks,
            "entries_merged": metrics.parallel_entries_merged,
            "worker_traces": [
                result.trace_path
                for result in worker_results
                if result.trace_path is not None
            ],
        }
    if tracer is not None:
        try:
            span_count = write_jsonl(tracer, args.trace_out)
        except OSError as exc:
            print(f"cannot write trace to {args.trace_out!r}: {exc}", file=sys.stderr)
            return 2
    profile_report = None
    if profiler is not None:
        profile_report = profiler.report(elapsed)
        profile_report["algorithm"] = args.algorithm
        profile_report["query"] = query.describe()
        try:
            with open(args.profile_out, "w", encoding="utf-8") as handle:
                json.dump(profile_report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(
                f"cannot write profile to {args.profile_out!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    if args.json:
        payload = {
            "query": query.describe(),
            "algorithm": args.algorithm,
            "elapsed_ms": elapsed * 1e3,
            "cost": plan.cost,
            "plan": plan.sql_like(),
            "plan_tree": plan.tree_string(),
            "metrics": metrics.to_dict(),
        }
        memo = getattr(optimizer, "memo", None)
        if memo is not None and hasattr(memo, "summary"):
            payload["memo"] = memo.summary()
        if registry is not None:
            payload["instruments"] = registry.to_dict()
        if tracer is not None:
            payload["trace"] = {"path": args.trace_out, "spans": span_count}
        if profile_report is not None:
            payload["profile"] = {
                "path": args.profile_out,
                "kernels": [row["kernel"] for row in profile_report["kernels"]],
            }
        fastpath_backend = getattr(optimizer, "fastpath_backend", None)
        if fastpath_backend is not None:
            payload["fastpath"] = {"backend": fastpath_backend}
        if parallel_info is not None:
            payload["parallel"] = parallel_info
        if anytime_report is not None:
            payload["anytime"] = anytime_report.to_dict()
        if ranked is not None:
            payload["topk"] = {
                "k": effective_topk,
                "returned": len(ranked),
                "plans": [
                    {"cost": candidate.cost, "plan": candidate.sql_like()}
                    for candidate in ranked
                ],
            }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"query: {query.describe()}")
    print(f"algorithm: {args.algorithm}  ({elapsed * 1e3:.2f} ms)")
    fastpath_backend = getattr(optimizer, "fastpath_backend", None)
    if fastpath_backend is not None:
        print(f"fastpath: {fastpath_backend} batch backend")
    if parallel_info is not None:
        print(
            f"parallel: {parallel_info['workers']} workers, "
            f"{parallel_info['policy']} policy, "
            f"{parallel_info['tasks']} tasks, "
            f"{parallel_info['entries_merged']} entries merged"
        )
    if anytime_report is not None:
        gap = (
            "unbounded"
            if math.isinf(anytime_report.gap_bound)
            else f"{anytime_report.gap_bound:.4g}"
        )
        status = "completed" if anytime_report.completed else "budget exhausted"
        print(
            f"anytime: {status}, {anytime_report.nodes_spent} nodes spent, "
            f"gap bound {gap}"
        )
    print(f"plan: {plan.sql_like()}")
    print(f"cost: {plan.cost:.6g}")
    if ranked is not None:
        print(f"top-{effective_topk}: {len(ranked)} distinct plan(s)")
        for rank, candidate in enumerate(ranked):
            print(f"  #{rank + 1}: cost {candidate.cost:.6g}  {candidate.sql_like()}")
    print(plan.tree_string())
    memo = getattr(optimizer, "memo", None)
    if memo is not None and hasattr(memo, "summary") and memo.capacity is not None:
        s = memo.summary()
        print(
            f"memo: {s['policy']} policy, capacity {s['capacity']}, "
            f"{s['hits']} hits / {s['misses']} misses, "
            f"{s['evictions']} evictions, {s['demotions']} demotions, "
            f"{s['cold_hits']} cold hits"
        )
    if tracer is not None:
        print(f"trace: {span_count} spans -> {args.trace_out}")
    if profile_report is not None:
        print(
            f"profile: {len(profile_report['kernels'])} kernels -> "
            f"{args.profile_out}"
        )
    if args.metrics:
        print("\ncounters:")
        for key, value in sorted(metrics.as_dict().items()):
            if value:
                print(f"  {key}: {value}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Optimize under a recording tracer and show the recursion tree."""
    failure = _prepare_out_paths(args.out)
    if failure is not None:
        return failure
    query = _build_query(args)
    metrics = Metrics()
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    optimizer = make_optimizer(
        args.algorithm, query, metrics=metrics, tracer=tracer, registry=registry
    )
    with Stopwatch() as stopwatch:
        plan = optimizer.optimize()
    print(f"query: {query.describe()}")
    print(
        f"algorithm: {args.algorithm}  ({stopwatch.elapsed_total * 1e3:.2f} ms, "
        f"{tracer.span_count()} spans)"
    )
    print(f"cost: {plan.cost:.6g}\n")
    print(render_trace_tree(tracer, query, max_depth=args.max_depth))
    print("\nsummary:")
    print(render_summary(metrics, registry))
    if args.out:
        try:
            count = write_jsonl(tracer, args.out)
        except OSError as exc:
            print(f"cannot write trace to {args.out!r}: {exc}", file=sys.stderr)
            return 2
        print(f"\ntrace: {count} spans -> {args.out}")
    return 0


def _cmd_profile_memo(args: argparse.Namespace) -> int:
    """Distill a traced run into a memo cost profile (``profile`` policy).

    Either replays an existing span-trace JSONL (``--from-trace``) or
    runs the optimizer under a recording tracer right here, then writes
    the per-expression exclusive recompute weights as JSON for a later
    ``repro optimize --memo-policy profile --memo-profile PATH`` run.
    """
    from repro.cache.costing import CostProfile

    failure = _prepare_out_paths(args.out)
    if failure is not None:
        return failure
    if args.from_trace:
        try:
            profile = CostProfile.from_trace_file(args.from_trace, metric=args.metric)
        except (OSError, ValueError, KeyError) as exc:
            print(
                f"cannot build profile from {args.from_trace!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        source = args.from_trace
    else:
        query = _build_query(args)
        tracer = RecordingTracer()
        optimizer = make_optimizer(
            args.algorithm, query, metrics=Metrics(), tracer=tracer
        )
        optimizer.optimize()
        profile = CostProfile.from_tracer(tracer, metric=args.metric)
        source = f"{args.algorithm} on {query.describe()}"
    try:
        profile.save(args.out)
    except OSError as exc:
        print(f"cannot write profile to {args.out!r}: {exc}", file=sys.stderr)
        return 2
    print(
        f"profile: {len(profile)} expressions ({args.metric} metric) "
        f"from {source} -> {args.out}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Optimize under the kernel profiler; print/export the kernel table.

    Text output is the per-kernel summary (exclusive wall time, calls,
    deterministic op counts) plus the top-3 kernels' share of end-to-end
    wall time; ``--flamegraph-out`` writes collapsed-stack text for
    ``flamegraph.pl``/speedscope, ``--out`` the full report as JSON.
    """
    failure = _prepare_out_paths(args.flamegraph_out, args.out)
    if failure is not None:
        return failure
    query = _build_query(args)
    metrics = Metrics()
    profiler = RecordingProfiler()
    optimizer = make_optimizer(
        args.algorithm, query, metrics=metrics, profiler=profiler
    )
    with Stopwatch() as stopwatch:
        plan = optimizer.optimize()
    wall = stopwatch.elapsed_total
    kernels = _split_rule_list(args.kernels)
    report = profiler.report(wall)
    report["algorithm"] = args.algorithm
    report["query"] = query.describe()
    report["cost"] = plan.cost
    if kernels is not None:
        wanted = set(kernels)
        report["kernels"] = [
            row for row in report["kernels"] if row["kernel"] in wanted
        ]
    if args.flamegraph_out:
        try:
            with open(args.flamegraph_out, "w", encoding="utf-8") as handle:
                handle.write(profiler.collapsed() + "\n")
        except OSError as exc:
            print(
                f"cannot write flamegraph to {args.flamegraph_out!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"cannot write report to {args.out!r}: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"query: {query.describe()}")
    print(f"algorithm: {args.algorithm}  ({wall * 1e3:.2f} ms, cost {plan.cost:.6g})")
    print()
    print(render_kernel_table(profiler, kernels=kernels))
    top = report["kernels"][:3]
    if top and wall > 0:
        shares = ", ".join(
            f"{row['kernel']} {row.get('share_of_wall', 0.0) * 100:.1f}%"
            for row in top
        )
        total = sum(row.get("share_of_wall", 0.0) for row in top)
        print(f"\ntop-3 of wall: {shares}  (together {total * 100:.1f}%)")
    if args.flamegraph_out:
        print(f"flamegraph: {len(profiler.stacks)} stacks -> {args.flamegraph_out}")
    if args.out:
        print(f"report: -> {args.out}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct bounding decisions from a trace, or diff two phases.

    Three sources, checked in order: ``--from-trace`` replays a JSONL
    span dump; ``--phases A,B,...`` runs a traced multiphase optimization
    and additionally prints the phase-2-vs-phase-1 subplan diff; plain
    ``--algorithm`` runs one traced optimization.  Output is the
    per-expression bounding ledger (budgets in, prunes, bound hits, memo
    tier hits) of ``docs/profiling.md``.
    """
    if args.from_trace:
        try:
            roots = read_jsonl(args.from_trace)
        except (OSError, ValueError, KeyError) as exc:
            print(
                f"cannot load trace {args.from_trace!r}: {exc}", file=sys.stderr
            )
            return 2
        ledger = bounding_ledger(roots)
        if args.json:
            print(json.dumps([entry.to_dict() for entry in ledger], indent=2))
        else:
            print(f"trace: {args.from_trace} ({len(ledger)} expressions)\n")
            print(render_ledger(ledger, limit=args.limit))
        return 0

    query = _build_query(args)
    if args.phases:
        from repro.multiphase import (
            explain_phases,
            optimize_multiphase,
            render_phase_diff,
        )

        names = [name.strip() for name in args.phases.split(",") if name.strip()]
        if len(names) < 2:
            print(
                "--phases needs at least two comma-separated algorithm names",
                file=sys.stderr,
            )
            return 2
        result = optimize_multiphase(query, names, trace=True)
        decisions = explain_phases(result, query)
        final_tracer = result.phases[-1].tracer
        assert final_tracer is not None  # trace=True above
        ledger = bounding_ledger(final_tracer)
        if args.json:
            payload = {
                "query": query.describe(),
                "phases": [
                    {"algorithm": phase.algorithm, "cost": phase.plan.cost}
                    for phase in result.phases
                ],
                "decisions": [decision.to_dict() for decision in decisions],
                "ledger": [entry.to_dict() for entry in ledger],
            }
            print(json.dumps(payload, indent=2))
            return 0
        print(f"query: {query.describe()}")
        for phase in result.phases:
            print(f"phase {phase.algorithm}: cost {phase.plan.cost:.6g}")
        print("\nphase diff (every phase-1 subplan):")
        print(render_phase_diff(decisions, limit=args.limit))
        print("\nbounding ledger (final phase):")
        print(render_ledger(ledger, query, limit=args.limit))
        return 0

    tracer = RecordingTracer()
    optimizer = make_optimizer(
        args.algorithm, query, metrics=Metrics(), tracer=tracer
    )
    plan = optimizer.optimize()
    ledger = bounding_ledger(tracer)
    if args.json:
        print(json.dumps([entry.to_dict() for entry in ledger], indent=2))
        return 0
    print(f"query: {query.describe()}")
    print(f"algorithm: {args.algorithm}  cost {plan.cost:.6g}\n")
    print(render_ledger(ledger, query, limit=args.limit))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    """Optimize a query, generate synthetic data, and execute the plan."""
    from repro.exec import ExecutionEngine, generate_database

    query = _build_query(args)
    plan = make_optimizer(args.algorithm, query).optimize()
    database = generate_database(
        query, rng=args.seed, max_rows=args.rows,
        min_rows=min(8, args.rows), max_domain=max(2, args.rows // 4),
    )
    engine = ExecutionEngine(database)
    rows = engine.execute(plan)
    print(f"query: {query.describe()}")
    print(f"plan ({args.algorithm}): {plan.sql_like()}  cost={plan.cost:,.0f}")
    for v in range(query.n):
        print(f"  {query.relations[v].name:<12} {database.row_count(v):>5} rows")
    print(f"result: {len(rows)} rows")
    for row in rows[: args.limit]:
        values = {k: v for k, v in sorted(row.items()) if k != "_rids"}
        print(f"  {values}")
    if len(rows) > args.limit:
        print(f"  ... ({len(rows) - args.limit} more)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id == "all":
        ids = list(EXPERIMENTS)
    else:
        if args.id not in EXPERIMENTS:
            print(
                f"unknown experiment {args.id!r}; choose from "
                f"{', '.join(EXPERIMENTS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        ids = [args.id]
    for experiment_id in ids:
        with Stopwatch() as stopwatch:
            result = EXPERIMENTS[experiment_id](args.scale)
        elapsed = stopwatch.elapsed_total
        if args.json:
            print(result.to_json())
        else:
            print(result.render())
            print(f"[completed in {elapsed:.1f}s]\n")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run the conformance suite: canned battery, corpus replay, fuzzing.

    Exit status is 1 when any invariant is violated, 2 on bad arguments;
    see ``docs/conformance.md`` for what each invariant encodes.
    """
    from repro.conformance import fuzz as run_fuzz
    from repro.conformance import replay_corpus
    from repro.conformance.invariants import INVARIANTS, standard_battery
    from repro.workloads.skewed import PROFILES

    selected = tuple(args.invariant) if args.invariant else None
    if selected:
        unknown = [name for name in selected if name not in INVARIANTS]
        if unknown:
            print(
                f"unknown invariants {unknown}; choose from "
                f"{', '.join(sorted(INVARIANTS))}",
                file=sys.stderr,
            )
            return 2
    if args.fuzz < 0:
        print(f"--fuzz must be >= 0, got {args.fuzz}", file=sys.stderr)
        return 2
    profiles = tuple(args.profile) if args.profile else PROFILES
    unknown_profiles = [name for name in profiles if name not in PROFILES]
    if unknown_profiles:
        print(
            f"unknown profiles {unknown_profiles}; choose from "
            f"{', '.join(PROFILES)}",
            file=sys.stderr,
        )
        return 2

    report: dict[str, object] = {"seed": args.seed}
    violations = []

    battery = standard_battery(invariants=selected)
    violations.extend(battery)
    report["battery"] = {
        "invariants": sorted(selected or INVARIANTS),
        "violations": [v.to_dict() for v in battery],
    }

    if args.corpus:
        replayed = replay_corpus(args.corpus)
        violations.extend(replayed)
        report["corpus"] = {
            "directory": args.corpus,
            "violations": [v.to_dict() for v in replayed],
        }

    if args.fuzz:
        def progress(case):
            if not args.json and case.index and case.index % 50 == 0:
                print(f"fuzz: {case.index}/{args.fuzz} cases", file=sys.stderr)

        fuzz_report = run_fuzz(
            args.fuzz,
            seed=args.seed,
            invariants=selected,
            corpus_dir=args.reproducer_dir,
            on_case=progress,
            profiles=profiles,
        )
        report["fuzz"] = fuzz_report.to_dict()
        violations.extend(fuzz_report.violations)

    if args.json:
        report["ok"] = not violations
        print(json.dumps(report, indent=2))
    else:
        print(f"battery: {len(battery)} violation(s)")
        if args.corpus:
            print(f"corpus:  {len(report['corpus']['violations'])} violation(s)")
        if args.fuzz:
            print(
                f"fuzz:    {args.fuzz} case(s), seed {args.seed}, "
                f"{len(report['fuzz']['violations'])} violation(s)"
            )
        for violation in battery:
            print(f"  {violation}")
        if args.fuzz:
            for record in report["fuzz"]["violations"]:
                repro_graph = record["reproducer"]
                print(
                    f"  case {record['case']}: shrunk to n={repro_graph['n']} "
                    f"edges={repro_graph['edges']}"
                )
        print("verify: " + ("FAIL" if violations else "ok"))
    return 1 if violations else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis rules (docs/static-analysis.md).

    Exit status: 0 when no error-severity findings (warnings never fail
    the run), 1 on errors, 2 on bad arguments or unparseable input.
    """
    from repro.lint import (
        ALL_RULES,
        lint_paths,
        render_json,
        render_rules,
        render_sarif,
        render_text,
    )

    if args.list_rules:
        print(render_rules(ALL_RULES))
        return 0
    if not args.paths:
        print("lint: no paths given (try: repro lint src/)", file=sys.stderr)
        return 2
    missing = [path for path in args.paths if not os.path.exists(path)]
    if args.program_root:
        missing += [p for p in args.program_root if not os.path.exists(p)]
    if missing:
        print(f"lint: no such path(s): {missing}", file=sys.stderr)
        return 2
    if args.call_graph:
        from repro.lint.engine import (
            ModuleSource,
            iter_python_files,
            module_name_for,
        )
        from repro.lint.flow import FlowProgram, render_call_graph

        roots = list(args.program_root or []) + list(args.paths)
        modules = []
        for file_path in iter_python_files(roots):
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
            try:
                modules.append(
                    ModuleSource.parse(
                        source,
                        path=file_path,
                        module=module_name_for(file_path),
                    )
                )
            except SyntaxError as exc:
                print(
                    f"lint: cannot parse {file_path}: {exc}", file=sys.stderr
                )
                return 2
        print(render_call_graph(FlowProgram.build(modules)))
        return 0
    select = _split_rule_list(args.select)
    ignore = _split_rule_list(args.ignore)
    try:
        report = lint_paths(
            args.paths,
            select=select,
            ignore=ignore,
            program_paths=args.program_root or None,
        )
    except ValueError as exc:  # unknown rule in --select/--ignore
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"lint: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report, ALL_RULES))
    else:
        print(render_text(report))
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident plan service (docs/serving.md).

    Foreground mode binds ``--host``/``--port`` and serves until
    interrupted.  ``--once`` is the self-test: bind an ephemeral port,
    run the seeded three-phase load suite against ourselves, print the
    report, and exit non-zero on any failed request or any served plan
    that is not bit-identical to direct optimization.
    """
    import asyncio

    from repro.serve.load import build_workload, run_load
    from repro.serve.server import PlanServer

    def make_server(port: int) -> PlanServer:
        return PlanServer(
            args.host,
            port,
            algorithm=args.algorithm,
            batch_size=args.batch_size,
            dispatch_workers=args.dispatch_workers,
            max_inflight=args.max_inflight,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            fastpath=args.fastpath,
        )

    if args.once:

        async def once() -> int:
            server = make_server(0)
            await server.start()
            host, port = server.address
            workload = build_workload(
                unique=args.unique,
                seed=args.seed,
                algorithm=args.algorithm,
                burst=args.dedup_burst,
            )
            report = await run_load(
                host, port, workload, concurrency=args.concurrency
            )
            await server.stop()
            payload = report.to_dict()
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(
                    f"serve --once: {report.requests} requests against "
                    f"{host}:{port} ({args.algorithm})"
                )
                print(
                    f"  ok={report.ok} failed={report.failed} "
                    f"mismatches={report.mismatches}"
                )
                print(
                    f"  hit_rate={report.hit_rate:.3f} "
                    f"dedup_saves={report.dedup_saves} "
                    f"p50={payload['latency_p50_ms']:.2f}ms "
                    f"p99={payload['latency_p99_ms']:.2f}ms "
                    f"plans/s={report.plans_per_sec:.1f}"
                )
            ok = report.ok > 0 and report.failed == 0 and report.mismatches == 0
            return 0 if ok else 1

        return asyncio.run(once())

    async def forever() -> int:
        server = make_server(args.port)
        await server.start()
        host, port = server.address
        print(
            f"serving on {host}:{port} (default algorithm "
            f"{args.algorithm}); Ctrl-C to stop"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(forever())
    except KeyboardInterrupt:
        print("\nstopped")
        return 0


def _split_rule_list(values: list[str] | None) -> list[str] | None:
    """Flatten repeatable, comma-separated rule-name options."""
    if not values:
        return None
    names = []
    for value in values:
        names.extend(name.strip() for name in value.split(",") if name.strip())
    return names or None


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal top-down join enumeration (DeHaan & Tompa, SIGMOD 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-algorithms", help="show the algorithm registry")

    optimize = sub.add_parser("optimize", help="optimize a generated query")
    optimize.add_argument("--algorithm", default="TBNmc")
    optimize.add_argument(
        "--topology",
        default="star",
        choices=["chain", "star", "cycle", "clique", "wheel",
                 "random-acyclic", "random-cyclic"],
    )
    optimize.add_argument("--n", type=int, default=8)
    optimize.add_argument("--seed", type=int, default=42)
    optimize.add_argument("--metrics", action="store_true")
    optimize.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON result (plan, cost, metrics)",
    )
    optimize.add_argument(
        "--trace-out", metavar="PATH",
        help="record the search as spans and write a JSONL dump to PATH",
    )
    optimize.add_argument(
        "--profile-out", metavar="PATH",
        help="run under the kernel profiler and write its report JSON to "
             "PATH (serial top-down algorithms only)",
    )
    optimize.add_argument(
        "--query",
        help="textual query DSL, e.g. 'a(1000) b(500) c(20); a-b:0.01' "
             "(overrides --topology/--n)",
    )
    optimize.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="parallelize the search over N worker processes "
             "(0 = serial; equivalent to an @N algorithm suffix)",
    )
    optimize.add_argument(
        "--fork-policy", default="auto", choices=["auto", "level", "subtree"],
        help="parallel fork-point policy: level-synchronous frontiers "
             "(work-conserving, default) or independent top-level cut "
             "subtrees with a shared cost bound",
    )
    optimize.add_argument(
        "--worker-trace-dir", metavar="DIR",
        help="write one span-trace JSONL per worker into DIR",
    )
    optimize.add_argument(
        "--memo-policy", choices=["lru", "smallest", "cost", "profile"],
        help="eviction policy for a capacity-bounded memo "
             "(equivalent to a %%policy algorithm suffix)",
    )
    optimize.add_argument(
        "--memo-capacity", type=int, metavar="CELLS",
        help="bound the memo to CELLS populated cells (Section 5.1)",
    )
    optimize.add_argument(
        "--memo-cold-capacity", type=int, metavar="CELLS",
        help="keep up to CELLS evicted cells in a compact cold tier "
             "(demotion instead of loss)",
    )
    optimize.add_argument(
        "--memo-profile", metavar="PATH",
        help="offline recompute weights from 'repro profile-memo' "
             "(used by --memo-policy profile)",
    )
    optimize.add_argument(
        "--fastpath", choices=["auto", "on", "off"], default=None,
        help="batched fast path (repro.fastpath): on forces it, off pins "
             "the scalar oracle, auto (default) honours a !fast algorithm "
             "suffix; REPRO_FASTPATH=off overrides everything",
    )
    optimize.add_argument(
        "--budget-ms", type=float, metavar="MS",
        help="anytime wall-clock deadline in milliseconds: return the "
             "best plan found in time, with a certified gap bound "
             "(equivalent to a ?MSms algorithm suffix; docs/anytime.md)",
    )
    optimize.add_argument(
        "--budget-nodes", type=int, metavar="N",
        help="anytime node budget: at most N memo-missed expression "
             "computations, deterministic (equivalent to ?Nn)",
    )
    optimize.add_argument(
        "--top-k", type=int, metavar="K",
        help="rank the K cheapest structurally distinct plans instead of "
             "one champion (equivalent to a ^K suffix; serial top-down "
             "only)",
    )

    trace = sub.add_parser(
        "trace", help="optimize under a recording tracer, print the recursion tree"
    )
    trace.add_argument("--algorithm", default="TBNmc")
    trace.add_argument(
        "--topology",
        default="star",
        choices=["chain", "star", "cycle", "clique", "wheel",
                 "random-acyclic", "random-cyclic"],
    )
    trace.add_argument("--n", type=int, default=6)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--query", help="textual query DSL (overrides --topology)")
    trace.add_argument("--out", metavar="PATH", help="also write a JSONL span dump")
    trace.add_argument(
        "--max-depth", type=int, default=None,
        help="truncate the printed tree below this depth",
    )

    profile = sub.add_parser(
        "profile",
        help="attribute exclusive wall time to named kernels (docs/profiling.md)",
    )
    profile.add_argument("--algorithm", default="TBNmc")
    profile.add_argument(
        "--topology",
        default="star",
        choices=["chain", "star", "cycle", "clique", "wheel",
                 "random-acyclic", "random-cyclic"],
    )
    profile.add_argument("--n", type=int, default=10)
    profile.add_argument("--seed", type=int, default=42)
    profile.add_argument("--query", help="textual query DSL (overrides --topology)")
    profile.add_argument(
        "--kernels", action="append", metavar="KERNEL[,KERNEL...]",
        help="restrict the printed table to these kernels (repeatable, "
             "comma-separated; shares stay relative to the full total)",
    )
    profile.add_argument(
        "--flamegraph-out", metavar="PATH",
        help="write collapsed-stack text (kernel;kernel microseconds) for "
             "flamegraph.pl / speedscope",
    )
    profile.add_argument(
        "--out", metavar="PATH", help="write the full report as JSON to PATH"
    )
    profile.add_argument(
        "--json", action="store_true",
        help="print the report as JSON instead of the table",
    )

    explain = sub.add_parser(
        "explain",
        help="per-expression bounding ledger and multiphase plan-decision diff",
    )
    explain.add_argument("--algorithm", default="TBNmcAP")
    explain.add_argument(
        "--topology",
        default="star",
        choices=["chain", "star", "cycle", "clique", "wheel",
                 "random-acyclic", "random-cyclic"],
    )
    explain.add_argument("--n", type=int, default=8)
    explain.add_argument("--seed", type=int, default=42)
    explain.add_argument("--query", help="textual query DSL (overrides --topology)")
    explain.add_argument(
        "--phases", metavar="A,B[,...]",
        help="run a traced multiphase optimization over these registry "
             "names and diff the final two phases (overrides --algorithm)",
    )
    explain.add_argument(
        "--from-trace", metavar="PATH",
        help="post-process an existing span-trace JSONL instead of running",
    )
    explain.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show at most N ledger/diff rows",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of tables",
    )

    profile_memo = sub.add_parser(
        "profile-memo",
        help="distill a traced run into per-expression memo recompute weights",
    )
    profile_memo.add_argument("--algorithm", default="TBNmc")
    profile_memo.add_argument(
        "--topology",
        default="star",
        choices=["chain", "star", "cycle", "clique", "wheel",
                 "random-acyclic", "random-cyclic"],
    )
    profile_memo.add_argument("--n", type=int, default=8)
    profile_memo.add_argument("--seed", type=int, default=42)
    profile_memo.add_argument("--query", help="textual query DSL (overrides --topology)")
    profile_memo.add_argument(
        "--from-trace", metavar="PATH",
        help="build from an existing span-trace JSONL instead of running",
    )
    profile_memo.add_argument(
        "--metric", default="work", choices=["work", "time"],
        help="weight metric: exclusive operation counters (deterministic, "
             "default) or exclusive wall microseconds",
    )
    profile_memo.add_argument(
        "--out", required=True, metavar="PATH",
        help="where to write the profile JSON",
    )

    run = sub.add_parser("run", help="optimize and execute on synthetic data")
    run.add_argument("--algorithm", default="TBNmc")
    run.add_argument(
        "--topology",
        default="star",
        choices=["chain", "star", "cycle", "clique", "wheel",
                 "random-acyclic", "random-cyclic"],
    )
    run.add_argument("--n", type=int, default=5)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--query", help="textual query DSL (overrides --topology)")
    run.add_argument("--rows", type=int, default=40, help="max rows per table")
    run.add_argument("--limit", type=int, default=5, help="result rows to print")

    experiment = sub.add_parser("experiment", help="regenerate a figure/table")
    experiment.add_argument("id", help="fig2..fig30, table2, or 'all'")
    experiment.add_argument("--scale", default="small", choices=["small", "paper"])
    experiment.add_argument("--json", action="store_true", help="emit JSON rows")

    verify = sub.add_parser(
        "verify",
        help="run the conformance invariants (docs/conformance.md)",
    )
    verify.add_argument(
        "--fuzz", type=int, default=0, metavar="N",
        help="additionally fuzz N seeded random graphs through the "
             "differential matrix (0 = battery only)",
    )
    verify.add_argument(
        "--invariant", action="append", metavar="NAME",
        help="restrict to one invariant (repeatable); default: all",
    )
    verify.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="master seed for the fuzz case generator",
    )
    verify.add_argument(
        "--profile", action="append", metavar="NAME",
        help="restrict fuzzing to one weight profile (repeatable); "
             "default: all (uniform, bimodal-selectivity, "
             "heavy-tail-cardinality)",
    )
    verify.add_argument(
        "--corpus", metavar="DIR",
        help="also replay every regression-corpus entry under DIR",
    )
    verify.add_argument(
        "--reproducer-dir", metavar="DIR",
        help="write shrunk fuzz reproducers into DIR for triage",
    )
    verify.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable report instead of text",
    )

    lint = sub.add_parser(
        "lint",
        help="repo-aware static analysis (docs/static-analysis.md)",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (e.g. src/)",
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="report format (json/sarif are what CI archives)",
    )
    lint.add_argument(
        "--select", action="append", metavar="RULE[,RULE...]",
        help="run only these rules (repeatable, comma-separated; "
        "globs like 'flow-*' select rule families)",
    )
    lint.add_argument(
        "--ignore", action="append", metavar="RULE[,RULE...]",
        help="skip these rules (repeatable, comma-separated; globs ok)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--call-graph", action="store_true",
        help="dump the whole-program call graph instead of linting",
    )
    lint.add_argument(
        "--program-root", action="append", metavar="PATH",
        help="build the whole-program flow analysis from PATH(s) while "
        "reporting only on the linted paths (pre-commit fast path)",
    )

    serve = sub.add_parser(
        "serve",
        help="resident plan service over NDJSON/TCP (docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7411, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--algorithm", default="TBNmc",
        help="default algorithm for requests that do not name one",
    )
    serve.add_argument(
        "--batch-size", type=int, default=4, metavar="N",
        help="max queued requests one dispatch worker takes per batch",
    )
    serve.add_argument(
        "--dispatch-workers", type=int, default=2, metavar="N",
        help="concurrent optimizer worker threads",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="admission control: max concurrently admitted requests",
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=None, metavar="RPS",
        help="per-tenant token-bucket refill rate (default: no quotas)",
    )
    serve.add_argument(
        "--tenant-burst", type=float, default=8.0, metavar="N",
        help="per-tenant token-bucket capacity",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="self-test: serve an ephemeral port, run the seeded load "
             "suite against it, report, and exit",
    )
    serve.add_argument(
        "--unique", type=int, default=10, metavar="N",
        help="unique queries in the --once suite",
    )
    serve.add_argument(
        "--dedup-burst", type=int, default=4, metavar="K",
        help="pipelined identical requests in the --once dedup phase",
    )
    serve.add_argument(
        "--concurrency", type=int, default=4, metavar="N",
        help="concurrent client connections in the --once flood phase",
    )
    serve.add_argument("--seed", type=int, default=1234)
    serve.add_argument(
        "--json", action="store_true",
        help="emit the --once report as machine-readable JSON",
    )
    serve.add_argument(
        "--fastpath", choices=["auto", "on", "off"], default=None,
        help="batched fast path for every served optimization "
             "(see 'repro optimize --fastpath')",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list-algorithms": _cmd_list_algorithms,
        "optimize": _cmd_optimize,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "explain": _cmd_explain,
        "profile-memo": _cmd_profile_memo,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "verify": _cmd_verify,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
