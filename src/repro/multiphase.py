"""Multi-phase optimization (Section 5.2).

Optimize a query iteratively over successively larger search spaces, using
the optimal plan of each phase as the initial upper bound of the next.
A bottom-up optimizer gains nothing from a smaller space's optimum (it
must recalculate everything), but a top-down algorithm with
branch-and-bound can turn it into pruning: the paper's Table 2 shows the
first phase paying for itself with roughly a 20 % improvement in the
second for larger queries.

Correctness note: each phase uses a **fresh memo**.  A memo entry records
the optimum *within the phase's search space*; reusing entries from a
smaller space in a larger one would silently return sub-space optima as
if they were global.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.enumerator import TopDownEnumerator
from repro.plans.physical import Plan
from repro.registry import make_optimizer, parse_name

__all__ = ["PhaseResult", "MultiPhaseResult", "optimize_multiphase"]


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of one optimization phase."""

    algorithm: str
    plan: Plan
    metrics: Metrics


@dataclass(frozen=True)
class MultiPhaseResult:
    """Outcome of a full multi-phase run."""

    phases: tuple[PhaseResult, ...]

    @property
    def plan(self) -> Plan:
        """The final (largest-space) optimal plan."""
        return self.phases[-1].plan

    @property
    def total_metrics(self) -> Metrics:
        """Counters accumulated across every phase."""
        combined = Metrics()
        for phase in self.phases:
            combined.merge(phase.metrics)
        return combined


def optimize_multiphase(
    query: Query,
    algorithms: list[str],
    cost_model: CostModel | None = None,
) -> MultiPhaseResult:
    """Run ``algorithms`` in sequence, seeding each with the previous optimum.

    ``algorithms`` lists registry names from smallest to largest search
    space, e.g. ``["TLNmcP", "TLCnaiveP"]`` for the paper's two-phase
    left-deep strategy.  Each phase after the first must be top-down (only
    top-down search can exploit the seed).  The final plan is optimal for
    the last phase's space and never worse than any earlier phase.
    """
    if not algorithms:
        raise ValueError("need at least one phase")
    cost_model = cost_model if cost_model is not None else CostModel()
    phases: list[PhaseResult] = []
    incumbent: Plan | None = None
    for position, name in enumerate(algorithms):
        parse_name(name)  # fail fast on typos
        metrics = Metrics()
        optimizer = make_optimizer(name, query, cost_model, metrics=metrics)
        if isinstance(optimizer, TopDownEnumerator):
            plan = optimizer.optimize(initial_plan=incumbent)
        else:
            if position > 0:
                raise ValueError(
                    f"phase {position} ({name}): bottom-up algorithms cannot "
                    "exploit a seed plan; use a top-down phase"
                )
            plan = optimizer.optimize()
        phases.append(PhaseResult(algorithm=name, plan=plan, metrics=metrics))
        incumbent = plan
    return MultiPhaseResult(phases=tuple(phases))
