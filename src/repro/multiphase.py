"""Multi-phase optimization (Section 5.2).

Optimize a query iteratively over successively larger search spaces, using
the optimal plan of each phase as the initial upper bound of the next.
A bottom-up optimizer gains nothing from a smaller space's optimum (it
must recalculate everything), but a top-down algorithm with
branch-and-bound can turn it into pruning: the paper's Table 2 shows the
first phase paying for itself with roughly a 20 % improvement in the
second for larger queries.

Correctness note: each phase uses a **fresh memo**.  A memo entry records
the optimum *within the phase's search space*; reusing entries from a
smaller space in a larger one would silently return sub-space optima as
if they were global.

With ``trace=True`` each phase records its recursion into a
:class:`~repro.obs.tracer.RecordingTracer`, and :func:`explain_phases`
post-processes the final two phases into per-subplan decisions: for every
subplan of the earlier phase's optimum, which bound or cost delta decided
whether the later phase reused, improved, or discarded it.  (The diff
lives here rather than in :mod:`repro.obs` because it consumes registry
names and phase results — layers above the observability tools.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import Metrics
from repro.anytime import AnytimeReport, Budget, BudgetClock
from repro.catalog.query import Query
from repro.core.bitset import popcount
from repro.cost.io_model import CostModel
from repro.enumerator import TopDownEnumerator
from repro.obs.exporters import subset_label
from repro.obs.tracer import RecordingTracer, Span
from repro.plans.physical import Plan
from repro.registry import make_optimizer, parse_name

__all__ = [
    "PhaseResult",
    "MultiPhaseResult",
    "SubplanDecision",
    "explain_phases",
    "optimize_multiphase",
    "render_phase_diff",
]


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of one optimization phase."""

    algorithm: str
    plan: Plan
    metrics: Metrics
    #: Populated by ``optimize_multiphase(..., trace=True)``.
    tracer: RecordingTracer | None = None
    #: Gap-bound report of a budgeted phase
    #: (``optimize_multiphase(..., budget=...)``), ``None`` otherwise.
    anytime: AnytimeReport | None = None


@dataclass(frozen=True)
class MultiPhaseResult:
    """Outcome of a full multi-phase run."""

    phases: tuple[PhaseResult, ...]

    @property
    def plan(self) -> Plan:
        """The final (largest-space) optimal plan."""
        return self.phases[-1].plan

    @property
    def anytime(self) -> AnytimeReport | None:
        """The final phase's gap report (budgeted runs only)."""
        return self.phases[-1].anytime

    @property
    def total_metrics(self) -> Metrics:
        """Counters accumulated across every phase."""
        combined = Metrics()
        for phase in self.phases:
            combined.merge(phase.metrics)
        return combined


def optimize_multiphase(
    query: Query,
    algorithms: list[str],
    cost_model: CostModel | None = None,
    *,
    trace: bool = False,
    budget: Budget | None = None,
) -> MultiPhaseResult:
    """Run ``algorithms`` in sequence, seeding each with the previous optimum.

    ``algorithms`` lists registry names from smallest to largest search
    space, e.g. ``["TLNmcP", "TLCnaiveP"]`` for the paper's two-phase
    left-deep strategy.  Each phase after the first must be top-down (only
    top-down search can exploit the seed).  The final plan is optimal for
    the last phase's space and never worse than any earlier phase.

    ``trace=True`` records each phase's recursion into a fresh
    :class:`~repro.obs.tracer.RecordingTracer` (stored on the
    :class:`PhaseResult`) so :func:`explain_phases` can reconstruct
    per-subplan reuse/reject decisions afterwards.

    ``budget`` makes the whole run anytime (``docs/anytime.md``): one
    shared :class:`~repro.anytime.BudgetClock` is threaded through every
    top-down phase, so the limit bounds the *total* search.  Once the
    clock exhausts, later phases degrade to their incumbent seeds; each
    budgeted phase's gap report lands on ``PhaseResult.anytime``.  A
    budgeted run requires every phase to be top-down (a bottom-up phase
    cannot be interrupted).
    """
    if not algorithms:
        raise ValueError("need at least one phase")
    cost_model = cost_model if cost_model is not None else CostModel()
    shared_clock = BudgetClock(budget) if budget is not None else None
    phases: list[PhaseResult] = []
    incumbent: Plan | None = None
    for position, name in enumerate(algorithms):
        parse_name(name)  # fail fast on typos
        metrics = Metrics()
        tracer = RecordingTracer() if trace else None
        optimizer = make_optimizer(
            name, query, cost_model, metrics=metrics, tracer=tracer
        )
        anytime: AnytimeReport | None = None
        if isinstance(optimizer, TopDownEnumerator):
            plan = optimizer.optimize(
                initial_plan=incumbent, budget=shared_clock
            )
            anytime = optimizer.anytime
        else:
            if position > 0:
                raise ValueError(
                    f"phase {position} ({name}): bottom-up algorithms cannot "
                    "exploit a seed plan; use a top-down phase"
                )
            if shared_clock is not None:
                raise ValueError(
                    f"phase {position} ({name}): a budgeted multi-phase run "
                    "requires top-down phases (bottom-up search cannot be "
                    "interrupted)"
                )
            plan = optimizer.optimize()
        phases.append(
            PhaseResult(
                algorithm=name,
                plan=plan,
                metrics=metrics,
                tracer=tracer,
                anytime=anytime,
            )
        )
        incumbent = plan
    return MultiPhaseResult(phases=tuple(phases))


# -- phase-2 vs phase-1 decision diff -----------------------------------------


@dataclass(frozen=True)
class SubplanDecision:
    """What the later phase decided about one earlier-phase subplan.

    ``verdict`` is one of:

    ``reused``
        The subplan's expression appears in the later optimum at the same
        cost — the seed survived.
    ``improved``
        The expression appears but the later (larger) space found a
        strictly cheaper plan for it.
    ``rejected``
        The later phase provably discarded the expression under a bound:
        every computation attempt failed its accumulated budget, or a
        memoized lower bound / too-expensive optimum answered immediately.
    ``restructured``
        The later phase computed an optimum for the expression, but its
        final plan decomposes the query differently, so the expression
        was out-competed on cost elsewhere, not bound-rejected.
    ``pruned``
        The later phase never opened a span for the expression: an
        ancestor was cut off first (predicted-cost prune or budget
        failure upstream).
    """

    subset: int
    label: str
    verdict: str
    reason: str
    phase1_cost: float
    phase2_cost: float | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (used by ``repro explain --json``)."""
        return {
            "subset": self.subset,
            "label": self.label,
            "verdict": self.verdict,
            "reason": self.reason,
            "phase1_cost": self.phase1_cost,
            "phase2_cost": self.phase2_cost,
        }


def _spans_by_subset(tracer: RecordingTracer) -> dict[int, list[Span]]:
    grouped: dict[int, list[Span]] = {}
    for span in tracer.spans():
        grouped.setdefault(span.subset, []).append(span)
    return grouped


def explain_phases(
    result: MultiPhaseResult, query: Query
) -> list[SubplanDecision]:
    """Diff the final two phases: one decision per earlier-phase subplan.

    Every node of the earlier phase's optimal plan gets a verdict (see
    :class:`SubplanDecision`) stating which cost delta or bound decided
    its fate in the later phase.  Requires the run to have been traced
    (``optimize_multiphase(..., trace=True)``).
    """
    if len(result.phases) < 2:
        raise ValueError("phase diff needs at least two phases")
    before, after = result.phases[-2], result.phases[-1]
    if after.tracer is None:
        raise ValueError(
            "phase diff needs span data; rerun optimize_multiphase(..., trace=True)"
        )
    phase1_cost = {
        node.vertices: node.cost for node in before.plan.iter_nodes()
    }
    phase2_cost = {
        node.vertices: node.cost for node in after.plan.iter_nodes()
    }
    spans = _spans_by_subset(after.tracer)
    bound_hit_subsets = {
        subset for subset, _order in after.tracer.bound_hit_subsets
    }

    decisions: list[SubplanDecision] = []
    for subset in sorted(phase1_cost, key=lambda s: (-popcount(s), s)):
        c1 = phase1_cost[subset]
        label = subset_label(subset, query)
        if subset in phase2_cost:
            c2 = phase2_cost[subset]
            if c2 < c1:
                verdict, reason = "improved", (
                    f"larger space found cost {c2:.6g} < phase-1 cost "
                    f"{c1:.6g} (saved {c1 - c2:.6g})"
                )
            else:
                verdict, reason = "reused", (
                    f"kept at matching cost {c1:.6g}"
                )
            decisions.append(
                SubplanDecision(subset, label, verdict, reason, c1, c2)
            )
            continue
        subset_spans = spans.get(subset, [])
        if subset_spans:
            failed = [span for span in subset_spans if span.budget_failed]
            computed = [
                span for span in subset_spans if span.cost is not None
            ]
            if computed:
                c2 = min(span.cost for span in computed if span.cost is not None)
                decisions.append(
                    SubplanDecision(
                        subset, label, "restructured",
                        f"computed at cost {c2:.6g} but out-competed: the "
                        "final plan decomposes this region differently",
                        c1, c2,
                    )
                )
            else:
                budgets = [
                    span.budget for span in failed if span.budget is not None
                ]
                detail = (
                    f"largest failed budget {max(budgets):.6g}"
                    if budgets
                    else "no plan within the accumulated budget"
                )
                decisions.append(
                    SubplanDecision(
                        subset, label, "rejected",
                        f"every attempt failed its cost budget ({detail}); "
                        "memoized as a lower bound",
                        c1, None,
                    )
                )
            continue
        if subset in bound_hit_subsets:
            decisions.append(
                SubplanDecision(
                    subset, label, "rejected",
                    "answered from the memo without recomputation: a stored "
                    "lower bound (or too-expensive optimum) already covered "
                    "the offered budget",
                    c1, None,
                )
            )
            continue
        decisions.append(
            SubplanDecision(
                subset, label, "pruned",
                "never explored: an enclosing expression was cut off first "
                "(predicted-cost prune or upstream budget failure)",
                c1, None,
            )
        )
    return decisions


def render_phase_diff(
    decisions: list[SubplanDecision], *, limit: int | None = None
) -> str:
    """Human-readable table for :func:`explain_phases` output."""
    if not decisions:
        return "(no phase-1 subplans)"
    shown = decisions if limit is None else decisions[:limit]
    width = max(len(d.label) for d in shown)
    width = max(width, len("expression"))
    lines = [
        f"{'expression'.ljust(width)}  {'verdict':<12}  {'phase-1':>12}  "
        f"{'phase-2':>12}  reason"
    ]
    for d in shown:
        c2 = "-" if d.phase2_cost is None else f"{d.phase2_cost:.6g}"
        lines.append(
            f"{d.label.ljust(width)}  {d.verdict:<12}  {d.phase1_cost:>12.6g}  "
            f"{c2:>12}  {d.reason}"
        )
    if len(shown) < len(decisions):
        lines.append(f"... {len(decisions) - len(shown)} more subplans")
    return "\n".join(lines)
