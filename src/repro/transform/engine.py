"""A miniature Volcano/Cascades-style transformational optimizer.

Logical properties in pure join enumeration reduce to the vertex set, so
the memo is a map ``vertex mask -> group``, each group holding the set of
*multi-expressions* ``(left mask, right mask)`` derived for it.  Starting
from one seed join tree, join commutativity and associativity are applied
to a fixpoint; every physical operator is then costed per
multi-expression to extract the best plan.

Two search spaces are supported:

* ``cp_free=False``: bushy trees with cartesian products.  The rule
  closure provably reaches every ordered pair of every subset, which the
  tests verify against the ``3^n - 2^(n+1) + 1`` closed form.
* ``cp_free=True``: the generate-and-test approach of Section 2.4 —
  derived expressions containing a cartesian product are discarded and
  never enter the memo.  On acyclic queries this is complete; on some
  cyclic queries it is *not* (the paper's observation), because every
  derivation path to certain CP-free plans passes through a CP
  expression.  The optimizer records which csg-cmp pairs it reached so
  the tests can exhibit the gap.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.plans.physical import Plan

__all__ = ["TransformationalOptimizer"]


class TransformationalOptimizer:
    """EXPLORE-then-cost transformational join enumeration.

    Parameters
    ----------
    query:
        The join query; the seed expression is a left-deep tree over a
        breadth-first vertex order (so it is CP-free whenever the graph is
        connected).
    cp_free:
        Enable the generate-and-test cartesian-product filter.
    cost_model / metrics:
        As for the other optimizers.
    """

    def __init__(
        self,
        query: Query,
        cost_model: CostModel | None = None,
        *,
        cp_free: bool = False,
        metrics: Metrics | None = None,
    ) -> None:
        self.query = query
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.cp_free = cp_free
        self.metrics = metrics if metrics is not None else Metrics()
        #: group mask -> set of (left, right) multi-expressions.
        self.groups: dict[int, set[tuple[int, int]]] = {}
        self._worklist: deque[tuple[int, int, int]] = deque()
        self._explored = False
        #: Rule applications and duplicate hits, for the Section 2.4 claims.
        self.rule_applications = 0
        self.duplicates_detected = 0
        self.cp_expressions_discarded = 0

    # -- memo helpers -----------------------------------------------------------

    def _ensure_group(self, mask: int) -> set[tuple[int, int]]:
        group = self.groups.get(mask)
        if group is None:
            group = set()
            self.groups[mask] = group
        return group

    def _add_expression(self, left: int, right: int) -> bool:
        """Insert multi-expression ``J(left, right)``; False if rejected."""
        if self.cp_free:
            graph = self.query.graph
            # Generate-and-test: an expression whose sides are not joined
            # by a predicate, or whose sides are internally disconnected
            # (so every subtree below them contains a cartesian product),
            # is discarded and never enters the memo.
            if (
                not graph.connects(left, right)
                or not graph.is_connected(left)
                or not graph.is_connected(right)
            ):
                self.cp_expressions_discarded += 1
                return False
        top = left | right
        group = self._ensure_group(top)
        if (left, right) in group:
            self.duplicates_detected += 1
            return False
        group.add((left, right))
        self._worklist.append((top, left, right))
        self.metrics.logical_joins_enumerated += 1
        return True

    # -- seed and exploration ------------------------------------------------------

    def _seed(self) -> None:
        graph = self.query.graph
        order: list[int] = []
        visited = 0
        queue = deque([0])
        while queue:
            v = queue.popleft()
            if visited >> v & 1:
                continue
            visited |= 1 << v
            order.append(v)
            remaining = graph.neighbors[v] & ~visited
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                queue.append(low.bit_length() - 1)
        if len(order) != graph.n:
            raise ValueError("transformational seed requires a connected graph")
        for v in range(graph.n):
            self._ensure_group(1 << v)
        accumulated = 1 << order[0]
        for v in order[1:]:
            self._add_expression(accumulated, 1 << v)
            accumulated |= 1 << v

    def explore(self) -> None:
        """Apply commutativity and associativity to a fixpoint.

        Associativity binds a parent multi-expression to *every* member of
        its left child group, including members discovered later, so each
        parent subscribes to its child group and is re-fired as the group
        grows — the task-dependency structure of a real Cascades engine.
        """
        if self._explored:
            return
        self._seed()
        subscribers: dict[int, list[tuple[int, int]]] = {}
        processed: dict[int, list[tuple[int, int]]] = {}

        def fire_associativity(left: int, right: int, a: int, b: int) -> None:
            # J(J(a, b), right) -> J(a, J(b, right)).
            self.rule_applications += 1
            self._add_expression(b, right)
            self._add_expression(a, b | right)
            # Even when the child derivation J(b, right) is discarded as a
            # cartesian product, the parent pair may arise via other
            # derivations; generate-and-test discards exactly the
            # expressions that contain a CP themselves.

        while self._worklist:
            top, left, right = self._worklist.popleft()
            # This expression may complete pending associativity bindings
            # of parents subscribed to its group.
            for parent_left, parent_right in subscribers.get(top, ()):
                fire_associativity(parent_left, parent_right, left, right)
            processed.setdefault(top, []).append((left, right))
            # Rule 1: commutativity  J(L, R) -> J(R, L).
            self.rule_applications += 1
            self._add_expression(right, left)
            # Rule 2: associativity over the left child group — members
            # already processed now, future members via the subscription
            # (each parent/member pair fires exactly once).
            subscribers.setdefault(left, []).append((left, right))
            for a, b in processed.get(left, ()):
                fire_associativity(left, right, a, b)
        self._explored = True

    # -- costing ----------------------------------------------------------------

    def optimize(self, order: int | None = None) -> Plan:
        """Explore, then extract the cheapest physical plan."""
        if order is not None:
            raise NotImplementedError(
                "interesting orders are outside this baseline's scope"
            )
        self.explore()
        best: dict[int, Plan | None] = {}
        plan = self._best_plan(self.query.graph.all_vertices, best)
        if plan is None:
            raise RuntimeError("transformational search produced no complete plan")
        self.metrics.final_memo_plans = len(self.groups)
        self.metrics.peak_memo_cells = max(
            self.metrics.peak_memo_cells, self.expression_count()
        )
        return plan

    def _best_plan(self, mask: int, cache: dict[int, Plan | None]) -> Plan | None:
        if mask in cache:
            return cache[mask]
        cache[mask] = None  # cycle guard; join DAG is acyclic by masks
        if mask & (mask - 1) == 0:
            scans = self.cost_model.scan_plans(self.query, mask, None)
            best = min(scans, key=lambda p: p.cost) if scans else None
            cache[mask] = best
            return best
        best: Plan | None = None
        for left, right in self.groups.get(mask, ()):
            left_plan = self._best_plan(left, cache)
            right_plan = self._best_plan(right, cache)
            if left_plan is None or right_plan is None:
                continue  # group starved by the CP filter
            for method in self.cost_model.JOIN_METHODS:
                plan = self.cost_model.build_join(
                    self.query, method, left_plan, right_plan
                )
                self.metrics.join_operators_costed += 1
                if best is None or plan.cost < best.cost:
                    best = plan
        cache[mask] = best
        return best

    # -- inspection ---------------------------------------------------------------

    def expression_count(self) -> int:
        """Total multi-expressions stored (the Ω(3^n) memory of §2.4)."""
        return sum(len(group) for group in self.groups.values())

    def group_count(self) -> int:
        """Number of groups (logical vertex sets) in the memo."""
        return len(self.groups)

    def reached_pairs(self) -> set[tuple[int, int]]:
        """All ordered (left, right) pairs present in the memo."""
        pairs = set()
        for group in self.groups.values():
            pairs |= group
        return pairs
