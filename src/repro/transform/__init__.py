"""Transformational (Volcano/Cascades-style) join enumeration.

Section 2.4 of the paper describes the transformational paradigm as the
main top-down alternative to partitioning search and makes three claims
about it that this subpackage lets us demonstrate live:

1. **Memory cost**: a transformational memo must store *all* generated
   logical expressions, not just optimal plans — Ω(3^n) storage for bushy
   spaces with cartesian products versus the Ω(2^n) of dynamic
   programming (counted by :class:`TransformationalOptimizer`'s metrics).
2. **Duplicate generation**: with the classic commutativity/associativity
   rule set, the same expression is derived along many paths; naive
   application wastes work detecting duplicates (also counted).
3. **CP-free generate-and-test**: cartesian products are avoided by
   discarding derived expressions that contain one.  A nuance worth
   recording: the paper's incompleteness argument ("the derivation path
   of at least one bushy CP-free plan must pass through a plan containing
   a CP" on some cyclic queries) applies to *duplicate-free* schemes à la
   Pellenkoft et al., where every expression has a unique derivation
   path.  Under the naive exhaustive rule application implemented here —
   which detects duplicates instead of preventing them — alternative
   derivation routes exist, and the test suite verifies empirically that
   the filtered closure still reaches every csg-cmp pair on chains,
   stars, trees, cycles, wheels, grids, and cliques.  The price is
   exactly the duplicate-detection work counted in
   :attr:`TransformationalOptimizer.duplicates_detected`.

The implementation is a faithful miniature of the EXPLORE phase of a
Volcano-style optimizer: groups keyed by logical properties (here, the
vertex set), multi-expressions referencing child groups, a rule engine
applying join commutativity and associativity to a fixpoint, and costing
of every physical operator per multi-expression.
"""

from repro.transform.engine import TransformationalOptimizer

__all__ = ["TransformationalOptimizer"]
