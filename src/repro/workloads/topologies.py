"""Canonical join-graph topologies used throughout the paper's evaluation.

All constructors return a :class:`~repro.core.joingraph.JoinGraph` over
vertices ``0 .. n-1``.  Conventions:

* ``chain(n)``: path ``0 - 1 - ... - n-1``;
* ``star(n)``: hub ``0`` joined to every spoke ``1 .. n-1``;
* ``cycle(n)``: chain plus the closing edge ``(n-1, 0)``;
* ``clique(n)``: every pair joined;
* ``wheel(n)``: the paper's "spoked wheel" — hub ``0`` joined to every rim
  vertex, rim vertices ``1 .. n-1`` forming a cycle;
* ``grid(rows, cols)``: rectangular lattice (a common cyclic benchmark);
* ``binary_tree(n)``: left-deep binary tree used in the Section 3.3.1
  worst-case analysis of ``MinCutLazy``.
"""

from __future__ import annotations

from repro.core.joingraph import JoinGraph

__all__ = ["binary_tree", "chain", "clique", "cycle", "grid", "star", "wheel"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def chain(n: int) -> JoinGraph:
    """Path query graph on ``n`` relations."""
    _require(n >= 1, f"chain needs n >= 1, got {n}")
    return JoinGraph(n, [(i, i + 1) for i in range(n - 1)])


def star(n: int) -> JoinGraph:
    """Star query graph: vertex 0 is the hub (e.g. a fact table)."""
    _require(n >= 1, f"star needs n >= 1, got {n}")
    return JoinGraph(n, [(0, i) for i in range(1, n)])


def cycle(n: int) -> JoinGraph:
    """Simple cycle on ``n`` relations."""
    _require(n >= 3, f"cycle needs n >= 3, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((n - 1, 0))
    return JoinGraph(n, edges)


def clique(n: int) -> JoinGraph:
    """Complete query graph on ``n`` relations."""
    _require(n >= 1, f"clique needs n >= 1, got {n}")
    return JoinGraph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def wheel(n: int) -> JoinGraph:
    """Spoked wheel: hub 0 plus a rim cycle on ``1 .. n-1``.

    This is the topology of Figure 5, the worst case for
    ``MinCutOptimistic`` when the hub is added to ``S`` first.
    """
    _require(n >= 4, f"wheel needs n >= 4, got {n}")
    edges = [(0, i) for i in range(1, n)]
    edges.extend((i, i + 1) for i in range(1, n - 1))
    edges.append((n - 1, 1))
    return JoinGraph(n, edges)


def grid(rows: int, cols: int) -> JoinGraph:
    """Rectangular grid lattice with ``rows * cols`` relations."""
    _require(rows >= 1 and cols >= 1, f"grid needs positive dims, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return JoinGraph(rows * cols, edges)


def binary_tree(n: int) -> JoinGraph:
    """Complete-ish binary tree rooted at 0 (vertex ``v`` has children
    ``2v+1`` and ``2v+2`` when they exist)."""
    _require(n >= 1, f"binary_tree needs n >= 1, got {n}")
    edges = []
    for v in range(n):
        for child in (2 * v + 1, 2 * v + 2):
            if child < n:
                edges.append((v, child))
    return JoinGraph(n, edges)
