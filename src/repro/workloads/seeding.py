"""Deterministic default seeding for every stochastic generator.

A generator that silently falls back to an unseeded ``random.Random``
produces different workloads in every process — fatal for the parallel
runtime (workers must reconstruct the *same* query the driver built) and
for CI regression baselines (committed counter values must be exactly
reproducible).  Every ``rng`` parameter in :mod:`repro.workloads` and
:mod:`repro.exec` therefore resolves through :func:`coerce_rng`: ``None``
means *the* default seed, not *a fresh* generator.  Pass an explicit seed
or ``random.Random`` for independent draws.
"""

from __future__ import annotations

import random

__all__ = ["DEFAULT_SEED", "coerce_rng"]

#: Seed used when a generator is called without one (SIGMOD'07 opening day,
#: matching ``repro.experiments.common.BASE_SEED``).
DEFAULT_SEED = 20070611


def coerce_rng(rng: random.Random | int | None) -> random.Random:
    """Normalize an ``rng`` argument to a ``random.Random`` instance.

    ``None`` yields a generator seeded with :data:`DEFAULT_SEED` so that
    repeated calls — in any process — draw the same sequence.
    """
    if rng is None:
        return random.Random(DEFAULT_SEED)
    if isinstance(rng, int):
        return random.Random(rng)
    return rng
