"""Weighted workload generation for the branch-and-bound experiments.

Section 4.3 of the paper: "Vertex weights are generated as ``10^X``, where
``X`` is drawn from a Gaussian distribution with ``mu = 5`` and
``sigma = 2``. ... The distribution of edge weights, representing join
selectivities in the range ``[0, 1)``, was carefully chosen based on the
ratio of edges to vertices so that the expected cardinality of the final
result ... is described by ``10^Y`` where ``Y`` follows a Gaussian
distribution with ``mu = 5``".

That calibration makes join inputs and join outputs have the same expected
cardinality, which the paper identifies as the worst case for
branch-and-bound pruning (it minimizes cost variance between partitions).
We reproduce it by drawing the target result exponent ``Y ~ N(5, 2)`` and
back-solving the total log-selectivity that the edges must contribute,
splitting it evenly across edges plus per-edge Gaussian noise, then
clamping each selectivity strictly below 1.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.catalog.stats import Relation
from repro.catalog.query import Query
from repro.core.joingraph import JoinGraph
from repro.workloads.seeding import coerce_rng

__all__ = ["WeightedWorkload", "generate_weights", "weighted_query"]

#: Mean/stddev of the base-cardinality exponent (paper: N(5, 2)).
CARDINALITY_MU = 5.0
CARDINALITY_SIGMA = 2.0

#: Mean/stddev of the final-result exponent (paper: mu = 5, sigma > 2).
RESULT_MU = 5.0
RESULT_SIGMA = 2.0

#: Per-edge noise on the log-selectivity split.
EDGE_NOISE_SIGMA = 0.5

#: Selectivities are clamped to at most this value (strictly below 1).
MAX_SELECTIVITY = 0.999


@dataclass(frozen=True)
class WeightedWorkload:
    """A weighted query plus the raw draws that produced it (for auditing)."""

    query: Query
    cardinality_exponents: tuple[float, ...]
    result_exponent_target: float

    @property
    def actual_result_exponent(self) -> float:
        """Realized ``log10`` of the final join cardinality (post-clamping)."""
        return math.log10(self.query.cardinality(self.query.graph.all_vertices))


def generate_weights(
    graph: JoinGraph,
    rng: random.Random | int | None = None,
) -> WeightedWorkload:
    """Draw Section 4.3 weights for ``graph`` and return the workload.

    ``rng=None`` uses the deterministic default seed (see
    :mod:`repro.workloads.seeding`), so the same graph always yields the
    same weighted query across processes.
    """
    rng = coerce_rng(rng)

    exponents = [rng.gauss(CARDINALITY_MU, CARDINALITY_SIGMA) for _ in range(graph.n)]
    # Keep cardinalities at least 1 tuple.
    exponents = [max(0.0, x) for x in exponents]
    relations = [Relation(f"R{i}", 10.0**x) for i, x in enumerate(exponents)]

    selectivity: dict[tuple[int, int], float] = {}
    edge_count = graph.edge_count()
    target_y = rng.gauss(RESULT_MU, RESULT_SIGMA)
    if edge_count:
        total_log_sel = target_y - sum(exponents)
        per_edge = total_log_sel / edge_count
        for e in graph.edges:
            log_sel = per_edge + rng.gauss(0.0, EDGE_NOISE_SIGMA)
            sel = min(MAX_SELECTIVITY, 10.0**log_sel)
            selectivity[(e.u, e.v)] = max(sel, 1e-12)

    query = Query(graph, relations, selectivity)
    return WeightedWorkload(
        query=query,
        cardinality_exponents=tuple(exponents),
        result_exponent_target=target_y,
    )


def weighted_query(
    graph: JoinGraph,
    rng: random.Random | int | None = None,
) -> Query:
    """Convenience wrapper returning only the query."""
    return generate_weights(graph, rng).query
