"""Workload generation: graph topologies, random graphs, and weights.

The paper evaluates on chains, stars, cycles, cliques, spoked wheels, and
randomly generated graphs parameterized by a cyclicity factor ``C``
(Sections 3.3.3 and 3.4), with vertex/edge weights drawn per Section 4.3
for the branch-and-bound experiments.
"""

from repro.workloads.topologies import (
    binary_tree,
    chain,
    clique,
    cycle,
    grid,
    star,
    wheel,
)
from repro.workloads.random_graphs import random_connected_graph
from repro.workloads.seeding import DEFAULT_SEED, coerce_rng
from repro.workloads.skewed import PROFILES, skewed_query, skewed_workload
from repro.workloads.weights import WeightedWorkload, generate_weights, weighted_query

__all__ = [
    "binary_tree",
    "chain",
    "clique",
    "cycle",
    "grid",
    "star",
    "wheel",
    "random_connected_graph",
    "DEFAULT_SEED",
    "coerce_rng",
    "WeightedWorkload",
    "generate_weights",
    "weighted_query",
    "PROFILES",
    "skewed_query",
    "skewed_workload",
]
