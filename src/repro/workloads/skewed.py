"""Skewed weight profiles: beyond the Section 4.3 uniform calibration.

The paper's weighted workloads (:mod:`repro.workloads.weights`) draw every
cardinality exponent from one Gaussian and split the result-exponent
budget evenly across edges — the *worst case for pruning*, but also a
single point in distribution space.  Real catalogs are lumpier, and the
fuzzer (:mod:`repro.conformance.fuzz`) should exercise the estimator and
the bounding logic away from that point.  This module adds two skewed
profiles behind one dispatch surface:

``uniform``
    The paper's calibration, unchanged (delegates to
    :func:`~repro.workloads.weights.generate_weights`).

``bimodal-selectivity``
    Each edge is either *weak* (selectivity near 1 — an almost-cross
    join) or *strong* (carrying the rest of the back-solved budget).
    Joins therefore alternate between exploding and collapsing, which is
    exactly the cost-variance regime where accumulated-cost bounding and
    the cost-aware eviction weights behave differently from the uniform
    case.

``heavy-tail-cardinality``
    Cardinality exponents follow a shifted Pareto instead of a Gaussian:
    most relations are small, a few are enormous.  This stresses the
    log-space cardinality estimator and produces the asymmetric partition
    costs that make ordering bugs (hash-order iteration, unstable merges)
    visible.

All draws go through one :class:`random.Random` coerced by
:func:`~repro.workloads.seeding.coerce_rng`, and every profile draws in a
fixed, documented order, so a ``(graph, profile, seed)`` triple is a
complete reproducer.
"""

from __future__ import annotations

import random

from repro.catalog.query import Query
from repro.catalog.stats import Relation
from repro.core.joingraph import JoinGraph
from repro.workloads.seeding import coerce_rng
from repro.workloads.weights import (
    CARDINALITY_MU,
    CARDINALITY_SIGMA,
    EDGE_NOISE_SIGMA,
    MAX_SELECTIVITY,
    RESULT_MU,
    RESULT_SIGMA,
    WeightedWorkload,
    generate_weights,
)

__all__ = ["PROFILES", "skewed_query", "skewed_workload"]

#: Every selectable weight profile, in documentation order.
PROFILES = ("uniform", "bimodal-selectivity", "heavy-tail-cardinality")

#: Probability that an edge lands in the weak (near-cross-join) mode.
BIMODAL_WEAK_PROBABILITY = 0.5

#: Log10-selectivity of a weak edge: N(mu, sigma), clamped below 0.
BIMODAL_WEAK_MU = -0.05
BIMODAL_WEAK_SIGMA = 0.05

#: Shape of the heavy-tail exponent distribution.  alpha = 1.2 gives an
#: infinite-variance tail; the cap keeps 10**x finite in the estimator's
#: pre-log arithmetic.
HEAVY_TAIL_ALPHA = 1.2
HEAVY_TAIL_BASE = 1.0
HEAVY_TAIL_SCALE = 2.0
HEAVY_TAIL_MAX_EXPONENT = 12.0

#: Selectivity floor shared with the uniform generator.
MIN_SELECTIVITY = 1e-12


def _solved_selectivities(
    graph: JoinGraph,
    exponents: list[float],
    rng: random.Random,
) -> tuple[dict[tuple[int, int], float], float]:
    """Back-solve per-edge selectivities toward a drawn result exponent.

    Same calibration as the uniform generator: draw the target final
    exponent ``Y ~ N(RESULT_MU, RESULT_SIGMA)``, spread the required total
    log-selectivity evenly with per-edge noise.  Draw order: target first,
    then one noise draw per edge in sorted edge order.
    """
    selectivity: dict[tuple[int, int], float] = {}
    target_y = rng.gauss(RESULT_MU, RESULT_SIGMA)
    edge_count = graph.edge_count()
    if edge_count:
        total_log_sel = target_y - sum(exponents)
        per_edge = total_log_sel / edge_count
        for e in graph.edges:
            log_sel = per_edge + rng.gauss(0.0, EDGE_NOISE_SIGMA)
            sel = min(MAX_SELECTIVITY, 10.0**log_sel)
            selectivity[(e.u, e.v)] = max(sel, MIN_SELECTIVITY)
    return selectivity, target_y


def _bimodal_selectivity(
    graph: JoinGraph,
    exponents: list[float],
    rng: random.Random,
) -> tuple[dict[tuple[int, int], float], float]:
    """Split edges into weak/strong modes around the back-solved budget.

    Draw order: target exponent, then per edge (sorted order) one mode
    coin and one weak-mode noise draw, then one noise draw per strong
    edge.  Weak edges take their selectivity from a near-1 Gaussian; the
    remaining log-selectivity budget is split across the strong edges, so
    the expected final cardinality still tracks the drawn target.
    """
    target_y = rng.gauss(RESULT_MU, RESULT_SIGMA)
    edges = list(graph.edges)
    if not edges:
        return {}, target_y
    total_log_sel = target_y - sum(exponents)
    weak_log: dict[tuple[int, int], float] = {}
    for e in edges:
        is_weak = rng.random() < BIMODAL_WEAK_PROBABILITY
        noise = rng.gauss(BIMODAL_WEAK_MU, BIMODAL_WEAK_SIGMA)
        if is_weak:
            weak_log[(e.u, e.v)] = min(0.0, noise)
    # Ensure at least one strong edge carries the budget when the target
    # demands more reduction than near-1 selectivities can provide.
    strong = [(e.u, e.v) for e in edges if (e.u, e.v) not in weak_log]
    if not strong and total_log_sel < sum(weak_log.values()):
        first = (edges[0].u, edges[0].v)
        del weak_log[first]
        strong = [first]
    selectivity: dict[tuple[int, int], float] = {}
    for key, log_sel in weak_log.items():
        selectivity[key] = max(min(MAX_SELECTIVITY, 10.0**log_sel), MIN_SELECTIVITY)
    if strong:
        remaining = total_log_sel - sum(weak_log.values())
        per_strong = remaining / len(strong)
        for key in strong:
            log_sel = per_strong + rng.gauss(0.0, EDGE_NOISE_SIGMA)
            selectivity[key] = max(
                min(MAX_SELECTIVITY, 10.0**log_sel), MIN_SELECTIVITY
            )
    return selectivity, target_y


def _heavy_tail_exponents(n: int, rng: random.Random) -> list[float]:
    """Shifted-Pareto cardinality exponents: many small, a few enormous."""
    exponents = []
    for _ in range(n):
        draw = HEAVY_TAIL_BASE + HEAVY_TAIL_SCALE * (
            rng.paretovariate(HEAVY_TAIL_ALPHA) - 1.0
        )
        exponents.append(min(HEAVY_TAIL_MAX_EXPONENT, max(0.0, draw)))
    return exponents


def skewed_workload(
    graph: JoinGraph,
    profile: str = "uniform",
    rng: random.Random | int | None = None,
) -> WeightedWorkload:
    """Generate a weighted workload for ``graph`` under ``profile``.

    ``profile`` is one of :data:`PROFILES`; ``"uniform"`` reproduces
    :func:`~repro.workloads.weights.generate_weights` exactly (same draws
    from the same rng state).
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; use one of {PROFILES}")
    if profile == "uniform":
        return generate_weights(graph, rng)
    rng = coerce_rng(rng)
    if profile == "heavy-tail-cardinality":
        exponents = _heavy_tail_exponents(graph.n, rng)
        selectivity, target_y = _solved_selectivities(graph, exponents, rng)
    else:  # bimodal-selectivity
        exponents = [
            max(0.0, rng.gauss(CARDINALITY_MU, CARDINALITY_SIGMA))
            for _ in range(graph.n)
        ]
        selectivity, target_y = _bimodal_selectivity(graph, exponents, rng)
    relations = [Relation(f"R{i}", 10.0**x) for i, x in enumerate(exponents)]
    query = Query(graph, relations, selectivity)
    return WeightedWorkload(
        query=query,
        cardinality_exponents=tuple(exponents),
        result_exponent_target=target_y,
    )


def skewed_query(
    graph: JoinGraph,
    profile: str = "uniform",
    rng: random.Random | int | None = None,
) -> Query:
    """Convenience wrapper returning only the query."""
    return skewed_workload(graph, profile, rng).query
