"""Random connected join graphs with a tunable cyclicity factor.

Section 3.3.3 of the paper: "These random graphs are generated
incrementally with different values for the factor C, which controls the
degree of cyclicity — with probability C a generated edge connects two
existing vertices, while with probability 1 - C it connects a new vertex to
the graph."

With ``C = 0`` the generator produces uniformly attached random trees
(acyclic queries); larger ``C`` yields denser, more cyclic graphs with an
expected ``(n - 1) / (1 - C)`` edges by the time the n-th vertex appears.
"""

from __future__ import annotations

import random

from repro.core.joingraph import JoinGraph
from repro.workloads.seeding import coerce_rng

__all__ = ["random_connected_graph"]


def random_connected_graph(
    n: int,
    cyclicity: float,
    rng: random.Random | int | None = None,
) -> JoinGraph:
    """Generate a random connected join graph on ``n`` vertices.

    Parameters
    ----------
    n:
        Number of relations; must be positive.
    cyclicity:
        The factor ``C`` in ``[0, 1)``: probability that each generated edge
        connects two existing vertices rather than attaching a new one.
    rng:
        A ``random.Random``, an int seed, or None for the deterministic
        default seed (:data:`repro.workloads.seeding.DEFAULT_SEED`).

    The graph is grown one edge at a time starting from a single vertex.
    Each step flips a coin: with probability ``1 - C`` a new vertex is
    attached to a uniformly random existing vertex, and with probability
    ``C`` an edge is added between two distinct existing vertices chosen
    uniformly (resampled on duplicates).  Generation stops once all ``n``
    vertices have been attached, so the result is always connected.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if not 0.0 <= cyclicity < 1.0:
        raise ValueError(f"cyclicity must be in [0, 1), got {cyclicity}")
    rng = coerce_rng(rng)

    if n == 1:
        return JoinGraph(1, [])

    edges: set[tuple[int, int]] = set()
    attached = 1  # vertex 0 seeds the graph
    while attached < n:
        capacity = attached * (attached - 1) // 2  # possible edges so far
        add_internal = attached >= 2 and len(edges) < capacity and rng.random() < cyclicity
        if add_internal:
            u = rng.randrange(attached)
            v = rng.randrange(attached)
            while v == u:
                v = rng.randrange(attached)
            edge = (u, v) if u < v else (v, u)
            if edge in edges:
                continue  # resample; the capacity check guarantees progress
            edges.add(edge)
        else:
            u = rng.randrange(attached)
            edges.add((u, attached))
            attached += 1
    return JoinGraph(n, sorted(edges))
