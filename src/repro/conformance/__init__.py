"""Machine-checked conformance to the paper's guarantees.

The reproduction's correctness story rests on theorems, not just tests:
partitioning strategies must emit *exactly* the join operators of their
plan space (Section 3.1), every cut of the minimal-cut strategies must be
minimal per Definition 3.1, the enumeration counts must match the
Ono–Lohman closed forms (Table 2), branch-and-bound and bounded memos must
never lose the optimum (Sections 4.2/5.1), and the whole feature matrix —
serial, parallel workers, eviction policies, bounding modes — must agree
on one optimal plan per plan space.  The anytime/ranking tier adds two
more: ranked enumeration must extend the champion search bit-for-bit
(``topk-soundness``) and every budgeted search must return a valid plan
with a sound optimality-gap bound (``anytime-gap``).

This package encodes each guarantee as an executable *invariant*
(:mod:`repro.conformance.invariants` over the brute-force ground truth of
:mod:`repro.conformance.oracles`), drives them as a differential fuzzer
with automatic shrinking to minimal reproducer graphs
(:mod:`repro.conformance.fuzz`), and turns the Section 3 "linear time
between successive joins" claim into a monitored CI gate
(:mod:`repro.conformance.optimality`).  The CLI front end is
``repro verify`` (see :mod:`repro.cli`).
"""

from repro.conformance.invariants import (
    INVARIANTS,
    Violation,
    check_anytime_gap,
    check_bnb_soundness,
    check_ccp_closed_forms,
    check_cut_minimality,
    check_memo_soundness,
    check_partition_completeness,
    check_plan_agreement,
    check_topk_soundness,
    run_invariants,
    standard_battery,
)
from repro.conformance.fuzz import (
    FuzzCase,
    FuzzReport,
    fuzz,
    load_corpus,
    replay_corpus,
    save_corpus_entry,
    shrink,
)
from repro.conformance.optimality import (
    OptimalityReport,
    fit_loglog_slope,
    measure_optimality,
)
from repro.conformance.oracles import (
    brute_force_articulation,
    connected_subsets,
    is_minimal_cut,
    space_partition_pairs,
)

__all__ = [
    "INVARIANTS",
    "Violation",
    "check_anytime_gap",
    "check_bnb_soundness",
    "check_ccp_closed_forms",
    "check_cut_minimality",
    "check_memo_soundness",
    "check_partition_completeness",
    "check_plan_agreement",
    "check_topk_soundness",
    "run_invariants",
    "standard_battery",
    "FuzzCase",
    "FuzzReport",
    "fuzz",
    "load_corpus",
    "replay_corpus",
    "save_corpus_entry",
    "shrink",
    "OptimalityReport",
    "fit_loglog_slope",
    "measure_optimality",
    "brute_force_articulation",
    "connected_subsets",
    "is_minimal_cut",
    "space_partition_pairs",
]
