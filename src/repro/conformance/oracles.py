"""Brute-force ground truth the invariant checkers compare against.

Everything here is exponential-time and proudly so: the point is to be
*obviously* correct, so the clever linear-delay algorithms can be checked
against first principles on small graphs.  The oracles restate the
paper's definitions directly:

* :func:`space_partition_pairs` — the ordered partitions a plan space
  admits for one expression (Section 3.1's contract for ``Partition``);
* :func:`is_minimal_cut` — Definition 3.1, checked literally: the
  crossing edge set is a cut no proper subset of which is a cut;
* :func:`brute_force_articulation` — a vertex is an articulation vertex
  iff deleting it disconnects the (connected) graph;
* :func:`connected_subsets` — the csg enumeration underlying the
  Ono–Lohman counts.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.bitset import bit, iter_bits, iter_subsets
from repro.core.joingraph import Edge, JoinGraph
from repro.spaces import PlanSpace

__all__ = [
    "brute_force_articulation",
    "connected_subsets",
    "crossing_edges",
    "is_minimal_cut",
    "space_partition_pairs",
]


def connected_subsets(graph: JoinGraph, min_size: int = 1) -> Iterator[int]:
    """Yield every vertex subset of size >= ``min_size`` inducing a
    connected subgraph, in increasing numeric order."""
    for subset in iter_subsets(graph.all_vertices):
        if subset.bit_count() >= min_size and graph.is_connected(subset):
            yield subset


def space_partition_pairs(
    graph: JoinGraph, subset: int, space: PlanSpace
) -> set[tuple[int, int]]:
    """The exact set of ordered partitions ``space`` admits for ``subset``.

    This is the ground-truth contract of Algorithm 1's ``Partition``
    function: ordered pairs ``(left, right)`` of non-empty disjoint masks
    whose union is ``subset``; left-deep spaces additionally require
    ``right`` to be a single relation, CP-free spaces require both sides
    to induce connected subgraphs (which, for a connected ``subset``,
    forces at least one crossing join predicate).
    """
    cp_free = not space.allows_cartesian_products
    pairs: set[tuple[int, int]] = set()
    if subset & (subset - 1) == 0:
        return pairs
    if space.is_left_deep:
        for v in iter_bits(subset):
            right = bit(v)
            left = subset ^ right
            if cp_free and not graph.is_connected(left):
                continue
            pairs.add((left, right))
        return pairs
    for left in iter_subsets(subset, proper=True):
        right = subset ^ left
        if cp_free and not (
            graph.is_connected(left) and graph.is_connected(right)
        ):
            continue
        pairs.add((left, right))
    return pairs


def crossing_edges(graph: JoinGraph, left: int, right: int) -> list[Edge]:
    """The join predicates with one endpoint in ``left`` and one in ``right``."""
    return [
        e
        for e in graph.edges
        if (bit(e.u) & left and bit(e.v) & right)
        or (bit(e.u) & right and bit(e.v) & left)
    ]


def _connected_without_edges(
    graph: JoinGraph, subset: int, removed: set[Edge]
) -> bool:
    """Connectivity of ``G|_subset`` after deleting the ``removed`` edges."""
    if subset == 0:
        return False
    adjacency: dict[int, int] = {v: 0 for v in iter_bits(subset)}
    for e in graph.edges_within(subset):
        if e in removed:
            continue
        adjacency[e.u] |= bit(e.v)
        adjacency[e.v] |= bit(e.u)
    start = subset & -subset
    reached = start
    frontier = start
    while frontier:
        expansion = 0
        for v in iter_bits(frontier):
            expansion |= adjacency[v]
        frontier = expansion & subset & ~reached
        reached |= frontier
    return reached == subset


def is_minimal_cut(graph: JoinGraph, subset: int, left: int, right: int) -> bool:
    """Definition 3.1, checked from first principles.

    ``(left, right)`` partitions connected ``G|_subset``; the induced edge
    cut is the set ``C`` of predicates crossing the partition.  ``C`` is a
    *minimal* cut iff deleting it disconnects ``G|_subset`` while deleting
    any proper subset ``C \\ {e}`` does not.  (Equivalently — the form the
    strategies exploit — both sides must induce connected subgraphs;
    testing the definition directly keeps the oracle independent of that
    equivalence.)
    """
    if left == 0 or right == 0 or left & right or (left | right) != subset:
        return False
    cut = crossing_edges(graph, left, right)
    if not cut:
        return False
    full = set(cut)
    if _connected_without_edges(graph, subset, full):
        return False  # not even a cut
    return all(
        _connected_without_edges(graph, subset, full - {edge}) for edge in cut
    )


def brute_force_articulation(graph: JoinGraph, subset: int | None = None) -> int:
    """Articulation vertices of connected ``G|_subset`` as a mask.

    A vertex is an articulation vertex iff removing it leaves the rest of
    the subgraph disconnected — tested literally, one deletion at a time,
    as the oracle for the Hopcroft–Tarjan implementation in
    :mod:`repro.core.biconnection`.
    """
    if subset is None:
        subset = graph.all_vertices
    mask = 0
    if subset.bit_count() <= 2:
        return 0
    for v in iter_bits(subset):
        rest = subset & ~bit(v)
        if not graph.is_connected(rest):
            mask |= bit(v)
    return mask
