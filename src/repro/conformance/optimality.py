"""The Section 3 optimality gate: linear time between successive joins.

The paper's headline guarantee is that the optimal top-down algorithms
spend at most *linear* time (in the number of relations) between emitting
successive join operators.  :mod:`repro.obs` already records the
wall-clock gap between joins as the ``time_between_joins_us`` histogram;
this module sweeps that histogram across query sizes per topology, fits
the growth rate of the p95 gap on a log-log scale, and turns the fit into
a CI gate: a super-linear slope for an optimal strategy means the
guarantee regressed.

Wall-clock gaps are noisy on shared CI runners, so each cell also reports
a *deterministic* companion series — operation-counter work per costed
join (partitions emitted, connectivity probes, biconnection-tree work,
usability tests) — whose fitted slope gates at a tighter threshold.  Both
series and both fits land in ``BENCH_optimality.json``.

Run as a module for the CI gate::

    python -m repro.conformance.optimality --check
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.analysis.metrics import Metrics
from repro.experiments.common import graph_maker, seed_for
from repro.obs.registry import TIME_BETWEEN_JOINS, MetricsRegistry
from repro.registry import make_optimizer, parse_name
from repro.workloads.weights import weighted_query

__all__ = [
    "DEFAULT_ALGORITHMS",
    "OptimalityReport",
    "fit_loglog_slope",
    "main",
    "measure_optimality",
    "sweep_sizes",
]

#: The optimal strategies the gate protects (Section 3's claim is theirs).
DEFAULT_ALGORITHMS = ("TBNmc", "TLNmc")

#: Wall-clock p95-gap growth above this log-log slope fails the gate.
#: Linear growth fits at ~1; quadratic at ~2.  The margin absorbs timer
#: granularity and scheduler noise on shared runners.
WALL_SLOPE_THRESHOLD = 1.6

#: Deterministic work-per-join growth above this slope fails the gate.
#: The paper's bound is linear work between joins, i.e. slope <= 1.
WORK_SLOPE_THRESHOLD = 1.3

#: Histograms this small make a meaningless percentile; the cell is
#: reported but excluded from the fit.
MIN_GAP_SAMPLES = 8


def sweep_sizes(topology: str, scale: str = "small") -> tuple[int, ...]:
    """Query sizes per topology: dense shapes stop earlier."""
    if topology == "clique":
        return (5, 6, 7, 8) if scale == "small" else (5, 6, 7, 8, 9, 10)
    if scale == "small":
        return (6, 8, 10, 12)
    return (6, 8, 10, 12, 14, 16)


def fit_loglog_slope(sizes: Iterable[float], values: Iterable[float]) -> float:
    """Least-squares slope of ``log(value)`` against ``log(size)``.

    Non-positive values are clamped to a tiny epsilon (a zero gap is
    below timer resolution, not actual zero work).  Returns NaN when
    fewer than two usable points remain.
    """
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(v, 1e-9)) for v in values]
    if len(xs) != len(ys):
        raise ValueError("sizes and values must have equal length")
    if len(xs) < 2:
        return math.nan
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return math.nan
    return sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / denominator


def _deterministic_work(metrics: Metrics, n: int) -> float:
    """Operation-counter proxy for the work done between joins.

    Counts the per-partition operations of the Section 3 analysis: cuts
    emitted, connectivity probes, usability tests, and biconnection-tree
    builds (each worth Theta(|E|) <= Theta(n^2), charged at n).
    """
    return (
        metrics.partitions_emitted
        + metrics.connectivity_tests
        + metrics.usability_tests
        + metrics.bcc_trees_built * n
    )


@dataclass
class OptimalityReport:
    """Sweep rows, per-series growth fits, and the gate verdict."""

    scale: str
    repeats: int
    rows: list[dict[str, Any]] = field(default_factory=list)
    fits: list[dict[str, Any]] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        return {
            "scale": self.scale,
            "repeats": self.repeats,
            "wall_slope_threshold": WALL_SLOPE_THRESHOLD,
            "work_slope_threshold": WORK_SLOPE_THRESHOLD,
            "rows": self.rows,
            "fits": self.fits,
            "failures": self.failures,
            "ok": self.ok,
        }


def _measure_cell(
    algorithm: str, topology: str, n: int, repeats: int
) -> dict[str, Any]:
    """One sweep cell: merged gap histogram over ``repeats`` runs."""
    make = graph_maker(topology)
    merged = MetricsRegistry()
    metrics = Metrics()
    for repeat in range(repeats):
        seed = seed_for(n, repeat)
        query = weighted_query(make(n, seed), seed)
        registry = MetricsRegistry()
        make_optimizer(
            algorithm, query, metrics=metrics, registry=registry
        ).optimize()
        merged.merge(registry)
    gaps = merged.histogram(TIME_BETWEEN_JOINS)
    joins = max(1, metrics.join_operators_costed)
    return {
        "algorithm": algorithm,
        "topology": topology,
        "n": n,
        "joins_costed": metrics.join_operators_costed,
        "gap_count": gaps.count,
        "gap_p50_us": None if not gaps.count else gaps.percentile(50),
        "gap_p95_us": None if not gaps.count else gaps.percentile(95),
        "gap_mean_us": None if not gaps.count else gaps.mean,
        "work_per_join": _deterministic_work(metrics, n) / joins,
    }


def measure_optimality(
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    topologies: tuple[str, ...] = ("chain", "star", "cycle", "clique"),
    scale: str = "small",
    repeats: int = 3,
    gate_algorithms: tuple[str, ...] | None = None,
) -> OptimalityReport:
    """Sweep the gap histogram and fit per-(algorithm, topology) growth.

    ``gate_algorithms`` limits which algorithms' fits can fail the gate
    (default: every *optimal* algorithm in ``algorithms``; suboptimal
    baselines can be swept for contrast without gating).
    """
    if gate_algorithms is None:
        gate_algorithms = tuple(
            name
            for name in algorithms
            if parse_name(name).is_optimal_enumeration
        )
    report = OptimalityReport(scale=scale, repeats=repeats)
    for algorithm in algorithms:
        for topology in topologies:
            sizes = sweep_sizes(topology, scale)
            cells = [
                _measure_cell(algorithm, topology, n, repeats) for n in sizes
            ]
            report.rows.extend(cells)
            fitted = [
                cell
                for cell in cells
                if cell["gap_count"] >= MIN_GAP_SAMPLES
                and cell["gap_p95_us"] is not None
            ]
            wall_slope = fit_loglog_slope(
                [cell["n"] for cell in fitted],
                [cell["gap_p95_us"] for cell in fitted],
            )
            work_slope = fit_loglog_slope(
                [cell["n"] for cell in cells],
                [cell["work_per_join"] for cell in cells],
            )
            gated = algorithm in gate_algorithms
            fit = {
                "algorithm": algorithm,
                "topology": topology,
                "sizes": list(sizes),
                "gap_p95_slope": None if math.isnan(wall_slope) else wall_slope,
                "work_per_join_slope": (
                    None if math.isnan(work_slope) else work_slope
                ),
                "gated": gated,
            }
            report.fits.append(fit)
            if not gated:
                continue
            if not math.isnan(wall_slope) and wall_slope > WALL_SLOPE_THRESHOLD:
                report.failures.append(
                    f"{algorithm}/{topology}: p95 inter-join gap grows with "
                    f"slope {wall_slope:.2f} > {WALL_SLOPE_THRESHOLD} "
                    f"(super-linear drift)"
                )
            if not math.isnan(work_slope) and work_slope > WORK_SLOPE_THRESHOLD:
                report.failures.append(
                    f"{algorithm}/{topology}: work per join grows with "
                    f"slope {work_slope:.2f} > {WORK_SLOPE_THRESHOLD} "
                    f"(super-linear drift)"
                )
    return report


def run_optimality_experiment(scale: str = "small"):
    """Experiment-harness driver (``repro experiment optimality``)."""
    from repro.experiments.common import ExperimentResult

    report = measure_optimality(scale=scale)
    result = ExperimentResult(
        experiment_id="optimality",
        title="§3 optimality: p95 time between successive joins vs n",
        columns=[
            "algorithm",
            "topology",
            "n",
            "joins_costed",
            "gap_p95_us",
            "work_per_join",
        ],
    )
    for row in report.rows:
        result.add_row(**{c: row[c] for c in result.columns})
    for fit in report.fits:
        result.notes.append(
            f"{fit['algorithm']}/{fit['topology']}: p95 slope "
            f"{fit['gap_p95_slope']}, work slope {fit['work_per_join_slope']}"
            + (" [gated]" if fit["gated"] else "")
        )
    for failure in report.failures:
        result.notes.append(f"GATE FAILURE: {failure}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="§3 optimality gate: p95 time-between-joins growth"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when an optimal strategy drifts super-linear",
    )
    parser.add_argument(
        "--out",
        default="BENCH_optimality.json",
        metavar="PATH",
        help="where to write the machine-readable report",
    )
    parser.add_argument("--scale", default="small", choices=["small", "paper"])
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs merged per sweep cell (more = steadier percentiles)",
    )
    args = parser.parse_args(argv)
    report = measure_optimality(scale=args.scale, repeats=args.repeats)
    payload = report.to_dict()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for fit in report.fits:
        print(
            f"{fit['algorithm']:8s} {fit['topology']:7s} "
            f"p95 slope {fit['gap_p95_slope']} "
            f"work slope {fit['work_per_join_slope']}"
            + ("  [gated]" if fit["gated"] else "")
        )
    print(f"report -> {args.out}")
    if report.failures:
        for failure in report.failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1 if args.check else 0
    print("optimality gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
