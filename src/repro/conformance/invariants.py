"""Executable invariants encoding the paper's guarantees.

Each checker returns a list of :class:`Violation` records (empty means the
invariant holds) so the same functions serve three masters: the unit-test
suite, the differential fuzzer (:mod:`repro.conformance.fuzz`), and the
``repro verify`` CLI gate.  The invariants and their paper sources:

``partition-complete``
    Every partition strategy emits *exactly* the ordered pairs its plan
    space admits — no omissions, no duplicates, no strays (Section 3.1's
    ``Partition`` contract, vs. the exhaustive oracle).
``cut-minimal``
    Every pair emitted by the minimal-cut strategies is a genuinely
    minimal cut per Definition 3.1 (checked literally by edge-subset
    deletion in :func:`~repro.conformance.oracles.is_minimal_cut`).
``ccp-closed-form``
    Live ``logical_joins_enumerated`` counters of the optimal strategies
    match the Ono–Lohman closed forms for chain/star/cycle/clique, and
    the memoized-expression count matches the connected-subgraph (csg)
    closed form (Table 2; the same counts DPconv uses to characterize
    DPccp's search space).
``bnb-sound``
    Accumulated- and predicted-cost pruning (Algorithm 7 / Section 4.2)
    never lose the optimum vs. the unbounded search.
``memo-sound``
    Any memo configuration — eviction policy, capacity, cold tier, shared
    cross-query cache — yields the same optimal plan cost as the
    unbounded memo (Section 5.1: the memo is a cache, not a table of
    guaranteed reads).
``plan-agreement``
    Every configuration of the registry matrix (strategy x workers x memo
    policy x bounding) agrees, per plan space, on one optimal cost, and
    every returned plan validates structurally against its space.
``fastpath-parity``
    The batched fast path (:mod:`repro.fastpath`) returns plans that
    compare *equal* — same shape, same operators, bit-identical costs —
    to the scalar oracle's, on every available batch backend, for both
    exhaustive and branch-and-bound search.
``topk-soundness``
    Ranked enumeration (``optimize_topk``, ``docs/anytime.md``) is an
    extension, not a reinterpretation: rank 0 is *bit-identical* to the
    champion search's plan for every strategy, costs are monotone
    nondecreasing down the list, the plans are pairwise structurally
    distinct, each validates against its plan space, and the fast path
    ranks identically to the oracle.
``anytime-gap``
    Any budget yields a valid plan whose gap bound is sound:
    ``certified_floor <= true optimal cost <= plan cost``, with a
    completed search certifying gap exactly zero (``docs/anytime.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.analysis.counting import (
    count_connected_subgraphs,
    ono_lohman_connected_subgraphs,
    ono_lohman_join_operators,
)
from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.conformance.oracles import is_minimal_cut, space_partition_pairs
from repro.core.joingraph import JoinGraph
from repro.fastpath.detect import available_backends
from repro.partition import (
    MinCutEager,
    MinCutLazy,
    MinCutLeftDeep,
    MinCutOptimistic,
    NaiveBushyCP,
    NaiveBushyCPFree,
    NaiveLeftDeepCP,
    NaiveLeftDeepCPFree,
    PartitionStrategy,
)
from repro.plans.validate import PlanValidationError, validate_plan
from repro.registry import conformance_matrix, make_optimizer, parse_name
from repro.spaces import PlanSpace
from repro.workloads import chain, clique, cycle, star
from repro.workloads.weights import weighted_query

__all__ = [
    "INVARIANTS",
    "Violation",
    "check_anytime_gap",
    "check_bnb_soundness",
    "check_ccp_closed_forms",
    "check_cut_minimality",
    "check_fastpath_parity",
    "check_memo_soundness",
    "check_partition_completeness",
    "check_plan_agreement",
    "check_topk_soundness",
    "run_invariants",
    "standard_battery",
]

#: Plan costs may only differ across configurations by float summation order.
COST_REL_TOL = 1e-9

#: Topologies with committed closed forms (Ono & Lohman / Table 2).
CLOSED_FORM_TOPOLOGIES = ("chain", "star", "cycle", "clique")


@dataclass(frozen=True)
class Violation:
    """One invariant breach: what failed, on what input, and how."""

    invariant: str
    detail: str
    subject: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "subject": self.subject,
        }

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail} ({self.subject})"


def _graph_subject(graph: JoinGraph, **extra: Any) -> dict[str, Any]:
    subject = {"n": graph.n, "edges": [(e.u, e.v) for e in graph.edges]}
    subject.update(extra)
    return subject


def _partition_strategies() -> list[PartitionStrategy]:
    """Every Table 1 partition strategy, including the eager baseline."""
    return [
        MinCutLazy(),
        MinCutEager(),
        MinCutOptimistic(),
        MinCutLeftDeep(),
        NaiveBushyCPFree(),
        NaiveBushyCP(),
        NaiveLeftDeepCPFree(),
        NaiveLeftDeepCP(),
    ]


def _strategy_subsets(graph: JoinGraph, space: PlanSpace) -> Iterable[int]:
    """The expressions the enumerator may hand a strategy of ``space``.

    CP-free spaces only ever see connected subsets (the caller guarantees
    it); with-CP spaces see every subset of size >= 2.
    """
    from repro.core.bitset import iter_subsets

    cp_free = not space.allows_cartesian_products
    for subset in iter_subsets(graph.all_vertices):
        if subset.bit_count() < 2:
            continue
        if cp_free and not graph.is_connected(subset):
            continue
        yield subset


def check_partition_completeness(
    graph: JoinGraph,
    strategies: Iterable[PartitionStrategy] | None = None,
) -> list[Violation]:
    """Partition completeness and duplicate-freedom vs. the oracle.

    Exponential in ``graph.n`` — intended for n <= 8 or so.
    """
    violations: list[Violation] = []
    for strategy in strategies or _partition_strategies():
        label = type(strategy).__name__
        for subset in _strategy_subsets(graph, strategy.space):
            expected = space_partition_pairs(graph, subset, strategy.space)
            emitted = list(strategy.partitions(graph, subset, Metrics()))
            seen = set(emitted)
            if len(seen) != len(emitted):
                dupes = sorted(
                    pair for pair in seen if emitted.count(pair) > 1
                )
                violations.append(
                    Violation(
                        "partition-complete",
                        f"{label} emitted duplicate partitions of "
                        f"{subset:#x}: {dupes[:4]}",
                        _graph_subject(graph, strategy=label, subset=subset),
                    )
                )
            if seen != expected:
                missing = sorted(expected - seen)
                strays = sorted(seen - expected)
                violations.append(
                    Violation(
                        "partition-complete",
                        f"{label} partitions of {subset:#x} diverge from the "
                        f"oracle: missing {missing[:4]}, strays {strays[:4]}",
                        _graph_subject(
                            graph,
                            strategy=label,
                            subset=subset,
                            missing=len(missing),
                            strays=len(strays),
                        ),
                    )
                )
    return violations


def check_cut_minimality(
    graph: JoinGraph,
    strategies: Iterable[PartitionStrategy] | None = None,
) -> list[Violation]:
    """Definition 3.1 minimality of every emitted cut (MinCut* strategies)."""
    if strategies is None:
        strategies = [MinCutLazy(), MinCutEager(), MinCutOptimistic()]
    violations: list[Violation] = []
    for strategy in strategies:
        label = type(strategy).__name__
        for subset in _strategy_subsets(graph, strategy.space):
            for left, right in strategy.partitions(graph, subset, Metrics()):
                if not is_minimal_cut(graph, subset, left, right):
                    violations.append(
                        Violation(
                            "cut-minimal",
                            f"{label} emitted a non-minimal cut "
                            f"({left:#x}, {right:#x}) of {subset:#x}",
                            _graph_subject(
                                graph,
                                strategy=label,
                                subset=subset,
                                left=left,
                                right=right,
                            ),
                        )
                    )
    return violations


def check_ccp_closed_forms(
    topologies: Iterable[str] = CLOSED_FORM_TOPOLOGIES,
    max_n: int = 10,
    algorithms: tuple[str, ...] = ("TBNmc", "BBNccp"),
) -> list[Violation]:
    """Live enumeration counters vs. the Ono–Lohman closed forms.

    For each topology and size up to ``max_n``, each ``algorithm`` must
    enumerate exactly the closed-form number of (ordered) join operators,
    and the top-down memo must hold exactly the closed-form number of
    connected subgraphs afterwards.
    """
    makers = {"chain": chain, "star": star, "cycle": cycle, "clique": clique}
    violations: list[Violation] = []
    for topology in topologies:
        make = makers[topology]
        start = 3 if topology == "cycle" else 2
        for n in range(start, max_n + 1):
            graph = make(n)
            query = weighted_query(graph, n)
            expected_ccp = ono_lohman_join_operators(
                topology, n, PlanSpace.bushy_cp_free()
            )
            expected_csg = ono_lohman_connected_subgraphs(topology, n)
            if n <= 8 and count_connected_subgraphs(graph) != expected_csg:
                violations.append(
                    Violation(
                        "ccp-closed-form",
                        f"csg closed form for {topology} n={n} disagrees "
                        f"with brute force: expected {expected_csg}, "
                        f"counted {count_connected_subgraphs(graph)}",
                        {"topology": topology, "n": n},
                    )
                )
            for algorithm in algorithms:
                metrics = Metrics()
                optimizer = make_optimizer(algorithm, query, metrics=metrics)
                optimizer.optimize()
                if metrics.logical_joins_enumerated != expected_ccp:
                    violations.append(
                        Violation(
                            "ccp-closed-form",
                            f"{algorithm} on {topology} n={n} enumerated "
                            f"{metrics.logical_joins_enumerated} join "
                            f"operators, closed form says {expected_ccp}",
                            {
                                "topology": topology,
                                "n": n,
                                "algorithm": algorithm,
                                "counted": metrics.logical_joins_enumerated,
                                "expected": expected_ccp,
                            },
                        )
                    )
                if (
                    parse_name(algorithm).top_down
                    and metrics.peak_memo_cells != expected_csg
                ):
                    violations.append(
                        Violation(
                            "ccp-closed-form",
                            f"{algorithm} on {topology} n={n} memoized "
                            f"{metrics.peak_memo_cells} expressions, csg "
                            f"closed form says {expected_csg}",
                            {
                                "topology": topology,
                                "n": n,
                                "algorithm": algorithm,
                                "counted": metrics.peak_memo_cells,
                                "expected": expected_csg,
                            },
                        )
                    )
    return violations


def _optimal_cost(name: str, query: Query) -> float:
    return make_optimizer(name, query).optimize().cost


def _costs_differ(a: float, b: float) -> bool:
    return not math.isclose(a, b, rel_tol=COST_REL_TOL)


def check_bnb_soundness(
    query: Query,
    bases: tuple[str, ...] = ("TBNmc", "TLNmc", "TBCnaive"),
) -> list[Violation]:
    """Branch-and-bound pruning never loses the optimum (Alg. 7 / §4.2)."""
    violations: list[Violation] = []
    for base in bases:
        reference = _optimal_cost(base, query)
        for suffix in ("A", "P", "AP"):
            bounded = _optimal_cost(base + suffix, query)
            if _costs_differ(reference, bounded):
                violations.append(
                    Violation(
                        "bnb-sound",
                        f"{base}{suffix} found cost {bounded!r}, exhaustive "
                        f"{base} found {reference!r} on {query.describe()}",
                        _graph_subject(
                            query.graph, algorithm=base + suffix,
                            bounded=bounded, reference=reference,
                        ),
                    )
                )
    return violations


def check_memo_soundness(
    query: Query,
    base: str = "TBNmc",
    capacity: int | None = None,
) -> list[Violation]:
    """Bounded/tiered/shared memos yield the unbounded optimum (§5.1)."""
    from repro.memo import GlobalPlanCache

    reference = _optimal_cost(base, query)
    if capacity is None:
        # Half the unbounded cell count: enough pressure to force
        # evictions on every topology without degenerating to capacity 0.
        metrics = Metrics()
        make_optimizer(base, query, metrics=metrics).optimize()
        capacity = max(1, metrics.peak_memo_cells // 2)
    violations: list[Violation] = []
    configurations = [
        f"{base}%lru:{capacity}",
        f"{base}%smallest:{capacity}",
        f"{base}%cost:{capacity}",
        f"{base}%profile:{capacity}",
        f"{base}%cost:{capacity}:{capacity}",
    ]
    for name in configurations:
        bounded = _optimal_cost(name, query)
        if _costs_differ(reference, bounded):
            violations.append(
                Violation(
                    "memo-sound",
                    f"{name} found cost {bounded!r}, unbounded {base} found "
                    f"{reference!r} on {query.describe()}",
                    _graph_subject(
                        query.graph, algorithm=name,
                        bounded=bounded, reference=reference,
                    ),
                )
            )
    shared = GlobalPlanCache()
    for round_label in ("cold", "warm"):
        cost = (
            make_optimizer(base, query, global_cache=shared).optimize().cost
        )
        if _costs_differ(reference, cost):
            violations.append(
                Violation(
                    "memo-sound",
                    f"{base} with a {round_label} shared cache found cost "
                    f"{cost!r}, expected {reference!r} on {query.describe()}",
                    _graph_subject(query.graph, round=round_label, cost=cost),
                )
            )
    return violations


#: (oracle, fast) registry-name pairs the parity invariant cross-checks:
#: plain exhaustive, combined branch-and-bound, and left-deep search.
FASTPATH_PARITY_PAIRS = (
    ("TBNmc", "TBNmc!fast"),
    ("TBNmcAP", "TBNmcAP!fast"),
    ("TLNmc", "TLNmc!fast"),
)


def check_fastpath_parity(
    query: Query,
    pairs: tuple[tuple[str, str], ...] = FASTPATH_PARITY_PAIRS,
) -> list[Violation]:
    """The fast path is plan-for-plan identical to the scalar oracle.

    For each (oracle, fast) pair the fast configuration must return a
    plan comparing *equal* to the oracle's — same shape, same operators,
    bit-identical costs — on every batch backend this environment can
    build.  ``fastpath="off"`` pins the oracle side even when
    ``REPRO_FASTPATH=on`` is ambient; under ``REPRO_FASTPATH=off`` both
    sides run the oracle and the check degenerates to a no-op, which is
    exactly what the escape hatch promises.
    """
    violations: list[Violation] = []
    for oracle_name, fast_name in pairs:
        oracle_plan = make_optimizer(
            oracle_name, query, fastpath="off"
        ).optimize()
        for backend in available_backends():
            fast_plan = make_optimizer(
                fast_name, query, fastpath_backend=backend
            ).optimize()
            if fast_plan != oracle_plan:
                cost_note = (
                    "costs differ"
                    if _costs_differ(fast_plan.cost, oracle_plan.cost)
                    else "costs agree but shapes/operators differ"
                )
                violations.append(
                    Violation(
                        "fastpath-parity",
                        f"{fast_name} ({backend} backend) returned a plan "
                        f"!= oracle {oracle_name} on {query.describe()}: "
                        f"{cost_note} (fast {fast_plan.cost!r}, oracle "
                        f"{oracle_plan.cost!r})",
                        _graph_subject(
                            query.graph,
                            algorithm=fast_name,
                            backend=backend,
                            fast_cost=fast_plan.cost,
                            oracle_cost=oracle_plan.cost,
                        ),
                    )
                )
    return violations


def check_plan_agreement(
    query: Query,
    matrix: dict[str, tuple[str, ...]] | None = None,
) -> list[Violation]:
    """The full registry matrix agrees on one optimum per plan space."""
    if matrix is None:
        matrix = conformance_matrix()
    violations: list[Violation] = []
    for group, names in matrix.items():
        reference_name: str | None = None
        reference_cost: float | None = None
        for name in names:
            try:
                plan = make_optimizer(name, query).optimize()
            except Exception as exc:  # a config crashing is itself a violation
                violations.append(
                    Violation(
                        "plan-agreement",
                        f"{name} raised {type(exc).__name__}: {exc} "
                        f"on {query.describe()}",
                        _graph_subject(query.graph, algorithm=name, group=group),
                    )
                )
                continue
            spec = parse_name(name)
            try:
                validate_plan(plan, query, spec.space)
            except PlanValidationError as exc:
                violations.append(
                    Violation(
                        "plan-agreement",
                        f"{name} returned an invalid plan: {exc}",
                        _graph_subject(query.graph, algorithm=name, group=group),
                    )
                )
                continue
            if reference_cost is None:
                reference_name, reference_cost = name, plan.cost
            elif _costs_differ(reference_cost, plan.cost):
                violations.append(
                    Violation(
                        "plan-agreement",
                        f"{name} found cost {plan.cost!r} but {reference_name} "
                        f"found {reference_cost!r} on {query.describe()}",
                        _graph_subject(
                            query.graph,
                            algorithm=name,
                            group=group,
                            cost=plan.cost,
                            reference=reference_cost,
                        ),
                    )
                )
    return violations


#: Strategies the ranking/anytime invariants sweep: plain, accumulated,
#: combined bounding, the batched fast path, and left-deep search.
RANKED_STRATEGIES = ("TBNmc", "TBNmcA", "TBNmcAP", "TBNmcAP!fast", "TLNmcA")

#: (oracle, fast) pairs whose ranked lists must agree wire-for-wire.
TOPK_PARITY_PAIRS = (
    ("TBNmc", "TBNmc!fast"),
    ("TBNmcAP", "TBNmcAP!fast"),
)

#: Node budgets the gap invariant probes: zero (pure seed), a single
#: node, a prefix, and effectively unlimited (must complete at gap 0).
ANYTIME_PROBE_BUDGETS = (0, 1, 9, 10**9)


def check_topk_soundness(
    query: Query,
    strategies: tuple[str, ...] = RANKED_STRATEGIES,
    k: int = 3,
) -> list[Violation]:
    """Ranked enumeration extends the champion search without changing it.

    Per strategy: ``optimize_topk(1)`` and ``optimize_topk(k)`` rank 0
    are bit-identical (``to_wire``) to the plain champion, the ranked
    costs are monotone nondecreasing, the plans are pairwise distinct,
    and each validates against the strategy's plan space.  The fast path
    must produce wire-identical ranked lists to the oracle.
    """
    violations: list[Violation] = []
    for name in strategies:
        champion = make_optimizer(name, query).optimize()
        space = parse_name(name).space
        for depth in (1, k):
            optimizer = make_optimizer(name, query)
            ranked = optimizer.optimize_topk(depth)
            if not ranked or ranked[0].to_wire() != champion.to_wire():
                violations.append(
                    Violation(
                        "topk-soundness",
                        f"{name} optimize_topk({depth}) rank 0 is not "
                        f"bit-identical to the champion plan on "
                        f"{query.describe()}",
                        _graph_subject(query.graph, algorithm=name, k=depth),
                    )
                )
                continue
            costs = [plan.cost for plan in ranked]
            if any(a > b for a, b in zip(costs, costs[1:])):
                violations.append(
                    Violation(
                        "topk-soundness",
                        f"{name} optimize_topk({depth}) costs are not "
                        f"monotone nondecreasing: {costs} on "
                        f"{query.describe()}",
                        _graph_subject(query.graph, algorithm=name, k=depth),
                    )
                )
            wires = [plan.to_wire() for plan in ranked]
            if len(set(wires)) != len(wires):
                violations.append(
                    Violation(
                        "topk-soundness",
                        f"{name} optimize_topk({depth}) returned structurally "
                        f"duplicate plans on {query.describe()}",
                        _graph_subject(query.graph, algorithm=name, k=depth),
                    )
                )
            for rank, plan in enumerate(ranked):
                try:
                    validate_plan(plan, query, space)
                except PlanValidationError as exc:
                    violations.append(
                        Violation(
                            "topk-soundness",
                            f"{name} rank-{rank} plan is invalid for its "
                            f"space: {exc}",
                            _graph_subject(
                                query.graph, algorithm=name, rank=rank
                            ),
                        )
                    )
    for oracle_name, fast_name in TOPK_PARITY_PAIRS:
        oracle_ranked = make_optimizer(
            oracle_name, query, fastpath="off"
        ).optimize_topk(k)
        for backend in available_backends():
            fast_ranked = make_optimizer(
                fast_name, query, fastpath_backend=backend
            ).optimize_topk(k)
            if [p.to_wire() for p in fast_ranked] != [
                p.to_wire() for p in oracle_ranked
            ]:
                violations.append(
                    Violation(
                        "topk-soundness",
                        f"{fast_name} ({backend} backend) ranked list "
                        f"diverges from oracle {oracle_name} on "
                        f"{query.describe()}",
                        _graph_subject(
                            query.graph, algorithm=fast_name, backend=backend
                        ),
                    )
                )
    return violations


def check_anytime_gap(
    query: Query,
    strategies: tuple[str, ...] = RANKED_STRATEGIES,
    budgets: tuple[int, ...] = ANYTIME_PROBE_BUDGETS,
) -> list[Violation]:
    """Budgeted search returns a valid plan with a sound gap bound.

    Per strategy and node budget: the returned plan validates against
    its space and costs at least the true optimum; the report's
    ``certified_floor`` never exceeds the optimum (the soundness
    statement ``opt >= plan_cost / (1 + gap_bound)``); an effectively
    unlimited budget completes at gap exactly zero with the optimal
    cost.  Node budgets are deterministic, so these probes are
    replayable by the fuzz corpus.
    """
    from repro.anytime import Budget

    violations: list[Violation] = []
    for name in strategies:
        optimal = _optimal_cost(name, query)
        space = parse_name(name).space
        for nodes in budgets:
            optimizer = make_optimizer(name, query)
            plan = optimizer.optimize(budget=Budget.nodes(nodes))
            report = optimizer.anytime
            subject = _graph_subject(
                query.graph, algorithm=name, budget_nodes=nodes
            )
            if report is None:
                violations.append(
                    Violation(
                        "anytime-gap",
                        f"{name} under a {nodes}-node budget produced no "
                        f"anytime report on {query.describe()}",
                        subject,
                    )
                )
                continue
            try:
                validate_plan(plan, query, space)
            except PlanValidationError as exc:
                violations.append(
                    Violation(
                        "anytime-gap",
                        f"{name} under a {nodes}-node budget returned an "
                        f"invalid plan: {exc}",
                        subject,
                    )
                )
            if report.plan_cost != plan.cost:
                violations.append(
                    Violation(
                        "anytime-gap",
                        f"{name} report cost {report.plan_cost!r} disagrees "
                        f"with the returned plan's {plan.cost!r}",
                        subject,
                    )
                )
            if plan.cost < optimal and _costs_differ(plan.cost, optimal):
                violations.append(
                    Violation(
                        "anytime-gap",
                        f"{name} under a {nodes}-node budget returned cost "
                        f"{plan.cost!r} below the optimum {optimal!r} on "
                        f"{query.describe()}",
                        subject,
                    )
                )
            if report.certified_floor > optimal * (1.0 + COST_REL_TOL):
                violations.append(
                    Violation(
                        "anytime-gap",
                        f"{name} under a {nodes}-node budget certified floor "
                        f"{report.certified_floor!r} above the optimum "
                        f"{optimal!r} on {query.describe()} — the gap bound "
                        f"is unsound",
                        subject,
                    )
                )
            if nodes >= 10**9:
                if not report.completed or report.gap_bound != 0.0:
                    violations.append(
                        Violation(
                            "anytime-gap",
                            f"{name} under an effectively unlimited budget "
                            f"did not complete at gap 0 "
                            f"(completed={report.completed}, "
                            f"gap={report.gap_bound!r})",
                            subject,
                        )
                    )
                elif _costs_differ(plan.cost, optimal):
                    violations.append(
                        Violation(
                            "anytime-gap",
                            f"{name} completed under budget but returned "
                            f"cost {plan.cost!r} != optimum {optimal!r}",
                            subject,
                        )
                    )
    return violations


# -- suite assembly -----------------------------------------------------------

#: Invariant name -> checker over one (graph, query) probe.  ``graph``-level
#: invariants are exponential oracles gated to small n by the drivers.
INVARIANTS: dict[str, Callable[..., list[Violation]]] = {
    "partition-complete": check_partition_completeness,
    "cut-minimal": check_cut_minimality,
    "ccp-closed-form": check_ccp_closed_forms,
    "bnb-sound": check_bnb_soundness,
    "memo-sound": check_memo_soundness,
    "plan-agreement": check_plan_agreement,
    "fastpath-parity": check_fastpath_parity,
    "topk-soundness": check_topk_soundness,
    "anytime-gap": check_anytime_gap,
}

#: Invariants taking a bare JoinGraph (exponential oracle comparisons).
GRAPH_INVARIANTS = ("partition-complete", "cut-minimal")
#: Invariants taking a weighted Query (differential optimization).
QUERY_INVARIANTS = (
    "bnb-sound",
    "memo-sound",
    "plan-agreement",
    "fastpath-parity",
    "topk-soundness",
    "anytime-gap",
)
#: Upper bound on n for the exponential graph-level oracles.
ORACLE_MAX_N = 8


def run_invariants(
    graph: JoinGraph,
    query: Query | None = None,
    invariants: Iterable[str] | None = None,
    matrix: dict[str, tuple[str, ...]] | None = None,
) -> list[Violation]:
    """Run the selected invariants against one probe graph/query.

    ``ccp-closed-form`` is topology-parametric rather than per-graph and
    is skipped here; drivers call :func:`check_ccp_closed_forms` directly.
    """
    selected = tuple(invariants) if invariants is not None else tuple(INVARIANTS)
    unknown = [name for name in selected if name not in INVARIANTS]
    if unknown:
        raise ValueError(
            f"unknown invariants {unknown}; choose from {sorted(INVARIANTS)}"
        )
    violations: list[Violation] = []
    if graph.n <= ORACLE_MAX_N:
        if "partition-complete" in selected:
            violations += check_partition_completeness(graph)
        if "cut-minimal" in selected:
            violations += check_cut_minimality(graph)
    if query is not None:
        if "bnb-sound" in selected:
            violations += check_bnb_soundness(query)
        if "memo-sound" in selected:
            violations += check_memo_soundness(query)
        if "plan-agreement" in selected:
            violations += check_plan_agreement(query, matrix=matrix)
        if "fastpath-parity" in selected:
            violations += check_fastpath_parity(query)
        if "topk-soundness" in selected:
            violations += check_topk_soundness(query)
        if "anytime-gap" in selected:
            violations += check_anytime_gap(query)
    return violations


def standard_battery(
    max_n: int = 10, invariants: Iterable[str] | None = None
) -> list[Violation]:
    """The canned (fuzz-free) invariant battery of ``repro verify``.

    Small canonical graphs through the exponential oracles, the closed
    forms up to ``max_n``, and the differential matrix on one seeded query
    per topology.  ``invariants`` restricts the battery to a subset of
    :data:`INVARIANTS` (default: all of them).
    """
    selected = tuple(invariants) if invariants is not None else tuple(INVARIANTS)
    unknown = [name for name in selected if name not in INVARIANTS]
    if unknown:
        raise ValueError(
            f"unknown invariants {unknown}; choose from {sorted(INVARIANTS)}"
        )
    violations: list[Violation] = []
    probes = [
        chain(5),
        star(6),
        cycle(5),
        clique(5),
    ]
    for graph in probes:
        if "partition-complete" in selected:
            violations += check_partition_completeness(graph)
        if "cut-minimal" in selected:
            violations += check_cut_minimality(graph)
    if "ccp-closed-form" in selected:
        violations += check_ccp_closed_forms(max_n=max_n)
    query_checks = tuple(name for name in selected if name in QUERY_INVARIANTS)
    if query_checks:
        for graph in (chain(7), star(7), cycle(6), clique(6)):
            query = weighted_query(graph, graph.n)
            violations += run_invariants(graph, query, query_checks)
    return violations
