"""Differential fuzz driver with shrinking and a regression corpus.

Seeded, deterministic: one master seed derives every case (graph size,
cyclicity, structure seed, weight seed, weight profile), so any failure
is reproducible from the numbers in its report.  Weight profiles go
beyond the paper's uniform Section 4.3 calibration — bimodal
selectivities and heavy-tail cardinalities (:mod:`repro.workloads.skewed`)
push the estimator and the bounding logic into skewed regimes.  Each case runs the invariant suite of
:mod:`repro.conformance.invariants` — the exponential partition oracles on
small graphs, the differential registry matrix on the weighted query — and
on violation *shrinks* the graph to a minimal reproducer: greedily delete
vertices, then edges, as long as the violation persists and the graph
stays connected.

Minimal reproducers are persisted as JSON corpus entries (committed under
``tests/corpus/`` in this repository); :func:`replay_corpus` re-checks
every entry, which is how a once-found bug becomes a permanent regression
test.  See ``docs/conformance.md`` for the workflow.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.catalog.query import Query
from repro.conformance.invariants import (
    GRAPH_INVARIANTS,
    INVARIANTS,
    ORACLE_MAX_N,
    Violation,
    run_invariants,
)
from repro.core.joingraph import JoinGraph
from repro.workloads.random_graphs import random_connected_graph
from repro.workloads.seeding import DEFAULT_SEED
from repro.workloads.skewed import PROFILES, skewed_query

__all__ = [
    "CORPUS_SCHEMA",
    "FuzzCase",
    "FuzzReport",
    "fuzz",
    "load_corpus",
    "replay_corpus",
    "save_corpus_entry",
    "shrink",
]

CORPUS_SCHEMA = 1

#: Cyclicity factors sampled by the driver (Section 3.3.3's C parameter).
CYCLICITY_CHOICES = (0.0, 0.2, 0.4, 0.6)

#: Graph-level oracle checks are exponential; the fuzzer caps them lower
#: than the canned battery so 200-case runs stay interactive.
FUZZ_ORACLE_MAX_N = 7


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic fuzz input, fully described by five draws.

    ``profile`` selects the weight distribution (see
    :data:`~repro.workloads.skewed.PROFILES`); it defaults to the paper's
    uniform Section 4.3 calibration so pre-profile corpus entries and
    callers keep their exact historical behaviour.
    """

    index: int
    n: int
    cyclicity: float
    graph_seed: int
    query_seed: int
    profile: str = "uniform"

    def build_graph(self) -> JoinGraph:
        return random_connected_graph(self.n, self.cyclicity, self.graph_seed)

    def build_query(self, graph: JoinGraph | None = None) -> Query:
        if graph is None:
            graph = self.build_graph()
        return skewed_query(graph, self.profile, self.query_seed)

    def describe(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "n": self.n,
            "cyclicity": self.cyclicity,
            "graph_seed": self.graph_seed,
            "query_seed": self.query_seed,
            "profile": self.profile,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz run: inputs covered and violations found."""

    seed: int
    cases: int = 0
    violations: list[dict[str, Any]] = field(default_factory=list)
    corpus_paths: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "ok": self.ok,
            "violations": self.violations,
            "corpus_paths": self.corpus_paths,
        }


def generate_cases(
    count: int,
    seed: int = DEFAULT_SEED,
    n_range: tuple[int, int] = (4, 8),
    profiles: tuple[str, ...] = PROFILES,
) -> list[FuzzCase]:
    """Derive ``count`` deterministic cases from one master seed.

    ``profiles`` is the pool of weight profiles sampled per case.  The
    profile comes from a fixed-width 16-bit draw reduced modulo the pool
    size (not ``rng.choice``, whose rejection sampling consumes a
    pool-size-dependent number of bits), so changing the pool never
    perturbs the graph/seed stream of any case.
    """
    lo, hi = n_range
    if lo < 2 or hi < lo:
        raise ValueError(f"bad n_range {n_range}; need 2 <= lo <= hi")
    if not profiles:
        raise ValueError("profiles must be non-empty")
    unknown = [p for p in profiles if p not in PROFILES]
    if unknown:
        raise ValueError(f"unknown profiles {unknown}; choose from {PROFILES}")
    rng = random.Random(seed)
    cases = []
    for index in range(count):
        cases.append(
            FuzzCase(
                index=index,
                n=rng.randint(lo, hi),
                cyclicity=rng.choice(CYCLICITY_CHOICES),
                graph_seed=rng.randrange(1 << 31),
                query_seed=rng.randrange(1 << 31),
                profile=profiles[rng.randrange(1 << 16) % len(profiles)],
            )
        )
    return cases


def _check_graph(
    graph: JoinGraph,
    query_seed: int,
    invariants: tuple[str, ...],
    matrix: dict[str, tuple[str, ...]] | None,
    oracle_max_n: int,
    profile: str = "uniform",
) -> list[Violation]:
    """The failure predicate shared by the driver and the shrinker."""
    graph_checks = tuple(i for i in invariants if i in GRAPH_INVARIANTS)
    query_checks = tuple(
        i for i in invariants if i not in GRAPH_INVARIANTS and i != "ccp-closed-form"
    )
    violations: list[Violation] = []
    if graph_checks and graph.n <= oracle_max_n:
        violations += run_invariants(graph, None, graph_checks)
    if query_checks and not violations:
        # Query-level checks are the expensive differential runs; once the
        # cheap oracles already fail there is nothing further to learn.
        query = skewed_query(graph, profile, query_seed)
        violations += run_invariants(graph, query, query_checks, matrix=matrix)
    return violations


def _without_vertex(graph: JoinGraph, v: int) -> JoinGraph | None:
    """``graph`` with vertex ``v`` deleted and the rest relabelled compactly.

    Returns ``None`` when deletion would disconnect the graph or leave
    fewer than two vertices.
    """
    if graph.n <= 2:
        return None
    rest = graph.all_vertices & ~(1 << v)
    if not graph.is_connected(rest):
        return None
    relabel = {}
    for old in range(graph.n):
        if old != v:
            relabel[old] = len(relabel)
    edges = [
        (relabel[e.u], relabel[e.v]) for e in graph.edges if v not in (e.u, e.v)
    ]
    return JoinGraph(graph.n - 1, edges)


def _without_edge(graph: JoinGraph, index: int) -> JoinGraph | None:
    """``graph`` minus its ``index``-th edge, or None if that disconnects."""
    edges = [
        (e.u, e.v) for i, e in enumerate(graph.edges) if i != index
    ]
    candidate = JoinGraph(graph.n, edges)
    if not candidate.is_connected():
        return None
    return candidate


def shrink(
    graph: JoinGraph,
    failing: Callable[[JoinGraph], list[Violation]],
    max_rounds: int = 64,
) -> tuple[JoinGraph, list[Violation]]:
    """Greedily minimize ``graph`` while ``failing`` still reports violations.

    Tries vertex deletions first (the biggest single-step reductions),
    then edge deletions, restarting after every successful reduction; the
    result is 1-minimal — no single deletion preserves the failure.
    ``failing(graph)`` must be non-empty on entry.
    """
    violations = failing(graph)
    if not violations:
        raise ValueError("shrink() needs a failing input to start from")
    for _ in range(max_rounds):
        reduced = False
        for v in range(graph.n):
            candidate = _without_vertex(graph, v)
            if candidate is None:
                continue
            candidate_violations = failing(candidate)
            if candidate_violations:
                graph, violations = candidate, candidate_violations
                reduced = True
                break
        if reduced:
            continue
        for index in range(len(graph.edges)):
            candidate = _without_edge(graph, index)
            if candidate is None:
                continue
            candidate_violations = failing(candidate)
            if candidate_violations:
                graph, violations = candidate, candidate_violations
                reduced = True
                break
        if not reduced:
            break
    return graph, violations


# -- corpus ------------------------------------------------------------------


def corpus_entry(
    graph: JoinGraph,
    query_seed: int,
    violations: list[Violation],
    source: str,
    invariants: Iterable[str] | None = None,
    profile: str = "uniform",
) -> dict[str, Any]:
    """Serialize one reproducer (or probe graph) as a corpus entry.

    ``profile`` records the weight distribution the reproducer needs;
    entries written before profiles existed omit the key and replay as
    ``"uniform"``, so the schema stays backward compatible.
    """
    return {
        "schema": CORPUS_SCHEMA,
        "n": graph.n,
        "edges": [[e.u, e.v] for e in graph.edges],
        "query_seed": query_seed,
        "profile": profile,
        "invariants": sorted(invariants) if invariants else sorted(INVARIANTS),
        "source": source,
        "violations": [v.to_dict() for v in violations],
    }


def save_corpus_entry(directory: str, entry: dict[str, Any]) -> str:
    """Write ``entry`` under ``directory`` with a content-addressed name."""
    os.makedirs(directory, exist_ok=True)
    payload = json.dumps(entry, indent=2, sort_keys=True) + "\n"
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]
    first = entry["violations"][0]["invariant"] if entry["violations"] else "probe"
    path = os.path.join(directory, f"{first}-n{entry['n']}-{digest}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return path


def load_corpus(directory: str) -> list[tuple[str, dict[str, Any]]]:
    """Load every ``*.json`` corpus entry under ``directory`` (sorted)."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path, encoding="utf-8") as handle:
            entries.append((path, json.load(handle)))
    return entries


def replay_corpus(
    directory: str,
    matrix: dict[str, tuple[str, ...]] | None = None,
    oracle_max_n: int = ORACLE_MAX_N,
) -> list[Violation]:
    """Re-run every corpus entry's invariants; a clean run returns [].

    Entries record graphs that once violated (or probe) an invariant; the
    suite passing over them is the regression guarantee that old bugs
    stay fixed.
    """
    violations: list[Violation] = []
    for path, entry in load_corpus(directory):
        graph = JoinGraph(entry["n"], [tuple(e) for e in entry["edges"]])
        found = _check_graph(
            graph,
            entry["query_seed"],
            tuple(entry.get("invariants") or tuple(INVARIANTS)),
            matrix,
            oracle_max_n,
            profile=entry.get("profile", "uniform"),
        )
        for violation in found:
            violations.append(
                Violation(
                    violation.invariant,
                    f"corpus entry {os.path.basename(path)}: {violation.detail}",
                    violation.subject,
                )
            )
    return violations


# -- driver ------------------------------------------------------------------


def fuzz(
    count: int,
    seed: int = DEFAULT_SEED,
    n_range: tuple[int, int] = (4, 8),
    invariants: Iterable[str] | None = None,
    matrix: dict[str, tuple[str, ...]] | None = None,
    corpus_dir: str | None = None,
    oracle_max_n: int = FUZZ_ORACLE_MAX_N,
    on_case: Callable[[FuzzCase], None] | None = None,
    profiles: tuple[str, ...] = PROFILES,
) -> FuzzReport:
    """Run ``count`` seeded random graphs through the invariant matrix.

    On violation the offending graph is shrunk to a minimal reproducer;
    with ``corpus_dir`` set, the reproducer is saved there for triage and
    for promotion into the committed regression corpus.  ``profiles``
    restricts the weight distributions sampled per case (default: all of
    :data:`~repro.workloads.skewed.PROFILES`).
    """
    selected = tuple(invariants) if invariants is not None else tuple(INVARIANTS)
    unknown = [name for name in selected if name not in INVARIANTS]
    if unknown:
        raise ValueError(
            f"unknown invariants {unknown}; choose from {sorted(INVARIANTS)}"
        )
    report = FuzzReport(seed=seed)
    for case in generate_cases(count, seed, n_range, profiles):
        if on_case is not None:
            on_case(case)
        report.cases += 1
        graph = case.build_graph()

        def failing(candidate: JoinGraph) -> list[Violation]:
            return _check_graph(
                candidate,
                case.query_seed,
                selected,
                matrix,
                oracle_max_n,
                profile=case.profile,
            )

        found = failing(graph)
        if not found:
            continue
        shrunk, shrunk_violations = shrink(graph, failing)
        record = {
            "case": case.describe(),
            "violations": [v.to_dict() for v in found],
            "reproducer": {
                "n": shrunk.n,
                "edges": [[e.u, e.v] for e in shrunk.edges],
                "query_seed": case.query_seed,
                "profile": case.profile,
                "violations": [v.to_dict() for v in shrunk_violations],
            },
        }
        if corpus_dir is not None:
            entry = corpus_entry(
                shrunk,
                case.query_seed,
                shrunk_violations,
                source=f"fuzz seed={seed} case={case.index}",
                invariants=selected,
                profile=case.profile,
            )
            record["corpus_path"] = save_corpus_entry(corpus_dir, entry)
            report.corpus_paths.append(record["corpus_path"])
        report.violations.append(record)
    return report
