"""repro — Optimal Top-Down Join Enumeration (DeHaan & Tompa, SIGMOD 2007).

A complete reproduction of the paper's system: memoized top-down
partitioning search over pluggable plan spaces, optimal minimal-cut
partitioning via lazily rebuilt biconnection trees, branch-and-bound
(accumulated- and predicted-cost), memory-bounded memo tables, bottom-up
baselines (DPsize, DPsub, DPccp), and the full experiment harness for
every figure and table of the evaluation.

Quickstart::

    from repro import optimize, star, weighted_query

    query = weighted_query(star(8), rng=42)
    plan = optimize("TBNmc", query)       # paper's optimal top-down algorithm
    print(plan.tree_string())
"""

from repro.analysis.metrics import Metrics
from repro.catalog import Catalog, JoinPredicate, Query, Relation
from repro.core.joingraph import Edge, JoinGraph
from repro.cost.io_model import CostModel
from repro.enumerator import Bounding, OptimizationError, TopDownEnumerator
from repro.memo import GlobalPlanCache, MemoTable
from repro.multiphase import MultiPhaseResult, optimize_multiphase
from repro.obs import MetricsRegistry, NullTracer, RecordingTracer
from repro.plans import Plan, validate_plan
from repro.registry import available_algorithms, make_optimizer, optimize
from repro.spaces import PlanSpace
from repro.workloads import (
    chain,
    clique,
    cycle,
    grid,
    random_connected_graph,
    star,
    weighted_query,
    wheel,
)

__version__ = "1.0.0"

__all__ = [
    "Metrics",
    "Catalog",
    "JoinPredicate",
    "Query",
    "Relation",
    "Edge",
    "JoinGraph",
    "CostModel",
    "Bounding",
    "OptimizationError",
    "TopDownEnumerator",
    "GlobalPlanCache",
    "MemoTable",
    "MultiPhaseResult",
    "optimize_multiphase",
    "MetricsRegistry",
    "NullTracer",
    "RecordingTracer",
    "Plan",
    "validate_plan",
    "available_algorithms",
    "make_optimizer",
    "optimize",
    "PlanSpace",
    "chain",
    "clique",
    "cycle",
    "grid",
    "random_connected_graph",
    "star",
    "weighted_query",
    "wheel",
    "__version__",
]
