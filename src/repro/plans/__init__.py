"""Physical plan representation and validation."""

from repro.plans.physical import Plan, PlanWire, plan_cost, INFINITY
from repro.plans.validate import (
    PlanValidationError,
    is_left_deep,
    plan_contains_cartesian_product,
    validate_plan,
)

__all__ = [
    "Plan",
    "PlanWire",
    "plan_cost",
    "INFINITY",
    "PlanValidationError",
    "is_left_deep",
    "plan_contains_cartesian_product",
    "validate_plan",
]
