"""Physical plan trees.

A plan node is an immutable record of a physical operator applied to child
plans.  ``cost`` is cumulative (children included), matching the paper's
``Cost(plan)``.  ``vertices`` is the bitmap of base relations the plan
produces; ``order`` is the physical order token of the output (``None``
for unordered, or a vertex index meaning "sorted on that relation's join
key" — see :mod:`repro.cost.io_model`).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Optional

from repro.core.bitset import iter_bits

__all__ = ["INFINITY", "Plan", "PlanWire", "plan_cost"]

#: Cost of the NULL plan (paper: "Let Cost(NULL) = ∞").
INFINITY = float("inf")

#: The nested-tuple encoding of :meth:`Plan.to_wire`:
#: ``(op, vertices, cost, cardinality, order, relation, children)``.
PlanWire = tuple[
    str, int, float, float, Optional[int], Optional[str], tuple["PlanWire", ...]
]


@dataclass(frozen=True)
class Plan:
    """One node of a physical plan tree.

    ``op`` names the physical operator (``scan``, ``bnl``, ``smj``,
    ``hash``, ``sort``); ``relation`` is set on scans only.
    """

    op: str
    vertices: int
    cost: float
    cardinality: float
    order: Optional[int] = None
    relation: Optional[str] = None
    children: tuple["Plan", ...] = field(default=())

    @property
    def left(self) -> Optional["Plan"]:
        """First child, if any."""
        return self.children[0] if self.children else None

    @property
    def right(self) -> Optional["Plan"]:
        """Second child, if any."""
        return self.children[1] if len(self.children) > 1 else None

    @property
    def is_scan(self) -> bool:
        """True for leaf (access-path) nodes."""
        return not self.children

    @property
    def is_join(self) -> bool:
        """True for binary join nodes."""
        return len(self.children) == 2

    def join_count(self) -> int:
        """Number of join operators in the tree."""
        count = 1 if self.is_join else 0
        for child in self.children:
            count += child.join_count()
        return count

    def leaf_relations(self) -> list[str]:
        """Relation names in left-to-right leaf order."""
        if self.is_scan:
            return [self.relation or f"v{self.vertices.bit_length() - 1}"]
        names: list[str] = []
        for child in self.children:
            names.extend(child.leaf_relations())
        return names

    def iter_nodes(self) -> Iterator["Plan"]:
        """Yield every node of the tree, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def relabel(self, mapping: dict[int, int]) -> "Plan":
        """Return a copy with vertex indices renamed through ``mapping``.

        Used by the cross-query plan cache (Section 5.1) to transplant a
        plan between queries that share relations under different vertex
        numberings.  Every vertex of the plan must be a key of ``mapping``.
        """
        new_vertices = 0
        for v in iter_bits(self.vertices):
            new_vertices |= 1 << mapping[v]
        new_order = mapping[self.order] if self.order is not None else None
        return Plan(
            op=self.op,
            vertices=new_vertices,
            cost=self.cost,
            cardinality=self.cardinality,
            order=new_order,
            relation=self.relation,
            children=tuple(c.relabel(mapping) for c in self.children),
        )

    def to_wire(self) -> PlanWire:
        """Compact pickle-safe encoding (nested tuples, no class refs).

        Used by the parallel subsystem to ship memo entries between
        processes without pickling class metadata per node; round-trips
        exactly through :meth:`from_wire`.
        """
        return (
            self.op,
            self.vertices,
            self.cost,
            self.cardinality,
            self.order,
            self.relation,
            tuple(child.to_wire() for child in self.children),
        )

    @classmethod
    def from_wire(cls, wire: PlanWire) -> "Plan":
        """Rebuild a plan tree from :meth:`to_wire` output."""
        op, vertices, cost, cardinality, order, relation, children = wire
        return cls(
            op=op,
            vertices=vertices,
            cost=cost,
            cardinality=cardinality,
            order=order,
            relation=relation,
            children=tuple(cls.from_wire(c) for c in children),
        )

    def tree_string(self, indent: int = 0) -> str:
        """Readable multi-line rendering of the plan tree."""
        pad = "  " * indent
        label = self.op if self.relation is None else f"{self.op}({self.relation})"
        suffix = f"  [cost={self.cost:.4g}, card={self.cardinality:.4g}"
        if self.order is not None:
            suffix += f", order={self.order}"
        suffix += "]"
        lines = [f"{pad}{label}{suffix}"]
        for child in self.children:
            lines.append(child.tree_string(indent + 1))
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the plan tree."""
        lines = ["digraph plan {", "  node [shape=box, fontname=monospace];"]
        counter = 0

        def emit(node: "Plan") -> int:
            nonlocal counter
            node_id = counter
            counter += 1
            label = node.op if node.relation is None else f"{node.op}\\n{node.relation}"
            label += f"\\ncost={node.cost:.3g} card={node.cardinality:.3g}"
            lines.append(f'  n{node_id} [label="{label}"];')
            for child in node.children:
                child_id = emit(child)
                lines.append(f"  n{node_id} -> n{child_id};")
            return node_id

        emit(self)
        lines.append("}")
        return "\n".join(lines)

    def sql_like(self) -> str:
        """Compact parenthesized join expression, e.g. ``((A ⋈ B) ⋈ C)``."""
        if self.is_scan:
            return self.relation or "?"
        if self.op == "sort":
            return f"sort({self.children[0].sql_like()})"
        return f"({self.children[0].sql_like()} ⋈ {self.children[1].sql_like()})"


def plan_cost(plan: Optional[Plan]) -> float:
    """``Cost(plan)`` with the NULL-plan convention of Algorithm 1."""
    return INFINITY if plan is None else plan.cost
