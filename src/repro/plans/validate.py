"""Structural and semantic plan validation.

Used pervasively by the test suite: every enumeration algorithm's output
must cover exactly the query's relations, respect its declared plan space
(left-deep shape, cartesian-product freedom), and carry internally
consistent costs and cardinalities.
"""

from __future__ import annotations

import math

from repro.catalog.query import Query
from repro.plans.physical import Plan
from repro.spaces import PlanSpace

__all__ = [
    "PlanValidationError",
    "is_left_deep",
    "plan_contains_cartesian_product",
    "validate_plan",
]

#: Relative tolerance for float cost/cardinality comparisons.
RELATIVE_TOLERANCE = 1e-9


class PlanValidationError(AssertionError):
    """Raised when a plan violates a structural or semantic invariant."""


def is_left_deep(plan: Plan) -> bool:
    """True iff every join's right input is a base-relation scan.

    Sort enforcers are transparent: a sorted scan still counts as a base
    input, and a sort on top of a left-deep tree stays left-deep.
    """
    if plan.op == "sort":
        return is_left_deep(plan.children[0])
    if plan.is_scan:
        return True
    right = plan.right
    while right is not None and right.op == "sort":
        right = right.children[0]
    if right is None or not right.is_scan:
        return False
    left = plan.left
    return left is not None and is_left_deep(left)


def plan_contains_cartesian_product(plan: Plan, query: Query) -> bool:
    """True iff some join in the plan has no predicate across its inputs."""
    for node in plan.iter_nodes():
        if node.is_join:
            left, right = node.children
            if not query.graph.connects(left.vertices, right.vertices):
                return True
    return False


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise PlanValidationError(message)


def validate_plan(
    plan: Plan,
    query: Query,
    space: PlanSpace | None = None,
    *,
    expected_vertices: int | None = None,
) -> None:
    """Validate ``plan`` against ``query`` (and optionally a plan space).

    Checks, recursively:

    * the plan covers exactly ``expected_vertices`` (default: all of them);
    * join children partition the parent's vertex set;
    * cardinalities match the query's estimator;
    * cumulative cost is non-negative, finite, and at least the children's;
    * if ``space`` is given: left-deep shape and/or CP-freedom.

    Raises :class:`PlanValidationError` on the first violation.
    """
    target = query.graph.all_vertices if expected_vertices is None else expected_vertices
    _check(
        plan.vertices == target,
        f"plan covers {plan.vertices:#x}, expected {target:#x}",
    )
    for node in plan.iter_nodes():
        _check(node.vertices != 0, "node with empty vertex set")
        _check(
            math.isfinite(node.cost) and node.cost >= 0,
            f"node {node.op} has invalid cost {node.cost}",
        )
        estimated = query.cardinality(node.vertices)
        _check(
            math.isclose(node.cardinality, estimated, rel_tol=RELATIVE_TOLERANCE),
            f"node {node.op} cardinality {node.cardinality} != estimate {estimated}",
        )
        if node.is_join:
            left, right = node.children
            _check(
                left.vertices & right.vertices == 0,
                "join children overlap",
            )
            _check(
                left.vertices | right.vertices == node.vertices,
                "join children do not partition the parent",
            )
            _check(
                node.cost + RELATIVE_TOLERANCE * max(1.0, node.cost)
                >= left.cost + right.cost,
                f"join cost {node.cost} below children {left.cost + right.cost}",
            )
        elif node.op == "sort":
            _check(len(node.children) == 1, "sort must have one child")
            _check(
                node.children[0].vertices == node.vertices,
                "sort changes the vertex set",
            )
        else:
            _check(node.is_scan, f"unexpected operator {node.op} with children")
            _check(
                node.vertices & (node.vertices - 1) == 0,
                "scan over more than one relation",
            )

    if space is not None:
        if space.is_left_deep:
            _check(is_left_deep(plan), "plan is not left-deep")
        if not space.allows_cartesian_products:
            _check(
                not plan_contains_cartesian_product(plan, query),
                "plan contains a cartesian product",
            )
