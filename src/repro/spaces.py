"""Plan-space descriptors (Table 1 columns).

Kept dependency-free so both the partition strategies and the analysis
utilities can import it without cycles.
"""

from __future__ import annotations

import enum

__all__ = ["PlanSpace"]


class PlanSpace(enum.Flag):
    """The four plan spaces of the paper (Table 1 columns).

    ``LEFT_DEEP`` spaces only admit partitions whose right side is a single
    relation; ``CP_FREE`` spaces only admit partitions where both sides
    induce connected subgraphs and are joined by at least one predicate.
    """

    LEFT_DEEP = enum.auto()
    BUSHY = enum.auto()
    CP_FREE = enum.auto()
    WITH_CP = enum.auto()

    @classmethod
    def left_deep_cp_free(cls) -> "PlanSpace":
        """Left-deep trees without cartesian products."""
        return cls.LEFT_DEEP | cls.CP_FREE

    @classmethod
    def left_deep_with_cp(cls) -> "PlanSpace":
        """Left-deep trees including cartesian products."""
        return cls.LEFT_DEEP | cls.WITH_CP

    @classmethod
    def bushy_cp_free(cls) -> "PlanSpace":
        """Bushy trees without cartesian products."""
        return cls.BUSHY | cls.CP_FREE

    @classmethod
    def bushy_with_cp(cls) -> "PlanSpace":
        """Bushy trees including cartesian products."""
        return cls.BUSHY | cls.WITH_CP

    @property
    def allows_cartesian_products(self) -> bool:
        """Whether plans may contain cartesian products."""
        return bool(self & PlanSpace.WITH_CP)

    @property
    def is_left_deep(self) -> bool:
        """Whether every join's right input must be a base relation."""
        return bool(self & PlanSpace.LEFT_DEEP)

    def describe(self) -> str:
        """Human-readable space label, e.g. 'bushy CP-free'."""
        shape = "left-deep" if self.is_left_deep else "bushy"
        cp = "with CPs" if self.allows_cartesian_products else "CP-free"
        return f"{shape} {cp}"
