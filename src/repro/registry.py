"""Algorithm registry: the paper's Table 1 names plus bounding suffixes.

Name grammar (case-insensitive):

``[T|B]  [L|B]  [N|C]  <style>  [A|P|AP]``

* 1st letter — **T**op-down or **B**ottom-up;
* 2nd — **L**eft-deep or **B**ushy;
* 3rd — **N**o cartesian products or **C**artesian products allowed;
* style — ``size`` (size-driven DP), ``naive`` (naive partitioning),
  ``ccp`` (connected-subgraph complement pairs), ``mc`` (minimal cuts);
* optional suffix — ``A`` accumulated-cost, ``P`` predicted-cost, ``AP``
  both (top-down algorithms only).

Examples: ``TBNmc`` is the paper's optimal top-down bushy CP-free
algorithm; ``TLNmcAP`` adds combined bounding; ``BBNccp`` is DPccp.

Friendly aliases (``mincutlazy``, ``dpccp``, ``leftdeep``, ...) resolve
to the Table 1 names; see :data:`ALGORITHM_ALIASES`.

A trailing ``@N`` requests parallel execution with ``N`` worker
processes (top-down algorithms only): ``TBNmc@4``, ``mincutlazy@2``,
``TLNmcAP@8``.  The ``parallel`` alias is shorthand for ``TBNmc@4``.

A trailing ``%policy[:capacity[:cold]]`` requests a capacity-bounded
memo with the named eviction policy (Section 5.1 / Figures 21–30):
``TBNmc%lru:64`` bounds the memo to 64 cells with LRU eviction,
``TBNmc%cost:64:128`` adds a 128-entry cold demotion tier under the
cost-aware GreedyDual policy.  Policies: ``lru``, ``smallest``,
``cost``, ``profile``.  Both suffixes compose in either order
(``TBNmc%cost:64@2`` ≡ ``TBNmc@2%cost:64``).

A trailing ``!fast`` requests the conformance-checked fast path
(:mod:`repro.fastpath`): the same top-down search with frontier-batched
costing, bit-identical plans.  It composes with the other suffixes in
any order; the canonical form puts it last (``TBNmc@2%cost:64!fast``).
``REPRO_FASTPATH=off`` overrides the suffix everywhere (see
:func:`repro.fastpath.detect.resolve_fastpath` for the precedence).

A trailing ``?budget`` requests anytime search (``docs/anytime.md``):
``TBNmc?250ms`` bounds wall clock, ``TBNmc?5000n`` bounds memo-missed
expression computations (deterministic), ``TBNmc?250ms:5000n`` both.
The optimizer's ``optimize()`` then returns the best plan found within
the budget and reports a certified optimality-gap bound on its
``anytime`` attribute.  A trailing ``^k`` sets the default rank depth of
``optimize_topk()`` (``TBNmc^3`` ranks the 3 cheapest distinct plans).
Both compose with ``%policy`` and ``!fast`` in any order — canonical
form ``TBNmc@2%cost:64?250ms^3!fast`` — but are top-down only, and
``^k`` is serial only (ranked cells live in one memo).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.metrics import Metrics
from repro.anytime import Budget
from repro.bottomup import DPccp, DPsize, DPsub
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.cache.costing import CostProfile
from repro.cache.policies import POLICY_NAMES
from repro.enumerator import Bounding, TopDownEnumerator
from repro.fastpath.detect import resolve_fastpath
from repro.fastpath.enumerator import FastTopDownEnumerator
from repro.memo import GlobalPlanCache, MemoTable
from repro.obs.profile import KernelProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.partition import (
    MinCutLazy,
    MinCutLeftDeep,
    MinCutOptimistic,
    NaiveBushyCP,
    NaiveBushyCPFree,
    NaiveLeftDeepCP,
    NaiveLeftDeepCPFree,
)
from repro.plans.physical import Plan
from repro.spaces import PlanSpace

__all__ = [
    "AlgorithmSpec",
    "ALGORITHM_ALIASES",
    "MemoSpec",
    "available_algorithms",
    "conformance_matrix",
    "make_optimizer",
    "optimize",
    "parse_name",
    "resolve_alias",
    "split_budget",
    "split_fastpath",
    "split_memo_policy",
    "split_topk",
    "split_workers",
]

_NAME_PATTERN = re.compile(
    r"^(?P<direction>[TB])(?P<shape>[LB])(?P<cp>[NC])"
    r"(?P<style>size|naive|ccp|mc|mcopt)(?P<bounding>A|P|AP)?$",
    re.IGNORECASE,
)

#: Friendly names for the strategies, usable anywhere a Table 1 name is
#: (CLI ``--algorithm``, :func:`make_optimizer`, :func:`optimize`).
#: Lookup is case-insensitive and ignores ``-``/``_`` separators, and an
#: ``A``/``P``/``AP`` bounding suffix carries over (``mincutlazy-AP``).
ALGORITHM_ALIASES = {
    "mincutlazy": "TBNmc",
    "mincut": "TBNmc",
    "mincutoptimistic": "TBNmcopt",
    "mincutopt": "TBNmcopt",
    "leftdeep": "TLNmc",
    "naive": "TBNnaive",
    "dpccp": "BBNccp",
    "dpsize": "BBNsize",
    "dpsub": "BBNnaive",
    "parallel": "TBNmc@4",
    "parallelmincut": "TBNmc@4",
    "parallelnaive": "TBNnaive@4",
}

#: The algorithm names Table 1 lists as implemented (canonical casing).
TABLE1_ALGORITHMS = (
    "BLNsize",
    "BLCsize",
    "BBNsize",
    "BBCsize",
    "BBNnaive",
    "BBCnaive",
    "BBNccp",
    "TLNnaive",
    "TLCnaive",
    "TBNnaive",
    "TBCnaive",
    "TLNmc",
    "TBNmc",
)


@dataclass(frozen=True)
class AlgorithmSpec:
    """Parsed description of an algorithm name."""

    name: str
    top_down: bool
    space: PlanSpace
    style: str
    bounding: Bounding

    @property
    def is_optimal_enumeration(self) -> bool:
        """Whether the enumeration is optimal for its space (Section 3).

        With cartesian products, naive partitioning is optimal and
        size-driven DP is not; without them, only the minimal-cut and ccp
        styles achieve the Ono–Lohman bounds with linear overhead.
        """
        if self.space.allows_cartesian_products:
            return self.style == "naive"
        return self.style in {"mc", "ccp"}


@dataclass(frozen=True)
class MemoSpec:
    """Parsed ``%policy[:capacity[:cold]]`` memo-bounding suffix."""

    policy: str
    capacity: int | None = None
    cold_capacity: int | None = 0


def split_memo_policy(name: str) -> tuple[str, MemoSpec | None]:
    """Split a ``base%policy[:capacity[:cold]]`` name into ``(base, spec)``.

    Composes with the ``@N`` worker suffix in either order: a worker
    count trailing the memo spec (``TBNmc%cost:64@2``) is reattached to
    the returned base name.  Names without ``%`` return ``(name, None)``.
    """
    base, sep, tail = name.partition("%")
    if not sep:
        return name, None
    for index, char in enumerate(tail):
        if char in "@!?^":
            base += tail[index:]
            tail = tail[:index]
            break
    parts = tail.split(":")
    policy = parts[0].lower()
    if policy not in POLICY_NAMES:
        raise ValueError(
            f"unknown memo policy in algorithm name {name!r}; "
            f"use one of {POLICY_NAMES}"
        )
    if len(parts) > 3:
        raise ValueError(
            f"malformed memo suffix in {name!r}; "
            "expected %policy[:capacity[:cold]]"
        )

    def _cap(token: str, what: str) -> int:
        try:
            value = int(token)
        except ValueError:
            value = -1
        if value < 0:
            raise ValueError(
                f"invalid memo {what} in algorithm name {name!r}: {token!r}"
            )
        return value

    capacity = _cap(parts[1], "capacity") if len(parts) > 1 else None
    cold = _cap(parts[2], "cold capacity") if len(parts) > 2 else 0
    return base, MemoSpec(policy=policy, capacity=capacity, cold_capacity=cold)


def split_workers(name: str) -> tuple[str, int | None]:
    """Split a ``base@N`` algorithm name into ``(base, N)``.

    ``N`` is the requested parallel worker count; names without the
    suffix return ``(name, None)``.
    """
    base, sep, tail = name.partition("@")
    if not sep:
        return name, None
    token, rest = tail, ""
    for index, char in enumerate(tail):
        if char in "%!?^":
            token, rest = tail[:index], tail[index:]
            break
    try:
        workers = int(token)
    except ValueError:
        workers = 0
    if workers < 1:
        raise ValueError(
            f"invalid worker count in algorithm name {name!r}; "
            "expected e.g. TBNmc@4"
        )
    return base + rest, workers


def split_fastpath(name: str) -> tuple[str, bool]:
    """Split a ``!fast`` suffix out of an algorithm name.

    The suffix composes with ``@N`` and ``%policy`` in any order
    (``TBNmc!fast@2`` ≡ ``TBNmc@2!fast``): whatever suffix text follows
    the ``fast`` token is reattached to the returned base.  Names
    without ``!`` return ``(name, False)``.
    """
    base, sep, tail = name.partition("!")
    if not sep:
        return name, False
    token, rest = tail, ""
    for index, char in enumerate(tail):
        if char in "@%?^":
            token, rest = tail[:index], tail[index:]
            break
    if token.lower() != "fast":
        raise ValueError(
            f"unknown !-suffix in algorithm name {name!r}; "
            "the only recognised form is !fast"
        )
    return base + rest, True


def split_budget(name: str) -> tuple[str, Budget | None]:
    """Split a ``?budget`` anytime suffix out of an algorithm name.

    The suffix body follows :meth:`repro.anytime.Budget.parse_token`
    (``250ms``, ``5000n``, ``250ms:5000n``) and composes with the other
    suffixes in any order; whatever suffix text follows the budget token
    is reattached to the returned base.  Names without ``?`` return
    ``(name, None)``.
    """
    base, sep, tail = name.partition("?")
    if not sep:
        return name, None
    token, rest = tail, ""
    for index, char in enumerate(tail):
        if char in "@%!^":
            token, rest = tail[:index], tail[index:]
            break
    try:
        budget = Budget.parse_token(token)
    except ValueError as error:
        raise ValueError(
            f"invalid ?budget suffix in algorithm name {name!r}: {error}"
        ) from None
    return base + rest, budget


def split_topk(name: str) -> tuple[str, int | None]:
    """Split a ``^k`` default-rank suffix out of an algorithm name.

    ``k`` is the default depth of ``optimize_topk()``; it composes with
    the other suffixes in any order, and names without ``^`` return
    ``(name, None)``.
    """
    base, sep, tail = name.partition("^")
    if not sep:
        return name, None
    token, rest = tail, ""
    for index, char in enumerate(tail):
        if char in "@%!?":
            token, rest = tail[:index], tail[index:]
            break
    try:
        k = int(token)
    except ValueError:
        k = 0
    if k < 1:
        raise ValueError(
            f"invalid ^k rank in algorithm name {name!r}; expected e.g. TBNmc^3"
        )
    return base + rest, k


def resolve_alias(name: str) -> str:
    """Map a friendly alias to its Table 1 name; other names pass through.

    An optional ``A``/``P``/``AP`` bounding suffix (separated or not) is
    preserved: ``mincutlazy-AP`` resolves to ``TBNmcAP``.  A ``@N``
    worker-count suffix is preserved too, and overrides any count the
    alias itself carries (``parallel@2`` resolves to ``TBNmc@2``); a
    ``%policy`` memo suffix is carried along unchanged
    (``mincutlazy%cost:64`` resolves to ``TBNmc%cost:64``), as are
    ``?budget`` and ``^k`` suffixes and a ``!fast`` suffix, normalised
    to the canonical order ``@N %policy ?budget ^k !fast``
    (``mincutlazy!fast?100n@2`` resolves to ``TBNmc@2?100n!fast``).
    """
    name, fast = split_fastpath(name)
    name, budget = split_budget(name)
    name, top_k = split_topk(name)
    name, memo_spec = split_memo_policy(name)
    base, workers = split_workers(name)
    normalized = base.lower().replace("-", "").replace("_", "")
    resolved = base
    for suffix in ("ap", "a", "p", ""):
        if suffix and not normalized.endswith(suffix):
            continue
        stem = normalized[: len(normalized) - len(suffix)] if suffix else normalized
        canonical = ALGORITHM_ALIASES.get(stem)
        if canonical is not None:
            resolved = canonical + suffix.upper()
            break
    resolved_base, resolved_workers = split_workers(resolved)
    if workers is not None:
        resolved_workers = workers
    if resolved_workers is not None:
        resolved_base = f"{resolved_base}@{resolved_workers}"
    if memo_spec is not None:
        suffix = f"%{memo_spec.policy}"
        if memo_spec.capacity is not None:
            suffix += f":{memo_spec.capacity}"
            if memo_spec.cold_capacity:
                suffix += f":{memo_spec.cold_capacity}"
        resolved_base += suffix
    if budget is not None:
        resolved_base += f"?{budget.token()}"
    if top_k is not None:
        resolved_base += f"^{top_k}"
    if fast:
        resolved_base += "!fast"
    return resolved_base


def parse_name(name: str) -> AlgorithmSpec:
    """Parse a Table 1 style algorithm name (or a friendly alias).

    ``@N`` worker-count, ``%policy`` memo, ``?budget``, ``^k``, and
    ``!fast`` suffixes are accepted and ignored: the spec describes the
    underlying serial algorithm.
    """
    base, _fast = split_fastpath(resolve_alias(name))
    base, _budget = split_budget(base)
    base, _top_k = split_topk(base)
    base, _memo_spec = split_memo_policy(base)
    base, _workers = split_workers(base)
    match = _NAME_PATTERN.match(base)
    if match is None:
        raise ValueError(
            f"unrecognized algorithm name {name!r}; "
            "expected e.g. TBNmc, BLNsize, TLNmcAP, or an alias "
            f"({', '.join(sorted(ALGORITHM_ALIASES))})"
        )
    top_down = match.group("direction").upper() == "T"
    left_deep = match.group("shape").upper() == "L"
    cp_free = match.group("cp").upper() == "N"
    style = match.group("style").lower()
    bounding = Bounding.from_suffix(match.group("bounding") or "")

    if left_deep and cp_free:
        space = PlanSpace.left_deep_cp_free()
    elif left_deep:
        space = PlanSpace.left_deep_with_cp()
    elif cp_free:
        space = PlanSpace.bushy_cp_free()
    else:
        space = PlanSpace.bushy_with_cp()

    if bounding is not Bounding.NONE and not top_down:
        raise ValueError(f"{name!r}: branch-and-bound requires top-down search")
    if style == "ccp" and (top_down or left_deep or not cp_free):
        raise ValueError(f"{name!r}: ccp style is bottom-up bushy CP-free only")
    if style in {"mc", "mcopt"} and not top_down:
        raise ValueError(f"{name!r}: minimal-cut style is top-down only")
    if style in {"mc", "mcopt"} and not cp_free:
        raise ValueError(f"{name!r}: minimal cuts target CP-free spaces")
    if style == "size" and top_down:
        raise ValueError(f"{name!r}: there is no top-down size-driven algorithm")
    if style == "naive" and not top_down and left_deep:
        raise ValueError(f"{name!r}: Table 1 has no bottom-up left-deep naive row")
    return AlgorithmSpec(
        name=base, top_down=top_down, space=space, style=style, bounding=bounding
    )


def available_algorithms(include_bounded: bool = True) -> list[str]:
    """All algorithm names this registry can build."""
    names = list(TABLE1_ALGORITHMS) + ["TBNmcopt"]
    if include_bounded:
        for base in ("TLNmc", "TBNmc", "TLCnaive", "TBCnaive", "TLNnaive", "TBNnaive"):
            names.extend(base + suffix for suffix in ("A", "P", "AP"))
    return names


def conformance_matrix(
    *, workers: int = 2, memo_capacity: int = 24
) -> dict[str, tuple[str, ...]]:
    """The differential-testing matrix of :mod:`repro.conformance`.

    Groups registry configurations by plan space: every configuration in a
    group must return the same optimal plan cost on any query, because
    they search the same space — serially or with ``@N`` workers, with an
    unbounded memo or any ``%policy`` bounded one, exhaustively or under
    either branch-and-bound mode.  One source of truth shared by
    ``repro verify``, the fuzz driver, and the conformance tests.
    """
    return {
        "bushy-cp-free": (
            "TBNmc",
            "TBNmcopt",
            "TBNnaive",
            "BBNccp",
            "BBNnaive",
            "BBNsize",
            "TBNmcA",
            "TBNmcP",
            "TBNmcAP",
            f"TBNmc@{workers}",
            f"TBNmc%cost:{memo_capacity}",
            f"TBNmc%profile:{memo_capacity}",
            f"TBNmc%lru:{memo_capacity}:{memo_capacity}",
            "TBNmc!fast",
            "TBNmcAP!fast",
        ),
        "left-deep-cp-free": (
            "TLNmc",
            "TLNnaive",
            "BLNsize",
            "TLNmcA",
            "TLNmcP",
            "TLNmcAP",
            "TLNmc!fast",
        ),
        "bushy-with-cp": (
            "TBCnaive",
            "BBCnaive",
            "BBCsize",
            "TBCnaiveAP",
            "TBCnaive!fast",
        ),
        "left-deep-with-cp": (
            "TLCnaive",
            "BLCsize",
            "TLCnaiveAP",
            "TLCnaive!fast",
        ),
    }


def _partition_for(spec: AlgorithmSpec):
    if spec.style == "mcopt":
        return MinCutOptimistic()
    if spec.style == "mc":
        if spec.space.is_left_deep:
            return MinCutLeftDeep()
        return MinCutLazy()
    # naive
    if spec.space.is_left_deep:
        if spec.space.allows_cartesian_products:
            return NaiveLeftDeepCP()
        return NaiveLeftDeepCPFree()
    if spec.space.allows_cartesian_products:
        return NaiveBushyCP()
    return NaiveBushyCPFree()


def make_optimizer(
    name: str,
    query: Query,
    cost_model: CostModel | None = None,
    *,
    memo: MemoTable | None = None,
    metrics: Metrics | None = None,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    profiler: KernelProfiler | None = None,
    workers: int | None = None,
    parallel_policy: str = "auto",
    worker_trace_dir: str | None = None,
    start_method: str | None = None,
    memo_policy: str | None = None,
    memo_capacity: int | None = None,
    memo_cold_capacity: int | None = None,
    memo_profile: CostProfile | None = None,
    global_cache: GlobalPlanCache | None = None,
    fastpath: str | None = None,
    fastpath_backend: str | None = None,
    budget: Budget | None = None,
    top_k: int | None = None,
):
    """Instantiate the named algorithm over ``query``.

    Returns an object with an ``optimize(order=None) -> Plan`` method and
    ``metrics`` attribute (a :class:`TopDownEnumerator`, a bottom-up
    optimizer, or — when a worker count is requested — a
    :class:`~repro.parallel.scheduler.ParallelEnumerator`).  ``tracer``
    and ``registry`` attach the :mod:`repro.obs` instrumentation; both
    default to off (zero overhead).  ``profiler`` attaches a kernel
    profiler (:mod:`repro.obs.profile`) and requires a serial top-down
    algorithm — bottom-up optimizers have no partition/memo kernels to
    attribute, and parallel workers would need per-process profilers.

    The worker count comes from the explicit ``workers`` argument or,
    failing that, a ``@N`` suffix on ``name`` (``TBNmc@4``); the explicit
    argument wins when both are present.  ``parallel_policy``,
    ``worker_trace_dir``, and ``start_method`` configure the parallel
    runtime and are ignored for serial runs.

    The memo configuration comes from a ``%policy[:capacity[:cold]]``
    suffix on ``name`` and/or the explicit ``memo_policy`` /
    ``memo_capacity`` / ``memo_cold_capacity`` / ``memo_profile``
    arguments (explicit arguments win field by field); ``global_cache``
    attaches a cross-query :class:`~repro.memo.GlobalPlanCache` as the
    memo's shared read-through tier.  These are mutually exclusive with
    passing a prebuilt ``memo``.

    The fast path (:mod:`repro.fastpath`) is selected by a ``!fast``
    suffix on ``name`` and/or the explicit ``fastpath`` override
    (``"on"`` | ``"off"`` | ``"auto"``/``None``), subject to the
    ``REPRO_FASTPATH`` environment escape hatch — precedence per
    :func:`repro.fastpath.detect.resolve_fastpath`.  It requires a
    top-down algorithm and is incompatible with kernel profiling: an
    *explicitly* requested fast path raises on either conflict, while
    an ambient ``REPRO_FASTPATH=on`` silently keeps the oracle.
    ``fastpath_backend`` pins the batch backend (``"python"`` |
    ``"numpy"``) for serial fast-path runs; workers auto-detect.

    The anytime budget comes from a ``?budget`` suffix on ``name``
    and/or the explicit ``budget`` argument (explicit wins) and becomes
    the enumerator's default: ``optimize()`` then runs the anytime
    search of ``docs/anytime.md``.  The default ``optimize_topk`` rank
    comes from a ``^k`` suffix and/or the explicit ``top_k`` argument
    (explicit wins).  Both require a top-down algorithm; ranked
    enumeration is additionally serial-only, while a budget on a
    parallel ``@N`` run bounds the finishing pass (the level rounds run
    unbudgeted in worker processes).
    """
    if fastpath not in {None, "auto", "on", "off"}:
        raise ValueError(
            f"invalid fastpath override {fastpath!r}; expected auto, on, or off"
        )
    resolved, fast_requested = split_fastpath(resolve_alias(name))
    base, suffix_budget = split_budget(resolved)
    base, suffix_topk = split_topk(base)
    base, memo_spec = split_memo_policy(base)
    base, suffix_workers = split_workers(base)
    if budget is None:
        budget = suffix_budget
    if top_k is None:
        top_k = suffix_topk
    if workers is None:
        workers = suffix_workers
    spec = parse_name(base)
    if (budget is not None or top_k is not None) and not spec.top_down:
        raise ValueError(
            f"{name!r}: anytime budgets and ranked enumeration require "
            "top-down partition search"
        )
    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if top_k is not None and workers is not None:
        raise ValueError(
            f"{name!r}: ranked enumeration is serial-only (ranked memo "
            "cells live in one memo); drop ^k or the @N worker count"
        )
    use_fast = resolve_fastpath(fast_requested, fastpath)
    fast_explicit = fast_requested or fastpath == "on"
    if use_fast and not spec.top_down:
        if fast_explicit:
            raise ValueError(
                f"{name!r}: the fast path accelerates top-down partition "
                "search; bottom-up algorithms have no batched equivalent"
            )
        use_fast = False  # ambient REPRO_FASTPATH=on: keep the oracle
    if use_fast and profiler is not None:
        if fast_explicit:
            raise ValueError(
                f"{name!r}: kernel profiling requires the oracle path "
                "(its frames attribute scalar cost calls); drop !fast "
                "or pass fastpath='off'"
            )
        use_fast = False  # ambient REPRO_FASTPATH=on: keep the oracle

    wants_memo_config = (
        memo_spec is not None
        or memo_policy is not None
        or memo_capacity is not None
        or memo_cold_capacity is not None
        or memo_profile is not None
        or global_cache is not None
    )
    if wants_memo_config:
        if memo is not None:
            raise ValueError(
                "pass either a prebuilt memo or memo policy settings, not both"
            )
        if not spec.top_down:
            raise ValueError(
                f"{name!r}: memo policies require a top-down algorithm"
            )
        if memo_policy is None:
            memo_policy = memo_spec.policy if memo_spec is not None else "lru"
        if memo_capacity is None and memo_spec is not None:
            memo_capacity = memo_spec.capacity
        if memo_cold_capacity is None:
            memo_cold_capacity = (
                memo_spec.cold_capacity if memo_spec is not None else 0
            )
        memo = MemoTable(
            capacity=memo_capacity,
            policy=memo_policy,
            cold_capacity=memo_cold_capacity,
            profile=memo_profile,
            shared=global_cache,
        )
    if profiler is not None and (workers is not None or not spec.top_down):
        raise ValueError(
            f"{name!r}: kernel profiling requires a serial top-down algorithm"
        )
    if workers is not None:
        if not spec.top_down:
            raise ValueError(
                f"{name!r}: parallel execution requires a top-down algorithm"
            )
        # lint: disable=import-layering -- documented inversion: the "@N"
        # suffix names a parallel run, so the factory must construct the
        # runtime one layer above it; lazy keeps import time acyclic.
        from repro.parallel.scheduler import ParallelEnumerator

        return ParallelEnumerator(
            query,
            base + "!fast" if use_fast else base,
            workers,
            policy=parallel_policy,
            cost_model=cost_model,
            memo=memo,
            metrics=metrics,
            tracer=tracer,
            registry=registry,
            trace_dir=worker_trace_dir,
            start_method=start_method,
            global_cache=global_cache,
            budget=budget,
        )
    if spec.top_down:
        if use_fast:
            return FastTopDownEnumerator(
                query,
                _partition_for(spec),
                cost_model,
                backend=fastpath_backend,
                bounding=spec.bounding,
                memo=memo,
                metrics=metrics,
                tracer=tracer,
                registry=registry,
                default_budget=budget,
                default_topk=top_k,
            )
        return TopDownEnumerator(
            query,
            _partition_for(spec),
            cost_model,
            bounding=spec.bounding,
            memo=memo,
            metrics=metrics,
            tracer=tracer,
            registry=registry,
            profiler=profiler,
            default_budget=budget,
            default_topk=top_k,
        )
    if memo is not None:
        raise ValueError("bottom-up algorithms manage their own plan table")
    if spec.style == "ccp":
        return DPccp(query, cost_model, metrics=metrics, tracer=tracer, registry=registry)
    if spec.style == "naive":
        return DPsub(
            query, spec.space, cost_model, metrics=metrics,
            tracer=tracer, registry=registry,
        )
    return DPsize(
        query, spec.space, cost_model, metrics=metrics,
        tracer=tracer, registry=registry,
    )


def optimize(
    name: str,
    query: Query,
    cost_model: CostModel | None = None,
    *,
    metrics: Metrics | None = None,
    order: int | None = None,
    initial_plan: Optional[Plan] = None,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> Plan:
    """One-shot convenience: build the named optimizer and run it."""
    optimizer = make_optimizer(
        name, query, cost_model, metrics=metrics, tracer=tracer, registry=registry
    )
    if isinstance(optimizer, TopDownEnumerator) or hasattr(
        optimizer, "worker_results"
    ):
        return optimizer.optimize(order, initial_plan=initial_plan)
    if initial_plan is not None:
        raise ValueError("initial plans require a top-down optimizer")
    return optimizer.optimize(order)
